"""Content-addressed on-disk cache for campaign runs.

The paper's methodology is brute-force scale — thousands of isolated
``(case, client, value_ms, repetition)`` runs per figure — and every
run is a *pure function* of its coordinates and configuration: the
testbed is rebuilt from a stable seed, the client profile and test
case are frozen dataclasses, and the simulator is deterministic.  That
purity makes runs perfectly cacheable: re-rendering a figure with an
unchanged configuration can skip every run it already executed.

:class:`CampaignStore` is that cache.  Entries are addressed by a
SHA-256 digest over the *content* of everything that can influence a
run — the stable run seed, the full test-case and client-profile
configuration (via :func:`canonical`), and the run coordinates — so
any configuration change, however small, misses cleanly instead of
serving stale results.  Entries are JSON files written atomically
(temp file + ``rename``) and validated on read; corrupted or partial
entries are treated as misses and fall back to fresh execution.

Cache hits are **byte-identical** to fresh execution: records
round-trip through JSON exactly (Python's ``repr``-based float
serialization round-trips), which the store tests enforce the same
way the serial==parallel identity is enforced today.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, Iterator, List,
                    Optional, TYPE_CHECKING, Tuple, TypeVar, Union)

from .. import __version__
from ..simnet.addr import Family
from .config import TestCaseKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import RunRecord

#: Bump when the entry layout or record encoding changes; old entries
#: then read as invalid and re-execute instead of mis-decoding.
STORE_FORMAT = 1

#: Bump when the sidecar index layout changes; old index files then
#: read as invalid and batch lookups fall back to per-key reads (the
#: entry files remain the source of truth either way).
INDEX_FORMAT = 1

#: Folded into every cache key alongside the configuration digest:
#: caching is only sound while the *code* producing a run is unchanged,
#: so a package upgrade (which may change simulator or client-model
#: behavior) must miss instead of serving the old model's results.
BEHAVIOR_VERSION = __version__

Decoded = TypeVar("Decoded")


def canonical(obj: Any) -> str:
    """A deterministic, content-complete rendering of ``obj``.

    Like :func:`repro.seeding.stable_run_seed`'s canonical form, but
    recursive: dataclasses render field-by-field, enums by class and
    member name, containers element-wise, and primitives type-tagged —
    so two configurations render identically iff every field that can
    influence a run is identical.
    """
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj))
        return f"{type(obj).__name__}({fields})"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(item) for item in obj) + "]"
    if isinstance(obj, dict):
        items = sorted((canonical(k), canonical(v))
                       for k, v in obj.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    return f"{type(obj).__name__}:{obj!r}"


def config_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``parts``."""
    blob = canonical(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# -- record (de)serialization --------------------------------------------------


def encode_record(record: "RunRecord") -> dict:
    """A JSON-shaped dict from which :func:`decode_record` rebuilds
    an identical (``==``) :class:`~repro.testbed.runner.RunRecord`."""
    return {
        "case": record.case,
        "kind": record.kind.value,
        "client": record.client,
        "value_ms": record.value_ms,
        "repetition": record.repetition,
        "completed": record.completed,
        "error": record.error,
        "winning_family": (record.winning_family.name
                           if record.winning_family is not None else None),
        "cad_s": record.cad_s,
        "rd_s": record.rd_s,
        "time_to_first_attempt_s": record.time_to_first_attempt_s,
        "aaaa_first": record.aaaa_first,
        "attempts": [[timestamp, family.name]
                     for timestamp, family in record.attempts],
        "attempts_v4": record.attempts_v4,
        "attempts_v6": record.attempts_v6,
        "duration_s": record.duration_s,
    }


def decode_record(data: dict) -> "RunRecord":
    """Rebuild a :class:`RunRecord`; raises on any malformed entry."""
    from .runner import RunRecord

    def opt_float(value: Any) -> Optional[float]:
        return None if value is None else float(value)

    return RunRecord(
        case=data["case"],
        kind=TestCaseKind(data["kind"]),
        client=data["client"],
        value_ms=int(data["value_ms"]),
        repetition=int(data["repetition"]),
        completed=bool(data["completed"]),
        error=data["error"],
        winning_family=(Family[data["winning_family"]]
                        if data["winning_family"] is not None else None),
        cad_s=opt_float(data["cad_s"]),
        rd_s=opt_float(data["rd_s"]),
        time_to_first_attempt_s=opt_float(data["time_to_first_attempt_s"]),
        aaaa_first=data["aaaa_first"],
        attempts=[(float(timestamp), Family[family])
                  for timestamp, family in data["attempts"]],
        attempts_v4=int(data["attempts_v4"]),
        attempts_v6=int(data["attempts_v6"]),
        duration_s=opt_float(data["duration_s"]),
    )


# -- the store -----------------------------------------------------------------


@dataclass
class CacheStats:
    """Lookup counters for one store handle (reset per handle)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def merge(self, other: "CacheStats") -> None:
        """Fold counters from another handle in (e.g. a worker's
        pickled store copy) so campaign totals stay truthful."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.invalid += other.invalid

    def summary(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"stores={self.stores} invalid={self.invalid}")


class CampaignStore:
    """Content-addressed cache of campaign run results on disk.

    Entries live at ``root/<key[:2]>/<key>.json`` where ``key`` is
    :meth:`key` over the run seed, configuration digest, and run
    coordinates.  Writes are atomic (temp file in the same directory,
    then ``os.replace``), so concurrent writers — e.g. several worker
    pools sharing one cache directory — can never leave a torn entry
    behind; a reader either sees a complete entry or none.  Reads
    validate the format version and completeness marker and fall back
    to fresh execution on anything unexpected.
    """

    def __init__(self, root: Union[str, Path],
                 use_index: bool = True) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        #: Batch lookups (:meth:`get_many`) consult the per-shard
        #: sidecar index when True; False forces per-key reads (the
        #: benchmark baseline, and an escape hatch).
        self.use_index = use_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignStore({str(self.root)!r}, {self.stats.summary()})"

    # -- addressing ------------------------------------------------------------

    @staticmethod
    def key(*parts: Any) -> str:
        """The content address of an entry: a digest over ``parts``
        plus the store format and package behavior version."""
        return config_digest(STORE_FORMAT, BEHAVIOR_VERSION, *parts)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` — a cheap ``stat``
        that does **not** validate the entry or touch the counters.
        Use for planning only; :meth:`get` remains the authority."""
        return self._path(key).is_file()

    # -- generic payloads ------------------------------------------------------

    def get(self, key: str,
            decode: "Callable[[Any], Decoded]") -> Optional[Decoded]:
        """Decoded payload for ``key``, or None (counted as a miss).

        Unreadable files, bad JSON, format mismatches, missing
        completeness markers, and decoder failures all count as
        ``invalid`` misses — the caller re-executes and overwrites.
        """
        path = self._path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if (isinstance(data, dict) and data.get("format") == STORE_FORMAT
                and data.get("complete") is True and "payload" in data):
            try:
                decoded = decode(data["payload"])
            except Exception:
                pass
            else:
                self.stats.hits += 1
                return decoded
        self.stats.invalid += 1
        self.stats.misses += 1
        return None

    def put(self, key: str, payload: Any) -> None:
        """Atomically persist ``payload`` (JSON-serializable) under
        ``key``; the ``complete`` marker goes in with the same write,
        so a torn write can never read as a valid entry."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": STORE_FORMAT, "complete": True, "key": key,
                 "payload": payload}
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                        prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # -- batch lookup + sidecar index ------------------------------------------

    def _index_path(self, shard: str) -> Path:
        """Sidecar index for one shard, kept *outside* the shard
        directory (``root/.index/<shard>.json``) so writing an index
        never bumps the shard's own mtime — the freshness marker."""
        return self.root / ".index" / f"{shard}.json"

    def _load_index(self, shard: str) -> Optional[dict]:
        """The shard's indexed payloads, or None.

        An index is served only when it is *provably fresh*: it
        records the shard directory's ``st_mtime_ns`` from before its
        payloads were listed, and any entry written or removed since
        bumps the directory mtime.  A stale, corrupt, missing, or
        format-mismatched index is simply ignored — the entry files
        stay the source of truth and per-key reads take over.
        """
        try:
            data = json.loads(self._index_path(shard)
                              .read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (not isinstance(data, dict)
                or data.get("index_format") != INDEX_FORMAT
                or data.get("store_format") != STORE_FORMAT
                or not isinstance(data.get("entries"), dict)):
            return None
        try:
            dir_mtime_ns = (self.root / shard).stat().st_mtime_ns
        except OSError:
            return None
        if data.get("dir_mtime_ns") != dir_mtime_ns:
            return None  # entries changed since the index was built
        return data["entries"]

    def _build_index(self, shard: str) -> Optional[dict]:
        """Read every valid entry of a shard once and persist the
        sidecar index; returns the payload mapping (or None when the
        shard does not exist).  Invalid entries are skipped — absent
        from the index, they keep falling back to per-key reads,
        which count them truthfully.  The recorded directory mtime is
        sampled *before* listing, so a concurrent writer can only make
        the index look stale, never serve missing entries as misses.
        """
        shard_dir = self.root / shard
        try:
            dir_mtime_ns = shard_dir.stat().st_mtime_ns
        except OSError:
            return None
        entries: dict = {}
        for path in shard_dir.glob("*.json"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if (isinstance(data, dict)
                    and data.get("format") == STORE_FORMAT
                    and data.get("complete") is True
                    and "payload" in data):
                entries[path.stem] = data["payload"]
        index = {"index_format": INDEX_FORMAT,
                 "store_format": STORE_FORMAT,
                 "dir_mtime_ns": dir_mtime_ns, "entries": entries}
        index_path = self._index_path(shard)
        try:
            index_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(index_path.parent),
                                            prefix=".tmp-",
                                            suffix=".json")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(index, handle, sort_keys=True)
                os.replace(tmp_name, index_path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # an unwritable index is a perf loss, not an error
        return entries

    def get_many(self, keys: "Iterable[str]",
                 decode: "Callable[[Any], Decoded]"
                 ) -> "Dict[str, Decoded]":
        """Batch lookup: decoded payloads for every key that hits.

        Keys are grouped by shard and each touched shard resolves
        through its sidecar index — one index read (or one rebuild
        pass) per shard instead of one ``stat`` + JSON read per key,
        which is what makes warm million-run campaigns resolve their
        hits at directory speed, not entry speed.  Keys the index
        cannot vouch for fall back to :meth:`get` one at a time, so
        counters (hits / misses / invalid) are identical to a pure
        per-key resolution; keys absent from the result are misses.
        """
        out: "Dict[str, Decoded]" = {}
        by_shard: "Dict[str, List[str]]" = {}
        for key in keys:
            by_shard.setdefault(key[:2], []).append(key)
        for shard, shard_keys in by_shard.items():
            indexed: Optional[dict] = None
            if self.use_index:
                indexed = self._load_index(shard)
                if indexed is None and any(
                        self.has(key) for key in shard_keys):
                    # Build only when the shard can actually serve a
                    # requested key: a miss-heavy campaign over a big
                    # store must not read (and duplicate) every entry
                    # just to conclude its own keys are new.  The
                    # existence probe is one stat per requested key —
                    # exactly the old per-spec planning cost, paid
                    # only on shards with no fresh index.
                    indexed = self._build_index(shard)
            for key in shard_keys:
                if indexed is not None and key in indexed:
                    try:
                        decoded = decode(indexed[key])
                    except Exception:
                        pass  # undecodable: per-key read settles it
                    else:
                        self.stats.hits += 1
                        out[key] = decoded
                        continue
                value = self.get(key, decode)
                if value is not None:
                    out[key] = value
        return out

    def get_many_records(self, keys: "Iterable[str]"
                         ) -> "Dict[str, RunRecord]":
        return self.get_many(keys, decode_record)

    # -- RunRecord convenience -------------------------------------------------

    def get_record(self, key: str) -> "Optional[RunRecord]":
        return self.get(key, decode_record)

    def put_record(self, key: str, record: "RunRecord") -> None:
        self.put(key, encode_record(record))

    # -- compaction ------------------------------------------------------------

    def entries(self) -> "Iterator[Tuple[str, Path]]":
        """Every ``(key, path)`` currently on disk, in sorted order.

        Walks the two-hex shard directories; anything that does not
        look like an entry file (temp files from in-flight writes,
        stray droppings) is not reported here — :meth:`gc` handles
        leftover temp files separately.
        """
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in sorted(shard.glob("*.json")):
                if not path.name.startswith(".tmp-"):
                    yield path.stem, path

    def gc(self, live_keys: "Iterable[str]") -> "GCStats":
        """Drop every entry whose key is not in ``live_keys``.

        Content-addressed entries accumulate forever: any sweep,
        seed, profile, or package-version change strands the old
        digests.  GC is a mark-and-sweep over the directory — the
        caller enumerates the keys its current campaigns reference
        (see ``TestRunner.store_keys``), everything else is deleted,
        and stale ``.tmp-*`` droppings from crashed writers go too.
        Run it offline: a writer racing the sweep would only lose
        cache entries (and re-execute), never correctness.
        """
        live = set(live_keys)
        stats = GCStats()
        dirty_shards: "set[str]" = set()
        for key, path in self.entries():
            size = path.stat().st_size
            if key in live:
                stats.kept += 1
                stats.kept_bytes += size
                continue
            path.unlink()
            stats.removed += 1
            stats.reclaimed_bytes += size
            dirty_shards.add(path.parent.name)
        if self.root.is_dir():
            for shard in self.root.iterdir():
                if not shard.is_dir() or shard.name == ".index":
                    continue
                for stale in shard.glob(".tmp-*"):
                    stats.reclaimed_bytes += stale.stat().st_size
                    stale.unlink()
                    stats.removed_tmp += 1
                    dirty_shards.add(shard.name)
                try:
                    shard.rmdir()  # only succeeds when emptied
                except OSError:
                    pass
            # Sidecar indexes are derived data: drop the ones whose
            # shard changed (or vanished) in this sweep — staleness
            # detection would ignore them anyway — and keep the still
            # fresh ones warm.  The next batch lookup rebuilds what is
            # missing from the surviving entries.
            index_dir = self.root / ".index"
            if index_dir.is_dir():
                for index_file in index_dir.iterdir():
                    shard = index_file.name.split(".")[0]
                    if not shard:
                        # .tmp-* dropping from a crashed index writer.
                        stats.reclaimed_bytes += \
                            index_file.stat().st_size
                        index_file.unlink()
                        stats.removed_tmp += 1
                    elif (shard in dirty_shards
                            or not (self.root / shard).is_dir()):
                        stats.reclaimed_bytes += \
                            index_file.stat().st_size
                        index_file.unlink()
                        stats.removed_index += 1
                try:
                    index_dir.rmdir()  # only succeeds when emptied
                except OSError:
                    pass
        return stats


@dataclass
class GCStats:
    """Outcome of one :meth:`CampaignStore.gc` sweep."""

    kept: int = 0
    kept_bytes: int = 0
    removed: int = 0
    reclaimed_bytes: int = 0
    removed_tmp: int = 0
    removed_index: int = 0

    def summary(self) -> str:
        return (f"kept={self.kept} ({self.kept_bytes} B) "
                f"removed={self.removed} tmp={self.removed_tmp} "
                f"reclaimed={self.reclaimed_bytes} B")
