"""The two-host local testbed topology (§4.3(i), App. Figure 3).

A client node and a server node on one directly connected segment.  The
server node runs the web service (NGINX's stand-in), the custom
authoritative DNS server, and a forwarding resolver whose timeout the
clients inherit; traffic shaping attaches to the server's interface
exactly where the paper's ``tc-netem`` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..dns.auth import AuthoritativeServer
from ..dns.recursive import ForwardingResolver
from ..dns.zone import Zone
from ..simnet.addr import Family, IPAddress, parse_address
from ..simnet.capture import PacketCapture
from ..simnet.host import Host
from ..simnet.netem import NetemFilter, NetemRule, NetemSpec
from ..simnet.network import Network, NetworkSegment
from ..simnet.packet import Protocol
from ..transport.tcp import TCPListener

#: Default addressing plan of the lab segment.
CLIENT_V4 = "192.0.2.1"
CLIENT_V6 = "2001:db8:1::1"
SERVER_V4 = "192.0.2.10"
SERVER_V6 = "2001:db8:1::10"
RESOLVER_V4 = "192.0.2.2"
RESOLVER_V6 = "2001:db8:1::2"

#: The domain the testbed serves; every test qname lives under it.
TEST_DOMAIN = "he-test.example"
WEB_PORT = 80


@dataclass
class EchoExchange:
    """Record of one HTTP-ish request served by the test web server."""

    timestamp: float
    client_address: IPAddress
    server_address: IPAddress

    @property
    def family(self) -> Family:
        from ..simnet.addr import family_of

        return family_of(self.client_address)


class EchoWebServer:
    """The web service under test: answers GET with the client's address.

    This is both the NGINX stand-in of the local testbed and the
    measurement primitive of the web tool: "our web server returns the
    client's source address in its response" (§4.3(ii)).
    """

    def __init__(self, host: Host, port: int = WEB_PORT) -> None:
        self.host = host
        self.port = port
        self.exchanges: List[EchoExchange] = []
        self._listener: Optional[TCPListener] = None

    def start(self) -> "EchoWebServer":
        self._listener = self.host.tcp.listen(self.port)
        self.host.sim.process(self._accept_loop(),
                              name=f"web:{self.host.name}")
        return self

    def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def _accept_loop(self):
        from ..transport.errors import SocketClosed

        while self._listener is not None:
            try:
                connection = yield self._listener.accept()
            except SocketClosed:
                return
            self.host.sim.process(self._serve_one(connection),
                                  name="web-conn")

    def _serve_one(self, connection):
        from ..transport.errors import SocketClosed, ConnectionAborted

        try:
            request = yield connection.recv()
        except (SocketClosed, ConnectionAborted):
            return
        if not request:
            return
        self.exchanges.append(EchoExchange(
            timestamp=self.host.sim.now,
            client_address=connection.remote_addr,
            server_address=connection.local_addr))
        body = str(connection.remote_addr).encode("ascii")
        try:
            connection.send(b"HTTP/1.1 200 OK\r\n\r\n" + body)
        except SocketClosed:
            return


class LocalTestbed:
    """Client node + server node with the paper's server-side services."""

    def __init__(self, seed: int = 0,
                 resolver_timeout: float = 5.0,
                 propagation_delay: float = 0.0001) -> None:
        self.network = Network(seed=seed)
        self.sim = self.network.sim
        self.segment: NetworkSegment = self.network.add_segment(
            "lab", propagation_delay=propagation_delay)
        self.client: Host = self.network.add_host("client-node")
        self.server: Host = self.network.add_host("server-node")
        self.client_iface = self.network.connect(
            self.client, self.segment, [CLIENT_V4, CLIENT_V6])
        self.server_iface = self.network.connect(
            self.server, self.segment,
            [SERVER_V4, SERVER_V6, RESOLVER_V4, RESOLVER_V6])

        self.zone = self._build_zone()
        self.auth = AuthoritativeServer(
            self.server, [self.zone], port=5353).start()
        self.resolver = ForwardingResolver(
            self.server, upstream=RESOLVER_V4, upstream_port=5353,
            upstream_timeout=resolver_timeout)
        # The forwarder listens on :53 for the client's stub queries and
        # forwards to the co-located authoritative server on :5353.
        self.resolver.start()
        self.web = EchoWebServer(self.server, WEB_PORT).start()
        self._extra_addresses: List[IPAddress] = []

    # -- zone -----------------------------------------------------------------

    def _build_zone(self) -> Zone:
        zone = Zone(TEST_DOMAIN)
        zone.add_address("*", SERVER_V4)
        zone.add_address("*", SERVER_V6)
        zone.add_address("www", SERVER_V4)
        zone.add_address("www", SERVER_V6)
        return zone

    @property
    def test_domain(self) -> str:
        return TEST_DOMAIN

    @property
    def resolver_addresses(self) -> List[str]:
        return [RESOLVER_V4, RESOLVER_V6]

    def unique_hostname(self, label: str) -> str:
        """A fresh in-zone hostname (nonce against caching)."""
        return f"{label}.{TEST_DOMAIN}"

    def add_domain(self, label: str,
                   addresses: List[Union[str, IPAddress]]) -> str:
        """Register an extra name, e.g. for address-selection tests.

        Addresses that should be unresponsive simply stay unattached on
        the segment — the blackhole behaviour of §4.1(iii).
        """
        hostname = f"{label}.{TEST_DOMAIN}"
        self.zone.add_addresses(label, addresses)
        return hostname

    def attach_server_address(self, address: Union[str, IPAddress]) -> None:
        """Make one more address answer on the server node."""
        parsed = parse_address(address)
        self.server_iface.add_address(parsed)
        self._extra_addresses.append(parsed)

    # -- traffic shaping (the tc-netem equivalent) ---------------------------------

    def delay_ipv6_tcp(self, delay_s: float) -> None:
        """Delay IPv6 TCP on the server side — the CAD experiment knob.

        Scoped to TCP so that co-located DNS service timing is not
        perturbed (the paper runs DNS separately / pre-resolved).
        """
        self.server_iface.egress.add_rule(NetemRule(
            spec=NetemSpec(delay=delay_s),
            filter=NetemFilter(family=Family.V6, protocol=Protocol.TCP),
            name="cad-delay-v6"))

    def delay_family_all(self, family: Family, delay_s: float) -> None:
        """Delay every packet of one family (resolver experiments)."""
        self.server_iface.egress.add_rule(NetemRule(
            spec=NetemSpec(delay=delay_s),
            filter=NetemFilter(family=family),
            name=f"delay-{family.label}"))

    def clear_shaping(self) -> None:
        self.server_iface.egress.clear()
        self.server_iface.ingress.clear()

    def set_dns_delay(self, rtype, delay_s: float) -> None:
        """Statically delay one DNS record type at the auth server."""
        self.auth.static_delays[rtype] = delay_s

    def clear_dns_delays(self) -> None:
        self.auth.static_delays.clear()

    # -- capturing ---------------------------------------------------------------

    def start_client_capture(self) -> PacketCapture:
        return self.client.start_capture()

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)
