"""Inference of HE parameters from packet captures (§4.3).

"We determine the CAD by measuring the time between the first IPv6
packet and the first IPv4 packet observed in the client's packet
capture."  These helpers operate purely on :class:`PacketCapture`
contents, treating the client as the black box the methodology demands
— nothing here looks at engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..simnet.addr import Family
from ..simnet.capture import Direction, PacketCapture
from ..simnet.packet import Protocol
from ..dns.message import DNSMessage
from ..dns.rdata import RdataType


def infer_cad(capture: PacketCapture) -> Optional[float]:
    """CAD = t(first IPv4 attempt) − t(first IPv6 attempt).

    ``None`` when either family never attempted (no fallback observed —
    wget, or the delay was below the client's CAD).
    """
    first_v6 = capture.first_connection_attempt(Family.V6)
    first_v4 = capture.first_connection_attempt(Family.V4)
    if first_v6 is None or first_v4 is None:
        return None
    return first_v4.timestamp - first_v6.timestamp


def established_family(capture: PacketCapture) -> Optional[Family]:
    """Family of the first completed handshake seen in the capture."""
    for frame in capture:
        packet = frame.packet
        if (frame.direction is Direction.IN and packet.is_syn_ack):
            return packet.family
        if (frame.direction is Direction.IN
                and packet.protocol is Protocol.QUIC
                and packet.quic_type is not None
                and packet.quic_type.value == "handshake"):
            return packet.family
    return None


def attempt_sequence(capture: PacketCapture) -> List[Tuple[float, Family]]:
    """(timestamp, family) of each distinct connection attempt.

    Retransmissions to the same (address, port) pair are collapsed so
    the sequence matches Figure 5's "n-th connection attempt" axis.
    """
    seen = set()
    sequence: List[Tuple[float, Family]] = []
    for frame in capture.connection_attempts():
        packet = frame.packet
        key = (packet.dst, packet.dport, packet.sport)
        if key in seen:
            continue
        seen.add(key)
        sequence.append((frame.timestamp, packet.family))
    return sequence


def attempts_per_family(capture: PacketCapture) -> "dict[Family, int]":
    """How many distinct addresses were attempted per family (Table 2)."""
    counts = {Family.V4: 0, Family.V6: 0}
    seen = set()
    for frame in capture.connection_attempts():
        packet = frame.packet
        key = (packet.dst, packet.dport)
        if key in seen:
            continue
        seen.add(key)
        counts[packet.family] += 1
    return counts


@dataclass(frozen=True)
class DnsObservation:
    """Timing of one DNS query/response pair seen on the wire."""

    rtype: RdataType
    query_at: float
    response_at: Optional[float]

    @property
    def latency(self) -> Optional[float]:
        if self.response_at is None:
            return None
        return self.response_at - self.query_at


def dns_observations(capture: PacketCapture) -> List[DnsObservation]:
    """Decode DNS traffic in a capture into query/response timings."""
    queries: dict = {}
    order: List[Tuple[int, RdataType, float]] = []
    responses: dict = {}
    for frame in capture:
        packet = frame.packet
        if packet.protocol is not Protocol.UDP:
            continue
        try:
            message = DNSMessage.decode(packet.payload)
        except Exception:
            continue
        if not message.questions:
            continue
        rtype = message.question.rtype
        if not message.qr and frame.direction is Direction.OUT:
            key = (message.id, rtype)
            if key not in queries:
                queries[key] = frame.timestamp
                order.append((message.id, rtype, frame.timestamp))
        elif message.qr and frame.direction is Direction.IN:
            responses.setdefault((message.id, rtype), frame.timestamp)
    out = []
    for message_id, rtype, sent_at in order:
        out.append(DnsObservation(
            rtype=rtype, query_at=sent_at,
            response_at=responses.get((message_id, rtype))))
    return out


def query_order(capture: PacketCapture) -> List[RdataType]:
    """Record types in the order their first queries were sent."""
    return [obs.rtype for obs in dns_observations(capture)]


def aaaa_before_a(capture: PacketCapture) -> Optional[bool]:
    """Did the AAAA query precede the A query?  None if either absent."""
    order = query_order(capture)
    if RdataType.AAAA not in order or RdataType.A not in order:
        return None
    return order.index(RdataType.AAAA) < order.index(RdataType.A)


def infer_resolution_delay(capture: PacketCapture) -> Optional[float]:
    """Time from the A response to the first IPv4 connection attempt.

    Meaningful in the RD test case, where the AAAA answer is delayed
    beyond any sensible RD: a client implementing RFC 8305 §3 starts
    its IPv4 attempt ~RD after the A answer; a client waiting for both
    answers shows the resolver timeout here instead.
    """
    observations = dns_observations(capture)
    a_response = next((obs.response_at for obs in observations
                       if obs.rtype is RdataType.A
                       and obs.response_at is not None), None)
    if a_response is None:
        return None
    first_v4 = capture.first_connection_attempt(Family.V4)
    if first_v4 is None or first_v4.timestamp < a_response:
        return None
    return first_v4.timestamp - a_response


def time_to_first_attempt(capture: PacketCapture) -> Optional[float]:
    """Time from the first DNS query to the first connection attempt."""
    observations = dns_observations(capture)
    if not observations:
        return None
    first_query = min(obs.query_at for obs in observations)
    attempts = capture.connection_attempts()
    if not attempts:
        return None
    return attempts[0].timestamp - first_query
