"""Inference of HE parameters from packet captures (§4.3).

"We determine the CAD by measuring the time between the first IPv6
packet and the first IPv4 packet observed in the client's packet
capture."  These helpers operate purely on :class:`PacketCapture`
contents, treating the client as the black box the methodology demands
— nothing here looks at engine internals.

:class:`CaptureObservation` is the hot path: it walks a capture exactly
once, decodes each DNS payload at most once, and derives every field
the runner records.  The historical per-question functions
(:func:`infer_cad`, :func:`established_family`, …) remain as thin
wrappers over it, so call sites that only need one answer keep working
unchanged — but anything observing several fields of the same capture
should build one observation and read them all from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..simnet.addr import Family
from ..simnet.capture import Direction, PacketCapture
from ..simnet.packet import Protocol
from ..dns.message import DNSMessage
from ..dns.rdata import RdataType

#: Process-wide intern table of decoded DNS payloads, keyed by the raw
#: payload bytes.  Repetitions of the same run configuration emit
#: byte-identical queries and answers (repetition-independent qnames,
#: per-stub deterministic query ids), so a repetition-heavy campaign
#: decodes each distinct payload once, not once per run.  ``None``
#: records an undecodable payload, so garbage is not re-parsed either.
_decode_interned: "Dict[bytes, Optional[DNSMessage]]" = {}

#: Intern-table bound; decoded messages are small, but campaigns are
#: unbounded.  On overflow the table is simply dropped — interning is
#: a pure cache, and a clean restart beats eviction bookkeeping.
_DECODE_INTERN_MAX = 65536


def clear_dns_decode_intern() -> None:
    """Drop the process-wide decode intern table (tests, memory)."""
    _decode_interned.clear()


@dataclass(frozen=True)
class DnsObservation:
    """Timing of one DNS query/response pair seen on the wire."""

    rtype: RdataType
    query_at: float
    response_at: Optional[float]

    @property
    def latency(self) -> Optional[float]:
        if self.response_at is None:
            return None
        return self.response_at - self.query_at


class CaptureObservation:
    """Everything the testbed infers from one capture, in a single pass.

    The legacy helpers each re-walked the full frame list and the DNS
    ones re-decoded every UDP payload, so observing one run cost ~7
    scans and ~4 decodes per DNS packet.  This class performs one walk
    at construction time, decoding each DNS payload at most once, and
    exposes all derived values as attributes.

    Identical payload bytes are *interned* across observations: the
    first sighting decodes (or fails to decode) and the result is
    memoized process-wide, so repetitions of the same run — which emit
    byte-identical DNS traffic — cost zero additional decodes.
    ``dns_payloads_decoded`` counts actual decode attempts and
    ``dns_payloads_interned`` counts intern-table hits — tests assert
    the single-decode guarantee and the cross-repetition drop from
    these.  ``decode_dns=False`` skips DNS handling entirely for
    callers that only need connection-level fields (the DNS-derived
    attributes then read as empty/None).
    """

    __slots__ = (
        "established_family", "established_protocol", "first_attempt_v4_at",
        "first_attempt_v6_at", "first_attempt_at", "first_attempt_port",
        "attempt_sequence", "attempts_per_family", "attempts_quic",
        "dns_observations", "dns_payloads_decoded", "dns_payloads_interned",
    )

    def __init__(self, capture: PacketCapture,
                 decode_dns: bool = True) -> None:
        established: Optional[Family] = None
        established_protocol: Optional[Protocol] = None
        first_v4: Optional[float] = None
        first_v6: Optional[float] = None
        first_any: Optional[float] = None
        first_port: Optional[int] = None
        sequence: List[Tuple[float, Family]] = []
        seen_attempts = set()
        per_family = {Family.V4: 0, Family.V6: 0}
        quic_attempts = 0
        seen_addresses = set()
        queries: Dict[Tuple[int, RdataType], float] = {}
        order: List[Tuple[int, RdataType, float]] = []
        responses: Dict[Tuple[int, RdataType], float] = {}
        decodes = 0
        interned = 0
        intern_table = _decode_interned

        for frame in capture:
            packet = frame.packet
            direction = frame.direction
            if direction is Direction.IN:
                if established is None and (
                        packet.is_syn_ack
                        or (packet.protocol is Protocol.QUIC
                            and packet.quic_type is not None
                            and packet.quic_type.value == "handshake")):
                    established = packet.family
                    established_protocol = packet.protocol
            elif packet.is_connection_attempt:
                family = packet.family
                timestamp = frame.timestamp
                if first_any is None:
                    first_any = timestamp
                    first_port = packet.dport
                if family is Family.V6:
                    if first_v6 is None:
                        first_v6 = timestamp
                elif first_v4 is None:
                    first_v4 = timestamp
                key = (packet.dst, packet.dport, packet.sport)
                if key not in seen_attempts:
                    seen_attempts.add(key)
                    sequence.append((timestamp, family))
                    if packet.protocol is Protocol.QUIC:
                        quic_attempts += 1
                address = (packet.dst, packet.dport)
                if address not in seen_addresses:
                    seen_addresses.add(address)
                    per_family[family] += 1
            if not decode_dns or packet.protocol is not Protocol.UDP:
                continue
            payload = packet.payload
            internable = type(payload) is bytes
            if internable and payload in intern_table:
                interned += 1
                message = intern_table[payload]
            else:
                decodes += 1
                try:
                    message = DNSMessage.decode(payload)
                except Exception:
                    message = None
                if internable:
                    if len(intern_table) >= _DECODE_INTERN_MAX:
                        intern_table.clear()
                    intern_table[payload] = message
            if message is None or not message.questions:
                continue
            rtype = message.question.rtype
            if not message.qr and direction is Direction.OUT:
                key = (message.id, rtype)
                if key not in queries:
                    queries[key] = frame.timestamp
                    order.append((message.id, rtype, frame.timestamp))
            elif message.qr and direction is Direction.IN:
                responses.setdefault((message.id, rtype), frame.timestamp)

        self.established_family = established
        self.established_protocol = established_protocol
        self.first_attempt_v4_at = first_v4
        self.first_attempt_v6_at = first_v6
        self.first_attempt_at = first_any
        self.first_attempt_port = first_port
        self.attempt_sequence = sequence
        self.attempts_per_family = per_family
        self.attempts_quic = quic_attempts
        self.dns_observations = [
            DnsObservation(rtype=rtype, query_at=sent_at,
                           response_at=responses.get((message_id, rtype)))
            for message_id, rtype, sent_at in order]
        self.dns_payloads_decoded = decodes
        self.dns_payloads_interned = interned

    # -- derived values ----------------------------------------------------

    @property
    def cad(self) -> Optional[float]:
        """CAD = t(first IPv4 attempt) − t(first IPv6 attempt).

        ``None`` when either family never attempted (no fallback
        observed — wget, or the delay was below the client's CAD).
        """
        if self.first_attempt_v6_at is None or self.first_attempt_v4_at is None:
            return None
        return self.first_attempt_v4_at - self.first_attempt_v6_at

    @property
    def query_order(self) -> List[RdataType]:
        """Record types in the order their first queries were sent."""
        return [obs.rtype for obs in self.dns_observations]

    @property
    def queried_https(self) -> bool:
        """Did the client send an HTTPS (SVCB) query?  The HEv3
        discovery observable; always False without DNS decoding."""
        return any(obs.rtype is RdataType.HTTPS
                   for obs in self.dns_observations)

    @property
    def aaaa_first(self) -> Optional[bool]:
        """Did the AAAA query precede the A query?  None if either absent."""
        order = self.query_order
        if RdataType.AAAA not in order or RdataType.A not in order:
            return None
        return order.index(RdataType.AAAA) < order.index(RdataType.A)

    @property
    def resolution_delay(self) -> Optional[float]:
        """Time from the A response to the first IPv4 connection attempt.

        Meaningful in the RD test case, where the AAAA answer is
        delayed beyond any sensible RD: a client implementing RFC 8305
        §3 starts its IPv4 attempt ~RD after the A answer; a client
        waiting for both answers shows the resolver timeout here
        instead.
        """
        a_response = next((obs.response_at for obs in self.dns_observations
                           if obs.rtype is RdataType.A
                           and obs.response_at is not None), None)
        if a_response is None:
            return None
        first_v4 = self.first_attempt_v4_at
        if first_v4 is None or first_v4 < a_response:
            return None
        return first_v4 - a_response

    @property
    def time_to_first_attempt(self) -> Optional[float]:
        """Time from the first DNS query to the first connection attempt."""
        if not self.dns_observations or self.first_attempt_at is None:
            return None
        first_query = min(obs.query_at for obs in self.dns_observations)
        return self.first_attempt_at - first_query


# --------------------------------------------------------------------------
# Legacy per-question helpers — thin wrappers over CaptureObservation.
# Each builds a fresh observation; prefer one CaptureObservation when
# reading several fields of the same capture.
# --------------------------------------------------------------------------


def infer_cad(capture: PacketCapture) -> Optional[float]:
    """CAD = t(first IPv4 attempt) − t(first IPv6 attempt).

    One capture walk, no DNS decoding.
    """
    return CaptureObservation(capture, decode_dns=False).cad


def established_family(capture: PacketCapture) -> Optional[Family]:
    """Family of the first completed handshake seen in the capture.

    One capture walk, no DNS decoding.
    """
    return CaptureObservation(capture, decode_dns=False).established_family


def attempt_sequence(capture: PacketCapture) -> List[Tuple[float, Family]]:
    """(timestamp, family) of each distinct connection attempt.

    Retransmissions to the same (address, port) pair are collapsed so
    the sequence matches Figure 5's "n-th connection attempt" axis.
    One capture walk, no DNS decoding.
    """
    return CaptureObservation(capture, decode_dns=False).attempt_sequence


def attempts_per_family(capture: PacketCapture) -> "dict[Family, int]":
    """How many distinct addresses were attempted per family (Table 2).

    One capture walk, no DNS decoding.
    """
    return CaptureObservation(capture, decode_dns=False).attempts_per_family


def dns_observations(capture: PacketCapture) -> List[DnsObservation]:
    """Decode DNS traffic in a capture into query/response timings.

    One capture walk, one decode per DNS payload.
    """
    return CaptureObservation(capture).dns_observations


def query_order(capture: PacketCapture) -> List[RdataType]:
    """Record types in the order their first queries were sent.

    One capture walk, one decode per DNS payload.
    """
    return CaptureObservation(capture).query_order


def aaaa_before_a(capture: PacketCapture) -> Optional[bool]:
    """Did the AAAA query precede the A query?  None if either absent.

    One capture walk, one decode per DNS payload.
    """
    return CaptureObservation(capture).aaaa_first


def infer_resolution_delay(capture: PacketCapture) -> Optional[float]:
    """Time from the A response to the first IPv4 connection attempt.

    One capture walk, one decode per DNS payload.
    """
    return CaptureObservation(capture).resolution_delay


def time_to_first_attempt(capture: PacketCapture) -> Optional[float]:
    """Time from the first DNS query to the first connection attempt.

    One capture walk, one decode per DNS payload.
    """
    return CaptureObservation(capture).time_to_first_attempt
