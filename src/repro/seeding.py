"""Stable per-run seed derivation.

Reproducibility demands that the seed of every isolated test run be a
pure function of the campaign seed and the run coordinates.  Python's
built-in ``hash()`` is salted by ``PYTHONHASHSEED`` for strings, so a
tuple hash differs between interpreter invocations — and between pool
workers started with ``spawn`` — silently breaking replay.  Every run
seed in the codebase therefore goes through :func:`stable_run_seed`,
which digests a canonical rendering of the coordinates instead.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from typing import Union

SeedPart = Union[int, float, str, bool, None]

#: Run seeds are 31-bit so they fit any RNG seed slot comfortably.
_SEED_MASK = 0x7FFFFFFF


def stable_run_seed(*parts: SeedPart) -> int:
    """A 31-bit seed digested from the canonical form of ``parts``.

    Unlike ``hash(tuple(...))`` the result is identical across
    interpreter invocations, ``PYTHONHASHSEED`` values, and process
    pool workers, so campaigns replay exactly no matter where each run
    executes.
    """
    canonical = "\x1f".join(f"{type(p).__name__}:{p!r}" for p in parts)
    return zlib.crc32(canonical.encode("utf-8")) & _SEED_MASK


def stable_unit(*parts: SeedPart) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from ``parts``.

    The fault-injection and retry machinery needs reproducible
    pseudo-randomness (which entries a fault plan targets, how much
    jitter a retry sleeps) that is identical across interpreter
    invocations and pool workers — same contract as
    :func:`stable_run_seed`, rescaled to the unit interval.
    """
    return stable_run_seed(*parts) / float(_SEED_MASK + 1)


def derive_rng(*parts: SeedPart) -> random.Random:
    """An independent :class:`random.Random` derived from ``parts``.

    Where :func:`stable_run_seed` hands out 31-bit seeds for whole
    runs, sampling subsystems need a *stream* of reproducible draws per
    coordinate — e.g. ``(population seed, field label, sample index)``
    — with no correlation between adjacent coordinates.  The full
    SHA-256 digest of the canonical part rendering seeds the generator,
    so every coordinate gets its own well-mixed stream and the mapping
    is identical across interpreters, ``PYTHONHASHSEED`` values, and
    pool workers.
    """
    canonical = "\x1f".join(f"{type(p).__name__}:{p!r}" for p in parts)
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest, "big"))


def backoff_jitter(seed: int, attempt: int, base: float = 0.05,
                   cap: float = 2.0) -> float:
    """Seconds to sleep before retry ``attempt`` (0-based): seeded,
    bounded exponential backoff with jitter.

    The window doubles per attempt from ``base`` up to ``cap``; the
    delay is drawn uniformly from the upper half of the window
    (``[window/2, window)``), so retries neither stampede in lockstep
    nor collapse to zero.  The draw is a pure function of
    ``(seed, attempt)``, which makes every retry schedule replayable —
    a chaos run and its re-run back off at the exact same instants.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0: {attempt}")
    window = min(cap, base * (2 ** attempt))
    return window * (0.5 + 0.5 * stable_unit(seed, "backoff", attempt))
