"""Stable per-run seed derivation.

Reproducibility demands that the seed of every isolated test run be a
pure function of the campaign seed and the run coordinates.  Python's
built-in ``hash()`` is salted by ``PYTHONHASHSEED`` for strings, so a
tuple hash differs between interpreter invocations — and between pool
workers started with ``spawn`` — silently breaking replay.  Every run
seed in the codebase therefore goes through :func:`stable_run_seed`,
which digests a canonical rendering of the coordinates instead.
"""

from __future__ import annotations

import zlib
from typing import Union

SeedPart = Union[int, float, str, bool, None]

#: Run seeds are 31-bit so they fit any RNG seed slot comfortably.
_SEED_MASK = 0x7FFFFFFF


def stable_run_seed(*parts: SeedPart) -> int:
    """A 31-bit seed digested from the canonical form of ``parts``.

    Unlike ``hash(tuple(...))`` the result is identical across
    interpreter invocations, ``PYTHONHASHSEED`` values, and process
    pool workers, so campaigns replay exactly no matter where each run
    executes.
    """
    canonical = "\x1f".join(f"{type(p).__name__}:{p!r}" for p in parts)
    return zlib.crc32(canonical.encode("utf-8")) & _SEED_MASK
