"""Command-line interface: regenerate any table or figure.

Examples::

    python -m repro table1
    python -m repro table2 --seed 1
    python -m repro table3 --repetitions 64
    python -m repro figure2 --step 25
    python -m repro --workers 8 figure2 --step 5
    python -m repro --cache-dir ~/.cache/repro figure2 --step 5
    python -m repro figure5
    python -m repro delayed-a
    python -m repro trace --delay-ms 400
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _store_from(args: argparse.Namespace):
    """The campaign store selected by ``--cache-dir`` / ``--no-cache``
    (or the ``REPRO_CACHE_DIR`` environment default), or None."""
    if getattr(args, "no_cache", False) or not getattr(args, "cache_dir",
                                                      None):
        return None
    from .testbed.store import CampaignStore

    return CampaignStore(args.cache_dir)


def _report_cache(store) -> None:
    """One summary line per campaign so warm re-renders are visible
    (and scriptable: CI asserts on the hit counters)."""
    if store is not None:
        print(f"[cache] {store.stats.summary()} root={store.root}")


def _cmd_table1(args: argparse.Namespace) -> None:
    from .analysis import render_table, table1_parameters

    headers, rows = table1_parameters()
    print(render_table(headers, rows,
                       title="Table 1: HE parameters across versions"))


def _cmd_table2(args: argparse.Namespace) -> None:
    from .analysis import render_table2, table2_features
    from .webtool import UAEntry, WebCampaign

    store = _store_from(args)
    web = None
    if not args.no_web:
        campaign = WebCampaign(seed=args.seed + 1,
                               repetitions=args.repetitions)
        web = campaign.run(
            entries=tuple(UAEntry(*entry) for entry in TABLE2_WEB_ENTRIES),
            workers=args.workers, store=store)
    rows = table2_features(seed=args.seed, web_campaign=web,
                           workers=args.workers, store=store)
    print(render_table2(rows))
    _report_cache(store)


def _cmd_table3(args: argparse.Namespace) -> None:
    from .analysis import render_table3, table3_resolvers

    store = _store_from(args)
    rows = table3_resolvers(seed=args.seed,
                            share_repetitions=args.repetitions,
                            delay_repetitions=max(3, args.repetitions // 20),
                            workers=args.workers, store=store)
    print(render_table3(rows))
    _report_cache(store)


def _cmd_table4(args: argparse.Namespace) -> None:
    from .analysis import render_table4, table4_inventory

    print(render_table4(table4_inventory(seed=args.seed)))


def _cmd_table5(args: argparse.Namespace) -> None:
    from .analysis import render_table, table5_matrix
    from .webtool import TABLE5_MATRIX, WebCampaign

    store = _store_from(args)
    campaign = WebCampaign(seed=args.seed, repetitions=args.repetitions)
    result = campaign.run(entries=TABLE5_MATRIX, workers=args.workers,
                          store=store)
    headers, rows = table5_matrix(result)
    print(render_table(headers, rows,
                       title="Table 5: web-measured OS/browser matrix"))
    print(f"\n{len(result)} sessions, {result.combinations()} "
          "OS/browser combinations")
    _report_cache(store)


def _cmd_figure2(args: argparse.Namespace) -> None:
    from .analysis import figure2_sweep, render_figure2

    store = _store_from(args)
    series = figure2_sweep(step_ms=args.step, stop_ms=args.stop,
                           seed=args.seed, workers=args.workers,
                           store=store)
    print(render_figure2(series))
    _report_cache(store)


def _cmd_figure4(args: argparse.Namespace) -> None:
    from .clients import get_profile
    from .webtool import (WebToolDeployment, WebToolSession,
                          render_session_ladder)

    deployment = WebToolDeployment(seed=args.seed)
    for name, version in (("Chrome", "130.0"), ("Safari", "17.6")):
        session = WebToolSession(deployment, get_profile(name, version))
        print(render_session_ladder(session.run()))
        print()


#: The client/version rows of the Figure 5 rendering (shared with
#: ``repro cache gc``'s live-key planning).
FIGURE5_CLIENTS = (
    ("wget", "1.21.3"), ("curl", "7.88.1"), ("Safari", "17.6"),
    ("Firefox", "132.0"), ("Edge", "130.0"), ("Chromium", "130.0"),
    ("Chrome", "130.0"))


def _cmd_figure5(args: argparse.Namespace) -> None:
    from .analysis import figure5_attempts, render_figure5
    from .clients import get_profile

    clients = [get_profile(n, v) for n, v in FIGURE5_CLIENTS]
    store = _store_from(args)
    series = figure5_attempts(clients, seed=args.seed,
                              workers=args.workers, store=store)
    print(render_figure5(series))
    _report_cache(store)


def _cmd_delayed_a(args: argparse.Namespace) -> None:
    from .clients import Client, get_profile
    from .dns import RdataType
    from .testbed.topology import LocalTestbed

    print("A record delayed 2 s; IPv6 and AAAA fully healthy:\n")
    for name, version, flag in (("Chrome", "130.0", False),
                                ("Firefox", "132.0", False),
                                ("Safari", "17.6", False),
                                ("Chrome", "130.0", True)):
        testbed = LocalTestbed(seed=args.seed)
        testbed.set_dns_delay(RdataType.A, 2.0)
        client = Client(testbed.client, get_profile(name, version),
                        testbed.resolver_addresses[:1], hev3_flag=flag)
        result = testbed.sim.run_until(
            client.fetch("www.he-test.example"))
        label = f"{name} {version}" + (" +HEv3 flag" if flag else "")
        print(f"  {label:<26} connected after "
              f"{result.he.time_to_connect * 1000:7.1f} ms via "
              f"{result.used_family.label}")


#: The UA combinations the Table 2 web-validation campaign visits
#: (shared with ``repro cache gc``'s live-key planning).
TABLE2_WEB_ENTRIES = (
    ("Linux", "", "Chrome", "130.0.0"),
    ("Linux", "", "Chromium", "130.0.0"),
    ("Windows", "10", "Edge", "130.0.0"),
    ("Linux", "", "Firefox", "132.0"),
    ("Mac OS X", "10.15.7", "Safari", "17.6"),
)


def _cmd_fingerprint(args: argparse.Namespace) -> None:
    from .clients.registry import resolve_profiles
    from .conformance import (fingerprint_client, fingerprints_to_json,
                              render_fingerprint, scenario_battery)

    store = _store_from(args)
    battery = scenario_battery(stop_ms=args.stop)
    try:
        profiles = resolve_profiles(args.client)
    except KeyError as exc:
        raise SystemExit(str(exc))
    unsupported = [p.full_name for p in profiles
                   if not p.supports_local_tests]
    profiles = [p for p in profiles if p.supports_local_tests]
    if not profiles:
        raise SystemExit(
            f"{', '.join(unsupported)} cannot run on the local testbed "
            "(mobile browsers are web-tool only); nothing to fingerprint")
    fingerprints = [
        fingerprint_client(profile, seed=args.seed, store=store,
                           workers=args.workers, battery=battery)
        for profile in profiles]
    if args.json:
        print(fingerprints_to_json(fingerprints))
    else:
        print("\n\n".join(render_fingerprint(fp) for fp in fingerprints))
    _report_cache(store)


def _cmd_conformance(args: argparse.Namespace) -> None:
    from .clients.registry import local_testbed_clients
    from .conformance import (fingerprint_client, fingerprints_to_json,
                              render_conformance_summary,
                              render_scenario_catalog, scenario_battery)

    battery = scenario_battery(stop_ms=args.stop)
    if args.list:
        print(render_scenario_catalog(battery))
        return
    store = _store_from(args)
    fingerprints = [
        fingerprint_client(profile, seed=args.seed, store=store,
                           workers=args.workers, battery=battery)
        for profile in local_testbed_clients()]
    if args.json:
        print(fingerprints_to_json(fingerprints))
    else:
        print(render_conformance_summary(fingerprints))
    _report_cache(store)


def _cmd_cache_gc(args: argparse.Namespace) -> None:
    """Mark-and-sweep the campaign store against the keys the current
    CLI campaigns (tables, figures, conformance, web, resolvers) would
    reference with the given seed and options."""
    from .analysis import (figure2_runner, figure5_runner,
                           table2_local_runner, table3_store_keys)
    from .clients.registry import (figure2_clients, get_profile,
                                   local_testbed_clients, table2_clients)
    from .conformance import ConformanceProbe, scenario_battery
    from .webtool import TABLE5_MATRIX, UAEntry, WebCampaign

    store = _store_from(args)
    if store is None:
        raise SystemExit("cache gc needs --cache-dir (or $REPRO_CACHE_DIR)")
    seed = args.seed
    live: "set[str]" = set()
    live.update(figure2_runner(figure2_clients(), step_ms=args.step,
                               stop_ms=args.stop, seed=seed).store_keys())
    figure5_profiles = [get_profile(n, v) for n, v in FIGURE5_CLIENTS]
    live.update(figure5_runner(figure5_profiles, seed=seed).store_keys())
    for profile in table2_clients():
        if profile.supports_local_tests:
            live.update(table2_local_runner(profile, seed=seed)
                        .store_keys())
    live.update(table3_store_keys(
        seed=seed, share_repetitions=args.table3_repetitions,
        delay_repetitions=max(3, args.table3_repetitions // 20)))
    battery = scenario_battery()
    for profile in local_testbed_clients():
        probe = ConformanceProbe(profile, seed=seed, store=store,
                                 battery=battery)
        live.update(probe.store_keys())
    live.update(WebCampaign(seed=seed + 1, repetitions=10).store_keys(
        tuple(UAEntry(*entry) for entry in TABLE2_WEB_ENTRIES)))
    live.update(WebCampaign(seed=seed, repetitions=5).store_keys(
        TABLE5_MATRIX))
    stats = store.gc(live)
    print(f"[cache gc] {stats.summary()} root={store.root}")


def _cmd_trace(args: argparse.Namespace) -> None:
    from .core import rfc8305_params
    from .core.engine import HappyEyeballsEngine
    from .dns.stub import StubResolver
    from .testbed.topology import LocalTestbed

    testbed = LocalTestbed(seed=args.seed)
    testbed.delay_ipv6_tcp(args.delay_ms / 1000.0)
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    engine = HappyEyeballsEngine(testbed.client, stub, rfc8305_params())
    result = testbed.sim.run_until(engine.connect("www.he-test.example"))
    print(result.trace.render())
    print(f"\nwinner: {result.winning_family.label}, "
          f"time to connect {result.time_to_connect * 1000:.1f} ms")


def positive_int(value: str) -> int:
    workers = int(value)
    if workers < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1: {value}")
    return workers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lazy Eye Inspection: regenerate the paper's "
                    "tables and figures from simulation.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--workers", type=positive_int, default=None,
                        help="fan campaign runs out over N processes "
                             "(default: serial; results are identical; "
                             "goes before the subcommand)")
    parser.add_argument("--cache-dir", default=os.environ.get(
                            "REPRO_CACHE_DIR"),
                        help="incremental campaign store directory: "
                             "re-renders skip every run whose coordinates "
                             "and configuration are unchanged, with "
                             "byte-identical output (default: "
                             "$REPRO_CACHE_DIR, else no caching)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run everything fresh even when a cache "
                             "directory is configured")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="HE parameter comparison"
                   ).set_defaults(fn=_cmd_table1)
    p2 = sub.add_parser("table2", help="client HE feature matrix")
    p2.add_argument("--repetitions", type=int, default=10)
    p2.add_argument("--no-web", action="store_true",
                    help="skip the web-validation campaign")
    p2.set_defaults(fn=_cmd_table2)
    p3 = sub.add_parser("table3", help="resolver IPv6 usage")
    p3.add_argument("--repetitions", type=int, default=160)
    p3.set_defaults(fn=_cmd_table3)
    sub.add_parser("table4", help="open resolver inventory"
                   ).set_defaults(fn=_cmd_table4)
    p5 = sub.add_parser("table5", help="web campaign UA matrix")
    p5.add_argument("--repetitions", type=int, default=5)
    p5.set_defaults(fn=_cmd_table5)

    pf2 = sub.add_parser("figure2", help="CAD sweep per client version")
    pf2.add_argument("--step", type=int, default=25,
                     help="delay step in ms (paper: 5)")
    pf2.add_argument("--stop", type=int, default=400)
    pf2.set_defaults(fn=_cmd_figure2)
    sub.add_parser("figure4", help="web tool ladders"
                   ).set_defaults(fn=_cmd_figure4)
    sub.add_parser("figure5", help="address selection attempts"
                   ).set_defaults(fn=_cmd_figure5)
    sub.add_parser("delayed-a", help="the §5.2 delayed-A pathology"
                   ).set_defaults(fn=_cmd_delayed_a)
    pt = sub.add_parser("trace", help="one HE run's event trace")
    pt.add_argument("--delay-ms", type=int, default=400)
    pt.set_defaults(fn=_cmd_trace)

    pfp = sub.add_parser(
        "fingerprint",
        help="probe one client with the conformance scenario battery "
             "and print its RFC 8305 fingerprint report")
    pfp.add_argument("client",
                     help="client selector: 'Name version', 'Name' "
                          "(latest), or 'all'")
    pfp.add_argument("--stop", type=int, default=400,
                     help="CAD sweep upper bound in ms (default 400)")
    pfp.add_argument("--json", action="store_true",
                     help="machine-readable report instead of the table")
    pfp.set_defaults(fn=_cmd_fingerprint)

    pcf = sub.add_parser(
        "conformance",
        help="fingerprint every local-testbed client and print the "
             "conformance summary")
    pcf.add_argument("--stop", type=int, default=400)
    pcf.add_argument("--json", action="store_true")
    pcf.add_argument("--list", action="store_true",
                     help="print the scenario catalog and exit")
    pcf.set_defaults(fn=_cmd_conformance)

    pcache = sub.add_parser("cache", help="campaign store maintenance")
    cache_sub = pcache.add_subparsers(dest="cache_command", required=True)
    pgc = cache_sub.add_parser(
        "gc",
        help="drop store entries unreferenced by the current campaign "
             "digests and print the reclaimed bytes")
    pgc.add_argument("--step", type=int, default=25,
                     help="figure2 step whose keys stay live (default 25)")
    pgc.add_argument("--stop", type=int, default=400)
    pgc.add_argument("--table3-repetitions", type=int, default=160,
                     help="table3 share repetitions whose keys stay "
                          "live (default 160, the table3 default; "
                          "smaller campaigns are a key subset)")
    pgc.set_defaults(fn=_cmd_cache_gc)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
