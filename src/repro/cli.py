"""Command-line interface: regenerate any table or figure.

Examples::

    python -m repro table1
    python -m repro table2 --seed 1
    python -m repro table3 --repetitions 64
    python -m repro figure2 --step 25
    python -m repro --workers 8 figure2 --step 5
    python -m repro --cache-dir ~/.cache/repro figure2 --step 5
    python -m repro figure5
    python -m repro delayed-a
    python -m repro trace --delay-ms 400
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _store_from(args: argparse.Namespace):
    """The campaign store selected by ``--cache-dir`` / ``--no-cache``
    (or the ``REPRO_CACHE_DIR`` environment default), or None."""
    if getattr(args, "no_cache", False) or not getattr(args, "cache_dir",
                                                      None):
        return None
    from .testbed.store import CampaignStore

    return CampaignStore(args.cache_dir)


def _report_cache(store) -> None:
    """One summary line per campaign so warm re-renders are visible
    (and scriptable: CI asserts on the hit counters)."""
    if store is not None:
        print(f"[cache] {store.stats.summary()} root={store.root}")


def _cmd_table1(args: argparse.Namespace) -> None:
    from .analysis import render_table, table1_parameters

    headers, rows = table1_parameters()
    print(render_table(headers, rows,
                       title="Table 1: HE parameters across versions"))


def _cmd_table2(args: argparse.Namespace) -> None:
    from .analysis import render_table2, table2_features
    from .webtool import UAEntry, WebCampaign

    store = _store_from(args)
    web = None
    if not args.no_web:
        campaign = WebCampaign(seed=args.seed + 1,
                               repetitions=args.repetitions)
        web = campaign.run(entries=(
            UAEntry("Linux", "", "Chrome", "130.0.0"),
            UAEntry("Linux", "", "Chromium", "130.0.0"),
            UAEntry("Windows", "10", "Edge", "130.0.0"),
            UAEntry("Linux", "", "Firefox", "132.0"),
            UAEntry("Mac OS X", "10.15.7", "Safari", "17.6"),
        ), workers=args.workers, store=store)
    rows = table2_features(seed=args.seed, web_campaign=web,
                           workers=args.workers, store=store)
    print(render_table2(rows))
    _report_cache(store)


def _cmd_table3(args: argparse.Namespace) -> None:
    from .analysis import render_table3, table3_resolvers

    rows = table3_resolvers(seed=args.seed,
                            share_repetitions=args.repetitions,
                            delay_repetitions=max(3, args.repetitions // 20),
                            workers=args.workers)
    print(render_table3(rows))


def _cmd_table4(args: argparse.Namespace) -> None:
    from .analysis import render_table4, table4_inventory

    print(render_table4(table4_inventory(seed=args.seed)))


def _cmd_table5(args: argparse.Namespace) -> None:
    from .analysis import render_table, table5_matrix
    from .webtool import TABLE5_MATRIX, WebCampaign

    store = _store_from(args)
    campaign = WebCampaign(seed=args.seed, repetitions=args.repetitions)
    result = campaign.run(entries=TABLE5_MATRIX, workers=args.workers,
                          store=store)
    headers, rows = table5_matrix(result)
    print(render_table(headers, rows,
                       title="Table 5: web-measured OS/browser matrix"))
    print(f"\n{len(result)} sessions, {result.combinations()} "
          "OS/browser combinations")
    _report_cache(store)


def _cmd_figure2(args: argparse.Namespace) -> None:
    from .analysis import figure2_sweep, render_figure2

    store = _store_from(args)
    series = figure2_sweep(step_ms=args.step, stop_ms=args.stop,
                           seed=args.seed, workers=args.workers,
                           store=store)
    print(render_figure2(series))
    _report_cache(store)


def _cmd_figure4(args: argparse.Namespace) -> None:
    from .clients import get_profile
    from .webtool import (WebToolDeployment, WebToolSession,
                          render_session_ladder)

    deployment = WebToolDeployment(seed=args.seed)
    for name, version in (("Chrome", "130.0"), ("Safari", "17.6")):
        session = WebToolSession(deployment, get_profile(name, version))
        print(render_session_ladder(session.run()))
        print()


def _cmd_figure5(args: argparse.Namespace) -> None:
    from .analysis import figure5_attempts, render_figure5
    from .clients import get_profile

    clients = [get_profile(n, v) for n, v in (
        ("wget", "1.21.3"), ("curl", "7.88.1"), ("Safari", "17.6"),
        ("Firefox", "132.0"), ("Edge", "130.0"), ("Chromium", "130.0"),
        ("Chrome", "130.0"))]
    store = _store_from(args)
    series = figure5_attempts(clients, seed=args.seed,
                              workers=args.workers, store=store)
    print(render_figure5(series))
    _report_cache(store)


def _cmd_delayed_a(args: argparse.Namespace) -> None:
    from .clients import Client, get_profile
    from .dns import RdataType
    from .testbed.topology import LocalTestbed

    print("A record delayed 2 s; IPv6 and AAAA fully healthy:\n")
    for name, version, flag in (("Chrome", "130.0", False),
                                ("Firefox", "132.0", False),
                                ("Safari", "17.6", False),
                                ("Chrome", "130.0", True)):
        testbed = LocalTestbed(seed=args.seed)
        testbed.set_dns_delay(RdataType.A, 2.0)
        client = Client(testbed.client, get_profile(name, version),
                        testbed.resolver_addresses[:1], hev3_flag=flag)
        result = testbed.sim.run_until(
            client.fetch("www.he-test.example"))
        label = f"{name} {version}" + (" +HEv3 flag" if flag else "")
        print(f"  {label:<26} connected after "
              f"{result.he.time_to_connect * 1000:7.1f} ms via "
              f"{result.used_family.label}")


def _cmd_trace(args: argparse.Namespace) -> None:
    from .core import rfc8305_params
    from .core.engine import HappyEyeballsEngine
    from .dns.stub import StubResolver
    from .testbed.topology import LocalTestbed

    testbed = LocalTestbed(seed=args.seed)
    testbed.delay_ipv6_tcp(args.delay_ms / 1000.0)
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    engine = HappyEyeballsEngine(testbed.client, stub, rfc8305_params())
    result = testbed.sim.run_until(engine.connect("www.he-test.example"))
    print(result.trace.render())
    print(f"\nwinner: {result.winning_family.label}, "
          f"time to connect {result.time_to_connect * 1000:.1f} ms")


def positive_int(value: str) -> int:
    workers = int(value)
    if workers < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1: {value}")
    return workers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lazy Eye Inspection: regenerate the paper's "
                    "tables and figures from simulation.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--workers", type=positive_int, default=None,
                        help="fan campaign runs out over N processes "
                             "(default: serial; results are identical; "
                             "goes before the subcommand)")
    parser.add_argument("--cache-dir", default=os.environ.get(
                            "REPRO_CACHE_DIR"),
                        help="incremental campaign store directory: "
                             "re-renders skip every run whose coordinates "
                             "and configuration are unchanged, with "
                             "byte-identical output (default: "
                             "$REPRO_CACHE_DIR, else no caching)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run everything fresh even when a cache "
                             "directory is configured")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="HE parameter comparison"
                   ).set_defaults(fn=_cmd_table1)
    p2 = sub.add_parser("table2", help="client HE feature matrix")
    p2.add_argument("--repetitions", type=int, default=10)
    p2.add_argument("--no-web", action="store_true",
                    help="skip the web-validation campaign")
    p2.set_defaults(fn=_cmd_table2)
    p3 = sub.add_parser("table3", help="resolver IPv6 usage")
    p3.add_argument("--repetitions", type=int, default=160)
    p3.set_defaults(fn=_cmd_table3)
    sub.add_parser("table4", help="open resolver inventory"
                   ).set_defaults(fn=_cmd_table4)
    p5 = sub.add_parser("table5", help="web campaign UA matrix")
    p5.add_argument("--repetitions", type=int, default=5)
    p5.set_defaults(fn=_cmd_table5)

    pf2 = sub.add_parser("figure2", help="CAD sweep per client version")
    pf2.add_argument("--step", type=int, default=25,
                     help="delay step in ms (paper: 5)")
    pf2.add_argument("--stop", type=int, default=400)
    pf2.set_defaults(fn=_cmd_figure2)
    sub.add_parser("figure4", help="web tool ladders"
                   ).set_defaults(fn=_cmd_figure4)
    sub.add_parser("figure5", help="address selection attempts"
                   ).set_defaults(fn=_cmd_figure5)
    sub.add_parser("delayed-a", help="the §5.2 delayed-A pathology"
                   ).set_defaults(fn=_cmd_delayed_a)
    pt = sub.add_parser("trace", help="one HE run's event trace")
    pt.add_argument("--delay-ms", type=int, default=400)
    pt.set_defaults(fn=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
