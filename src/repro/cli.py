"""Command-line interface: one generic dispatcher over the registry.

Every artifact is a registered :class:`~repro.experiments.Experiment`;
the CLI is a thin shell around the registry.  ``repro ls`` lists the
catalogue, ``repro run <name>`` runs any experiment generically, and
every historical command (``repro table2``, ``repro figure2``, …)
survives as an alias whose flags are generated from the same knob
declarations — so the aliases are byte-identical to ``repro run`` by
construction.

Examples::

    python -m repro ls
    python -m repro table1
    python -m repro run table2 --repetitions 5
    python -m repro table3 --repetitions 64
    python -m repro --workers 8 figure2 --step 5
    python -m repro --cache-dir ~/.cache/repro figure2 --step 5
    python -m repro fingerprint "Chrome 130.0" --json
    python -m repro fingerprint --diff "Chrome 88.0" "Chrome 130.0"
    python -m repro cache gc
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .experiments import (Session, all_experiments, get_experiment,
                          knob_mapping)

#: Experiments re-exported here for backwards compatibility with the
#: pre-registry CLI module layout.
from .experiments import FIGURE5_CLIENTS, TABLE2_WEB_ENTRIES  # noqa: F401


def _store_from(args: argparse.Namespace):
    """The campaign store selected by ``--cache-dir`` / ``--no-cache``
    (or the ``REPRO_CACHE_DIR`` environment default), or None.

    ``--store-layout`` picks the on-disk layout; the default ("auto")
    detects an existing packed store by its ``*.pack`` files and
    otherwise keeps the historical one-JSON-file-per-entry layout, so
    one-shot runs against a service's packed cache directory warm-hit
    it transparently.
    """
    if getattr(args, "no_cache", False) or not getattr(args, "cache_dir",
                                                      None):
        return None
    from .testbed.store import open_store

    return open_store(args.cache_dir,
                      layout=getattr(args, "store_layout", "auto"))


def _resilience_from(args: argparse.Namespace, store,
                     experiment_name: str):
    """The fault-tolerant runtime bundle for this invocation, or None.

    Any of ``--retries/--entry-timeout/--fault-plan/--resume`` makes
    resilience *explicit* (the ``[faults]`` summary prints).  A plain
    cached run still gets an implicit bundle whose only job is the
    crash-safe campaign journal — execution stays on the legacy fast
    path and the output stays byte-identical, but a killed invocation
    becomes resumable.
    """
    retries = getattr(args, "retries", None)
    entry_timeout = getattr(args, "entry_timeout", None)
    fault_plan_text = getattr(args, "fault_plan", None)
    resume = bool(getattr(args, "resume", False))
    explicit = (retries is not None or entry_timeout is not None
                or fault_plan_text is not None or resume)
    if resume and store is None:
        raise SystemExit("repro: --resume needs --cache-dir (or "
                         "$REPRO_CACHE_DIR): the campaign journal "
                         "lives in the store")
    if store is None and not explicit:
        return None
    from .testbed.resilience import (CampaignJournal, Resilience,
                                     RetryPolicy)

    plan = None
    if fault_plan_text:
        from .faults import FaultPlan, FaultPlanError

        try:
            plan = FaultPlan.parse(fault_plan_text, seed=args.seed)
        except FaultPlanError as exc:
            raise SystemExit(f"repro: bad --fault-plan: {exc}")
    try:
        policy = RetryPolicy(retries=retries if retries is not None else 0,
                             entry_timeout=entry_timeout,
                             backoff_seed=args.seed)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")
    journal = None
    if store is not None:
        journal = CampaignJournal(
            store.root / ".journal" / f"{experiment_name}.log")
        if plan is not None:
            store.fault_plan = plan
    return Resilience(policy=policy, fault_plan=plan, journal=journal,
                      resume=resume, explicit=explicit)


def _session_from(args: argparse.Namespace, experiment) -> Session:
    """One Session per invocation: global flags + the experiment's
    declared knobs resolved from the parsed namespace."""
    store = _store_from(args)
    return Session(seed=args.seed, workers=args.workers,
                   store=store,
                   knobs=knob_mapping(experiment, vars(args)),
                   resilience=_resilience_from(args, store,
                                               experiment.name))


def _run_experiment(experiment, args: argparse.Namespace) -> None:
    """The one generic dispatch path: execute, render, print the
    artifact, then print the session's cache summary exactly once
    (and the fault summary, when resilience was requested)."""
    session = _session_from(args, experiment)
    profiler = None
    if getattr(args, "profile", False):
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        artifact = experiment.run(session)
    finally:
        if profiler is not None:
            profiler.disable()
        if session.resilience is not None:
            session.resilience.close()
    if getattr(args, "json", False) and artifact.data is not None:
        print(artifact.json_text())
    else:
        print(artifact.text)
    cache_line = session.cache_line()
    if cache_line is not None:
        print(cache_line)
    for line in session.fault_detail_lines():
        print(line)
    fault_line = session.fault_line()
    if fault_line is not None:
        print(fault_line)
    if profiler is not None:
        import pstats
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(30)


def _cmd_experiment(args: argparse.Namespace) -> None:
    _run_experiment(get_experiment(args.experiment_name), args)


def _cmd_fingerprint(args: argparse.Namespace) -> None:
    """``repro fingerprint``: one client's report, or ``--diff`` drift
    between two clients (the fingerprint-diff experiment)."""
    if args.diff is not None:
        args.client_a, args.client_b = args.diff
        _run_experiment(get_experiment("fingerprint-diff"), args)
        return
    if args.client is None:
        raise SystemExit("repro fingerprint: a client selector is "
                         "required (or use --diff CLIENT_A CLIENT_B)")
    _run_experiment(get_experiment("fingerprint"), args)


def _cmd_ls(args: argparse.Namespace) -> None:
    """List the registry: every experiment with its paper reference
    and the number of distinct store keys its plan references.  With
    ``--clients``, list the client registry instead — one row per
    profile, with per-stage policy summaries and the nominal RFC 8305
    parameters, all read straight from the PolicyStack declarations."""
    from .analysis import render_table

    if getattr(args, "clients", False):
        from .clients.registry import all_profiles

        rows = []
        for profile in all_profiles():
            summaries = dict(profile.stack.stage_summaries())
            nominal_cad = profile.nominal_cad
            nominal_rd = profile.nominal_rd
            rows.append([
                profile.full_name,
                profile.engine_family,
                profile.os_hint,
                summaries["resolution"],
                summaries["sorting"],
                summaries["racing"],
                (f"{nominal_cad * 1000:.0f} ms"
                 if nominal_cad is not None else None),
                (f"{nominal_rd * 1000:.0f} ms"
                 if nominal_rd is not None else None),
            ])
        print(render_table(
            ["Client", "Engine", "OS", "Resolution", "Sorting", "Racing",
             "CAD", "RD"], rows,
            title="Client registry: policy stacks per profile"))
        print(f"\n{len(rows)} clients registered")
        return

    store = _store_from(args)
    rows = []
    for experiment in all_experiments():
        session = Session(seed=args.seed, workers=args.workers,
                          store=store,
                          knobs=experiment.default_knobs())
        planned = experiment.planned_keys(session)
        space = experiment.sample_space(session)
        rows.append([experiment.name, experiment.paper or None,
                     str(planned) if planned else None,
                     (f"{space[0]} @ {space[1]}"
                      if space is not None else None),
                     experiment.title])
    print(render_table(
        ["Experiment", "Paper", "Planned keys", "Sample space",
         "Description"], rows,
        title="Registered experiments"))
    print(f"\n{len(rows)} experiments registered")


def _cmd_cache_gc(args: argparse.Namespace) -> None:
    """Mark-and-sweep the campaign store against the union of every
    registered experiment's planned keys — an experiment in the
    registry can never be silently collected."""
    store = _store_from(args)
    if store is None:
        raise SystemExit("cache gc needs --cache-dir (or $REPRO_CACHE_DIR)")
    population = {"samples": args.population_samples,
                  "spec": args.population_spec}
    synthesis = {"synthesis_seeds": args.synthesis_seeds,
                 "synthesis_rounds": args.synthesis_rounds,
                 "synthesis_top": args.synthesis_top,
                 "synthesis_neighbors": args.synthesis_neighbors,
                 "clients": args.synthesis_clients}
    overrides = {
        "figure2": {"step": args.step, "stop": args.stop},
        "table3": {"repetitions": args.table3_repetitions},
        "population-latency": population,
        "population-family-share": population,
        "synthesize-scenarios": synthesis,
        "synthesize-report": synthesis,
    }
    live: "set[str]" = set()
    for experiment in all_experiments():
        knobs = experiment.default_knobs()
        knobs.update(overrides.get(experiment.name, {}))
        session = Session(seed=args.seed, store=store, knobs=knobs)
        live.update(experiment.plan(session))
    stats = store.gc(live, dry_run=args.dry_run)
    prefix = "[cache gc] (dry run) " if args.dry_run else "[cache gc] "
    print(f"{prefix}{stats.summary()} root={store.root}")


def _cmd_serve(args: argparse.Namespace) -> None:
    """``repro serve``: run the long-lived campaign service.

    Binds the HTTP admission endpoint over a
    :class:`~repro.service.CampaignService` whose tiered store lives in
    ``--cache-dir``.  The service defaults to the packed per-shard
    store layout on a fresh cache directory; an existing per-file
    store is detected and served as-is under ``--store-layout auto``.
    """
    if not getattr(args, "cache_dir", None):
        raise SystemExit("repro serve needs --cache-dir (or "
                         "$REPRO_CACHE_DIR): the tiered store is the "
                         "service's whole point")
    from .service import CampaignService
    from .service.http import CampaignServiceServer

    layout = args.store_layout
    if layout == "auto":
        # A service on a fresh directory should scale: default to
        # packed unless a per-file store already lives there.
        from pathlib import Path

        root = Path(args.cache_dir)
        has_file_shards = root.is_dir() and any(
            child.is_dir() and len(child.name) == 2
            for child in root.iterdir())
        layout = "file" if has_file_shards else "packed"
    service = CampaignService(
        args.cache_dir, seed=args.seed, workers=args.workers,
        retries=args.retries if args.retries is not None else 0,
        layout=layout, lru_capacity=args.lru_capacity,
        service_workers=args.service_workers,
        coalesce=not args.no_coalesce)
    server = CampaignServiceServer(service, args.host, args.port)
    host, port = server.address
    print(f"[serve] campaign service on http://{host}:{port} "
          f"root={args.cache_dir} layout={layout} "
          f"lru={args.lru_capacity}", file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _cmd_submit(args: argparse.Namespace) -> None:
    """``repro submit <experiment> [knobs]``: send one submission to a
    running service and reprint its artifact byte-identically (the
    ``[service]`` accounting line goes to stderr, like ``repro run``'s
    would-be ``[cache]`` line goes nowhere — stdout is the artifact)."""
    from .service.http import submit_request

    experiment = get_experiment(args.experiment_name)
    knobs = {}
    for knob in experiment.knobs:
        value = getattr(args, knob.name, None)
        if value is not None and value is not False:
            knobs[knob.name] = value
    try:
        payload = submit_request(args.experiment_name, knobs,
                                 host=args.host, port=args.port,
                                 timeout=args.timeout)
    except OSError as exc:
        raise SystemExit(f"repro submit: {exc}")
    if not payload.get("ok"):
        raise SystemExit(
            f"repro submit: {payload.get('error', 'unknown error')}")
    if getattr(args, "json", False) and payload.get("data") is not None:
        import json as _json

        print(_json.dumps(payload["data"], indent=2, sort_keys=True))
    else:
        print(payload["text"])
    print(f"[service] planned={payload['planned']} "
          f"hits={payload['hits']} executed={payload['executed']} "
          f"waited={payload['waited']} "
          f"coalesced={str(payload['coalesced']).lower()}",
          file=sys.stderr)


def positive_int(value: str) -> int:
    workers = int(value)
    if workers < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1: {value}")
    return workers


def _add_experiment_args(parser: argparse.ArgumentParser, experiment,
                         required_positionals: bool = False) -> None:
    """Materialize an experiment's knobs (plus ``--json`` when it has
    a machine-readable form) on ``parser``."""
    for knob in experiment.knobs:
        knob.add_to_parser(parser, required=required_positionals)
    if experiment.json_capable:
        parser.add_argument("--json", action="store_true",
                            help="machine-readable report instead of "
                                 "the table")
    parser.set_defaults(fn=_cmd_experiment,
                        experiment_name=experiment.name)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lazy Eye Inspection: regenerate the paper's "
                    "tables and figures from simulation.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--workers", type=positive_int, default=None,
                        help="fan campaign runs out over N processes "
                             "(default: serial; results are identical; "
                             "goes before the subcommand)")
    parser.add_argument("--cache-dir", default=os.environ.get(
                            "REPRO_CACHE_DIR"),
                        help="incremental campaign store directory: "
                             "re-renders skip every run whose coordinates "
                             "and configuration are unchanged, with "
                             "byte-identical output (default: "
                             "$REPRO_CACHE_DIR, else no caching)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run everything fresh even when a cache "
                             "directory is configured")
    parser.add_argument("--store-layout", default="auto",
                        choices=("auto", "file", "packed"),
                        help="campaign store on-disk layout: 'file' is "
                             "one JSON file per entry, 'packed' is one "
                             "append-only pack per shard (what 'repro "
                             "serve' uses); 'auto' (default) detects an "
                             "existing packed store and otherwise uses "
                             "'file'")
    parser.add_argument("--retries", type=int, default=None,
                        metavar="N",
                        help="re-execute each failed campaign entry up "
                             "to N times with seeded exponential "
                             "backoff before recording it as a failure "
                             "(default: fail fast)")
    parser.add_argument("--entry-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-entry watchdog: a campaign run that "
                             "exceeds this is killed (the worker pool "
                             "is respawned) and charged a failed "
                             "attempt; needs --workers >= 2 to preempt")
    parser.add_argument("--resume", action="store_true",
                        help="skip campaign entries already recorded in "
                             "the store's crash-safe journal (requires "
                             "--cache-dir; journaled keys lost from the "
                             "store re-execute)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the experiment under cProfile and "
                             "print the hottest call sites (cumulative "
                             "time) to stderr after the artifact")
    parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="chaos testing: inject deterministic "
                             "faults, e.g. 'crash:0.3,corrupt:0.5' "
                             "(kind[:rate[:attempts[:hang_s]]], comma-"
                             "separated; kinds: crash, hang, corrupt, "
                             "partial, io-error)")
    sub = parser.add_subparsers(dest="command", required=True)

    # -- generic registry verbs ------------------------------------------------

    p_ls = sub.add_parser(
        "ls",
        help="list every registered experiment with its paper "
             "reference and planned key count")
    p_ls.add_argument("--clients", action="store_true",
                      help="list the client registry instead: per-stage "
                           "policy summaries and nominal RFC 8305 "
                           "parameters from the PolicyStack declarations")
    p_ls.set_defaults(fn=_cmd_ls)

    p_run = sub.add_parser(
        "run", help="run any registered experiment by name")
    run_sub = p_run.add_subparsers(dest="experiment_name",
                                   required=True, metavar="experiment")
    for experiment in all_experiments():
        p_exp = run_sub.add_parser(experiment.name,
                                   help=experiment.title)
        for knob in experiment.knobs:
            knob.add_to_parser(p_exp)
        p_exp.add_argument("--json", action="store_true",
                           help="machine-readable artifact when the "
                                "experiment provides one")
        p_exp.set_defaults(fn=_cmd_experiment,
                           experiment_name=experiment.name)

    # -- legacy command aliases (same names, same flags, same bytes) -----------

    for name, help_text in (
            ("table1", "HE parameter comparison"),
            ("table2", "client HE feature matrix"),
            ("table3", "resolver IPv6 usage"),
            ("table4", "open resolver inventory"),
            ("table5", "web campaign UA matrix"),
            ("figure2", "CAD sweep per client version"),
            ("figure4", "web tool ladders"),
            ("figure5", "address selection attempts"),
            ("delayed-a", "the §5.2 delayed-A pathology"),
            ("trace", "one HE run's event trace"),
            ("conformance",
             "fingerprint every local-testbed client and print the "
             "conformance summary")):
        _add_experiment_args(sub.add_parser(name, help=help_text),
                             get_experiment(name))

    pfp = sub.add_parser(
        "fingerprint",
        help="probe one client with the conformance scenario battery "
             "and print its RFC 8305 fingerprint report")
    # The positional stays required here (``repro run fingerprint``
    # defaults to 'all'): omit it only together with ``--diff``.
    pfp.add_argument("client", nargs="?", default=None,
                     help="client selector: 'Name version', 'Name' "
                          "(latest), or 'all'")
    for knob in get_experiment("fingerprint").knobs:
        if knob.name != "client":
            knob.add_to_parser(pfp)
    pfp.add_argument("--json", action="store_true",
                     help="machine-readable report instead of the table")
    pfp.add_argument("--diff", nargs=2,
                     metavar=("CLIENT_A", "CLIENT_B"), default=None,
                     help="diff two clients' fingerprints into a "
                          "drift report (the fingerprint-diff "
                          "experiment)")
    pfp.set_defaults(fn=_cmd_fingerprint)

    # -- the campaign service ---------------------------------------------------

    from .service.http import DEFAULT_HOST, DEFAULT_PORT

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived campaign service: HTTP admission over "
             "a tiered (LRU + packed-shard) store with single-flight "
             "dedup of in-flight keys")
    p_serve.add_argument("--host", default=DEFAULT_HOST,
                         help=f"bind address (default {DEFAULT_HOST})")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"bind port (default {DEFAULT_PORT}; 0 "
                              "picks a free one)")
    p_serve.add_argument("--lru-capacity", type=int, default=8192,
                         help="entries held by the in-memory tier "
                              "(default 8192)")
    p_serve.add_argument("--service-workers", type=positive_int,
                         default=8,
                         help="concurrent submissions in flight "
                              "(default 8; campaign-level parallelism "
                              "is the global --workers)")
    p_serve.add_argument("--no-coalesce", action="store_true",
                         help="do not share one execution between "
                              "identical in-flight submissions "
                              "(single-flight key dedup still applies)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit one experiment to a running campaign service and "
             "print the served artifact (byte-identical to 'repro run')")
    submit_sub = p_submit.add_subparsers(dest="experiment_name",
                                         required=True,
                                         metavar="experiment")
    for experiment in all_experiments():
        p_exp = submit_sub.add_parser(experiment.name,
                                      help=experiment.title)
        for knob in experiment.knobs:
            knob.add_to_parser(p_exp)
        p_exp.add_argument("--json", action="store_true",
                           help="machine-readable artifact when the "
                                "experiment provides one")
        p_exp.add_argument("--host", default=DEFAULT_HOST,
                           help=f"service address (default "
                                f"{DEFAULT_HOST})")
        p_exp.add_argument("--port", type=int, default=DEFAULT_PORT,
                           help=f"service port (default {DEFAULT_PORT})")
        p_exp.add_argument("--timeout", type=float, default=600.0,
                           help="submission timeout in seconds "
                                "(default 600)")
        p_exp.set_defaults(fn=_cmd_submit,
                           experiment_name=experiment.name)

    pcache = sub.add_parser("cache", help="campaign store maintenance")
    cache_sub = pcache.add_subparsers(dest="cache_command", required=True)
    pgc = cache_sub.add_parser(
        "gc",
        help="drop store entries unreferenced by any registered "
             "experiment's plan and print the reclaimed bytes")
    pgc.add_argument("--step", type=int, default=25,
                     help="figure2 step whose keys stay live (default 25)")
    pgc.add_argument("--stop", type=int, default=400)
    pgc.add_argument("--table3-repetitions", type=int, default=160,
                     help="table3 share repetitions whose keys stay "
                          "live (default 160, the table3 default; "
                          "smaller campaigns are a key subset)")
    pgc.add_argument("--population-samples", type=int, default=250,
                     help="population sample count whose keys stay "
                          "live (default 250, the population default; "
                          "smaller populations are a key subset)")
    pgc.add_argument("--population-spec", default="default",
                     help="population spec whose sample keys stay live "
                          "(preset name, @file, or inline JSON; "
                          "default: the 'default' preset)")
    pgc.add_argument("--synthesis-seeds", type=int, default=32,
                     help="synthesis grid budget whose keys stay live "
                          "(default 32, the synthesis default; smaller "
                          "budgets are a key subset)")
    pgc.add_argument("--synthesis-rounds", type=int, default=2,
                     help="synthesis refinement rounds planned live "
                          "(refinement keys resolve only from a warm "
                          "store, like the probe's fine pass)")
    pgc.add_argument("--synthesis-top", type=int, default=6,
                     help="synthesis refinement breadth whose keys "
                          "stay live (default 6)")
    pgc.add_argument("--synthesis-neighbors", type=int, default=8,
                     help="synthesis neighbours-per-parent whose keys "
                          "stay live (default 8)")
    pgc.add_argument("--synthesis-clients", default="all",
                     help="client selectors whose synthesis keys stay "
                          "live (default 'all')")
    pgc.add_argument("--dry-run", action="store_true",
                     help="report what gc would keep/remove and the "
                          "reclaimable bytes without deleting anything")
    pgc.set_defaults(fn=_cmd_cache_gc)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
