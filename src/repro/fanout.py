"""Shared process-pool fan-out for embarrassingly parallel campaigns.

All campaign entry points (Table 2 client evaluation, Table 3 resolver
subjects, web campaign entries, the figure 2 testbed executor) share
the same shape: a list of picklable payloads, a top-level worker
function, and the guarantee that results are a pure function of each
payload — so parallel execution returns exactly the serial result, in
payload order.

They also share one **process-global worker pool**.  Spinning up a
``ProcessPoolExecutor`` costs fork/spawn plus module imports per
worker; short campaigns used to pay that per entry point (the web
campaign, then Table 2 features, then a figure sweep — three pools in
one CLI invocation).  :func:`shared_pool` keeps a single executor
alive for the process and hands it to every campaign, so pool start-up
amortizes across entry points and repeated campaigns.

Dispatch is per-future (:func:`shared_map` submits one task per
payload instead of ``pool.map``), which is what lets the resilient
campaign runtime (:mod:`repro.testbed.resilience`) retry individual
payloads, watchdog hung entries, and — via :func:`abandon_shared_pool`
— walk away from a wedged pool without waiting on its corpse.
"""

from __future__ import annotations

import atexit

from typing import (Callable, Iterator, List, Optional, Sequence,
                    TypeVar)

Payload = TypeVar("Payload")
Result = TypeVar("Result")

_shared_pool = None
_shared_pool_workers = 0
#: The atexit teardown is registered at most once per process:
#: ``atexit.register`` does not deduplicate, so a shutdown + recreate
#: cycle (tests, pool-respawn recovery) must not stack a second hook.
_atexit_registered = False


def shared_pool(workers: int):
    """The process-global ``ProcessPoolExecutor``, sized for at least
    ``workers``.

    A campaign asking for more workers than the current pool replaces
    it with a bigger one; a campaign asking for fewer reuses the
    existing pool and simply leaves the extra workers idle — idle
    workers cost nothing, while pool start-up does not.
    """
    global _shared_pool, _shared_pool_workers, _atexit_registered
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if _shared_pool is None or _shared_pool_workers < workers:
        from concurrent.futures import ProcessPoolExecutor

        if _shared_pool is not None:
            _shared_pool.shutdown(wait=True)
        if not _atexit_registered:
            # Tear the pool down cleanly at exit instead of by garbage
            # collection during interpreter shutdown — once, however
            # many shutdown/recreate cycles the process goes through.
            atexit.register(shutdown_shared_pool)
            _atexit_registered = True
        _shared_pool = ProcessPoolExecutor(max_workers=workers)
        _shared_pool_workers = workers
    return _shared_pool


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (tests; or to reclaim the workers)."""
    global _shared_pool, _shared_pool_workers
    if _shared_pool is not None:
        _shared_pool.shutdown(wait=True)
        _shared_pool = None
        _shared_pool_workers = 0


def abandon_shared_pool() -> None:
    """Discard the shared pool *without waiting for its workers*.

    The recovery path for a wedged pool: a hung worker would make
    :func:`shutdown_shared_pool`'s ``wait=True`` block forever, so the
    resilient runtime cancels the queue, terminates the worker
    processes best-effort, and leaves the executor for the collector.
    The next :func:`shared_pool` call starts fresh.
    """
    global _shared_pool, _shared_pool_workers
    pool = _shared_pool
    _shared_pool = None
    _shared_pool_workers = 0
    if pool is None:
        return
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:  # racing its own exit is fine
            pass


def shared_map(fn: "Callable[[Payload], Result]",
               payloads: "Sequence[Payload]",
               workers: int) -> "Iterator[Result]":
    """Map over the shared pool, yielding results in payload order.

    One future per payload (not ``pool.map``), so failures stay
    attributable to individual payloads.  A crashed worker breaks a
    ``ProcessPoolExecutor`` permanently; the broken pool is discarded
    here so the *next* campaign starts fresh instead of inheriting the
    wreck — retrying within the campaign is the resilient runtime's
    job (:mod:`repro.testbed.resilience`), not this primitive's.
    """
    from concurrent.futures.process import BrokenProcessPool

    pool = shared_pool(workers)
    try:
        futures = [pool.submit(fn, payload) for payload in payloads]
        for future in futures:
            yield future.result()
    except BrokenProcessPool:
        shutdown_shared_pool()
        raise


def map_maybe_parallel(fn: "Callable[[Payload], Result]",
                       payloads: "Sequence[Payload]",
                       workers: Optional[int]) -> "List[Result]":
    """``[fn(p) for p in payloads]``, optionally over worker processes.

    ``workers=None`` or ``1`` runs serially; ``workers=N`` maps over
    the shared process pool (``fn`` must be a top-level function and
    payloads picklable).  Results always come back in payload order,
    so both paths are interchangeable.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if workers is not None and workers > 1 and len(payloads) > 1:
        return list(shared_map(fn, payloads, workers))
    return [fn(payload) for payload in payloads]
