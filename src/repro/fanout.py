"""Shared process-pool fan-out for embarrassingly parallel campaigns.

All campaign entry points (Table 2 client evaluation, Table 3 resolver
subjects, web campaign entries, the figure 2 testbed executor) share
the same shape: a list of picklable payloads, a top-level worker
function, and the guarantee that results are a pure function of each
payload — so parallel execution returns exactly the serial result, in
payload order.

They also share one **process-global worker pool**.  Spinning up a
``ProcessPoolExecutor`` costs fork/spawn plus module imports per
worker; short campaigns used to pay that per entry point (the web
campaign, then Table 2 features, then a figure sweep — three pools in
one CLI invocation).  :func:`shared_pool` keeps a single executor
alive for the process and hands it to every campaign, so pool start-up
amortizes across entry points and repeated campaigns.
"""

from __future__ import annotations

import atexit

from typing import (Callable, Iterator, List, Optional, Sequence,
                    TypeVar)

Payload = TypeVar("Payload")
Result = TypeVar("Result")

_shared_pool = None
_shared_pool_workers = 0


def shared_pool(workers: int):
    """The process-global ``ProcessPoolExecutor``, sized for at least
    ``workers``.

    A campaign asking for more workers than the current pool replaces
    it with a bigger one; a campaign asking for fewer reuses the
    existing pool and simply leaves the extra workers idle — idle
    workers cost nothing, while pool start-up does not.
    """
    global _shared_pool, _shared_pool_workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if _shared_pool is None or _shared_pool_workers < workers:
        from concurrent.futures import ProcessPoolExecutor

        if _shared_pool is not None:
            _shared_pool.shutdown(wait=True)
        else:
            # First pool of the process: make sure it is torn down
            # cleanly at exit instead of by garbage collection during
            # interpreter shutdown.
            atexit.register(shutdown_shared_pool)
        _shared_pool = ProcessPoolExecutor(max_workers=workers)
        _shared_pool_workers = workers
    return _shared_pool


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (tests; or to reclaim the workers)."""
    global _shared_pool, _shared_pool_workers
    if _shared_pool is not None:
        _shared_pool.shutdown(wait=True)
        _shared_pool = None
        _shared_pool_workers = 0


def shared_map(fn: "Callable[[Payload], Result]",
               payloads: "Sequence[Payload]",
               workers: int) -> "Iterator[Result]":
    """``pool.map`` over the shared pool, in payload order.

    A crashed worker breaks a ``ProcessPoolExecutor`` permanently; the
    broken pool is discarded here so the *next* campaign starts fresh
    instead of inheriting the wreck.
    """
    from concurrent.futures.process import BrokenProcessPool

    pool = shared_pool(workers)
    try:
        yield from pool.map(fn, payloads)
    except BrokenProcessPool:
        shutdown_shared_pool()
        raise


def map_maybe_parallel(fn: "Callable[[Payload], Result]",
                       payloads: "Sequence[Payload]",
                       workers: Optional[int]) -> "List[Result]":
    """``[fn(p) for p in payloads]``, optionally over worker processes.

    ``workers=None`` or ``1`` runs serially; ``workers=N`` maps over
    the shared process pool (``fn`` must be a top-level function and
    payloads picklable).  Results always come back in payload order,
    so both paths are interchangeable.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if workers is not None and workers > 1 and len(payloads) > 1:
        return list(shared_map(fn, payloads, workers))
    return [fn(payload) for payload in payloads]
