"""Shared process-pool fan-out for embarrassingly parallel campaigns.

Three campaign entry points (Table 2 client evaluation, Table 3
resolver subjects, web campaign entries) share the same shape: a list
of picklable payloads, a top-level worker function, and the guarantee
that results are a pure function of each payload — so parallel
execution returns exactly the serial result, in payload order.  This
helper keeps the validation and pool plumbing in one place.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

Payload = TypeVar("Payload")
Result = TypeVar("Result")


def map_maybe_parallel(fn: "Callable[[Payload], Result]",
                       payloads: "Sequence[Payload]",
                       workers: Optional[int]) -> "List[Result]":
    """``[fn(p) for p in payloads]``, optionally over worker processes.

    ``workers=None`` or ``1`` runs serially; ``workers=N`` maps over a
    ``ProcessPoolExecutor`` (``fn`` must be a top-level function and
    payloads picklable).  Results always come back in payload order,
    so both paths are interchangeable.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if workers is not None and workers > 1 and len(payloads) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, payloads))
    return [fn(payload) for payload in payloads]
