"""Tests for the TCP handshake machine."""

import pytest

from repro.simnet import Family, NetemSpec, Network
from repro.transport import (ConnectRefused, ConnectTimeout,
                             ConnectionAborted, PortInUse, TCPState)


@pytest.fixture
def lab():
    net = Network(seed=0)
    segment = net.add_segment("lab", propagation_delay=0.0001)
    client = net.add_host("client")
    server = net.add_host("server")
    net.connect(client, segment, ["192.0.2.1", "2001:db8::1"])
    net.connect(server, segment, ["192.0.2.2", "2001:db8::2"])
    return net, client, server


class TestHandshake:
    def test_successful_connect(self, lab):
        net, client, server = lab
        server.tcp.listen(80)
        attempt = client.tcp.connect("192.0.2.2", 80)
        conn = net.sim.run_until(attempt.established)
        assert conn.state is TCPState.ESTABLISHED
        assert conn.syn_transmissions == 1

    def test_connect_over_ipv6(self, lab):
        net, client, server = lab
        server.tcp.listen(80)
        attempt = client.tcp.connect("2001:db8::2", 80)
        conn = net.sim.run_until(attempt.established)
        assert conn.family is Family.V6

    def test_server_sees_accepted_connection(self, lab):
        net, client, server = lab
        listener = server.tcp.listen(80)
        accepted = listener.accept()
        client.tcp.connect("192.0.2.2", 80)
        server_conn = net.sim.run_until(accepted)
        assert server_conn.state is TCPState.ESTABLISHED
        assert str(server_conn.remote_addr) == "192.0.2.1"

    def test_handshake_takes_one_rtt(self, lab):
        net, client, server = lab
        server.tcp.listen(80)
        attempt = client.tcp.connect("192.0.2.2", 80)
        net.sim.run_until(attempt.established)
        # RTT = 2 * propagation delay.
        assert net.sim.now == pytest.approx(0.0002)

    def test_refused_when_no_listener(self, lab):
        net, client, server = lab
        attempt = client.tcp.connect("192.0.2.2", 81)
        with pytest.raises(ConnectRefused):
            net.sim.run_until(attempt.established)

    def test_blackhole_times_out_with_backoff(self, lab):
        net, client, _ = lab
        attempt = client.tcp.connect("192.0.2.99", 80,
                                     initial_rto=1.0, syn_retries=2)
        with pytest.raises(ConnectTimeout):
            net.sim.run_until(attempt.established)
        # SYN at 0, retransmit at 1s, at 3s, give up at 7s.
        assert attempt.syn_transmissions == 3
        assert net.sim.now == pytest.approx(7.0)

    def test_attempt_deadline_caps_wait(self, lab):
        net, client, _ = lab
        attempt = client.tcp.connect("192.0.2.99", 80, timeout=0.5)
        with pytest.raises(ConnectTimeout):
            net.sim.run_until(attempt.established)
        assert net.sim.now == pytest.approx(0.5)

    def test_delayed_syn_ack_still_establishes(self, lab):
        net, client, server = lab
        server.tcp.listen(80)
        server.interfaces["eth0"].ingress.delay_family(Family.V4, 0.300)
        attempt = client.tcp.connect("192.0.2.2", 80)
        conn = net.sim.run_until(attempt.established)
        assert conn.state is TCPState.ESTABLISHED
        assert net.sim.now == pytest.approx(0.3002)

    def test_duplicate_listener_rejected(self, lab):
        _, _, server = lab
        server.tcp.listen(80)
        with pytest.raises(PortInUse):
            server.tcp.listen(80)

    def test_listener_bound_to_address_only_serves_it(self, lab):
        net, client, server = lab
        server.tcp.listen(80, addr="192.0.2.2")
        ok = client.tcp.connect("192.0.2.2", 80)
        net.sim.run_until(ok.established)
        refused = client.tcp.connect("2001:db8::2", 80)
        with pytest.raises(ConnectRefused):
            net.sim.run_until(refused.established)


class TestAbort:
    def test_abort_in_syn_sent_fails_established_quietly(self, lab):
        net, client, _ = lab
        attempt = client.tcp.connect("192.0.2.99", 80)
        net.sim.run(until=0.1)
        attempt.abort()
        net.sim.run(until=20.0)
        assert attempt.state is TCPState.ABORTED
        assert isinstance(attempt.established.exception, ConnectionAborted)

    def test_abort_stops_retransmissions(self, lab):
        net, client, _ = lab
        capture = client.start_capture()
        attempt = client.tcp.connect("192.0.2.99", 80, initial_rto=0.1)
        net.sim.run(until=0.05)
        attempt.abort()
        net.sim.run(until=10.0)
        syns = capture.connection_attempts()
        assert len(syns) == 1

    def test_abort_established_sends_rst(self, lab):
        net, client, server = lab
        server.tcp.listen(80)
        attempt = client.tcp.connect("192.0.2.2", 80)
        conn = net.sim.run_until(attempt.established)
        capture = client.start_capture()
        conn.abort()
        net.sim.run()
        rsts = capture.filter(lambda f: f.packet.is_rst)
        assert len(rsts) == 1


class TestDataTransfer:
    def test_echo_roundtrip(self, lab):
        net, client, server = lab
        listener = server.tcp.listen(80)

        def server_proc():
            conn = yield listener.accept()
            data = yield conn.recv()
            conn.send(b"echo:" + data)

        def client_proc():
            conn = yield client.tcp.connect("192.0.2.2", 80).established
            conn.send(b"hello")
            reply = yield conn.recv()
            return reply

        net.sim.process(server_proc())
        proc = net.sim.process(client_proc())
        assert net.sim.run_until(proc) == b"echo:hello"

    def test_fin_delivers_eof(self, lab):
        net, client, server = lab
        listener = server.tcp.listen(80)

        def server_proc():
            conn = yield listener.accept()
            conn.close()

        def client_proc():
            conn = yield client.tcp.connect("192.0.2.2", 80).established
            data = yield conn.recv()
            return data

        net.sim.process(server_proc())
        proc = net.sim.process(client_proc())
        assert net.sim.run_until(proc) == b""

    def test_syn_timestamp_recorded(self, lab):
        net, client, server = lab
        server.tcp.listen(80)
        net.sim.run(until=1.0)
        attempt = client.tcp.connect("192.0.2.2", 80)
        net.sim.run_until(attempt.established)
        assert attempt.syn_sent_at == pytest.approx(1.0)
        assert attempt.established_at == pytest.approx(1.0002)
