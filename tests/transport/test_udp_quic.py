"""Tests for UDP sockets and the QUIC handshake model."""

import pytest

from repro.simnet import Network
from repro.transport import (ConnectTimeout, ConnectionAborted, PortInUse,
                             QUICConnectionState, SocketClosed)


@pytest.fixture
def lab():
    net = Network(seed=0)
    segment = net.add_segment("lab", propagation_delay=0.0001)
    client = net.add_host("client")
    server = net.add_host("server")
    net.connect(client, segment, ["192.0.2.1", "2001:db8::1"])
    net.connect(server, segment, ["192.0.2.2", "2001:db8::2"])
    return net, client, server


class TestUDP:
    def test_datagram_roundtrip(self, lab):
        net, client, server = lab
        server_sock = server.udp.socket(local_port=53)

        def responder():
            datagram = yield server_sock.recv()
            server_sock.sendto(b"pong:" + datagram.payload,
                               datagram.src, datagram.sport)

        def requester():
            sock = client.udp.socket()
            sock.sendto(b"ping", "192.0.2.2", 53)
            reply = yield sock.recv()
            return reply.payload

        net.sim.process(responder())
        proc = net.sim.process(requester())
        assert net.sim.run_until(proc) == b"pong:ping"

    def test_wildcard_socket_receives_both_families(self, lab):
        net, client, server = lab
        server_sock = server.udp.socket(local_port=53)
        got = []

        def collector():
            for _ in range(2):
                datagram = yield server_sock.recv()
                got.append(str(datagram.dst))

        net.sim.process(collector())
        sock = client.udp.socket()
        sock.sendto(b"a", "192.0.2.2", 53)
        sock.sendto(b"b", "2001:db8::2", 53)
        net.sim.run()
        assert sorted(got) == ["192.0.2.2", "2001:db8::2"]

    def test_bound_socket_receives_only_its_address(self, lab):
        net, client, server = lab
        v4_sock = server.udp.socket(local_addr="192.0.2.2", local_port=53)
        client_sock = client.udp.socket()
        client_sock.sendto(b"v6", "2001:db8::2", 53)
        client_sock.sendto(b"v4", "192.0.2.2", 53)
        net.sim.run()
        assert v4_sock.received_count == 1

    def test_backlog_buffers_when_no_waiter(self, lab):
        net, client, server = lab
        server_sock = server.udp.socket(local_port=53)
        sock = client.udp.socket()
        sock.sendto(b"1", "192.0.2.2", 53)
        sock.sendto(b"2", "192.0.2.2", 53)
        net.sim.run()

        def drain():
            first = yield server_sock.recv()
            second = yield server_sock.recv()
            return (first.payload, second.payload)

        proc = net.sim.process(drain())
        assert net.sim.run_until(proc) == (b"1", b"2")

    def test_send_on_closed_socket_raises(self, lab):
        _, client, _ = lab
        sock = client.udp.socket()
        sock.close()
        with pytest.raises(SocketClosed):
            sock.sendto(b"x", "192.0.2.2", 53)

    def test_close_fails_pending_recv(self, lab):
        net, client, _ = lab
        sock = client.udp.socket()

        def waiter():
            try:
                yield sock.recv()
            except SocketClosed:
                return "closed"

        proc = net.sim.process(waiter())
        net.sim.schedule(1.0, sock.close)
        assert net.sim.run_until(proc) == "closed"

    def test_duplicate_bind_rejected(self, lab):
        _, _, server = lab
        server.udp.socket(local_port=53)
        with pytest.raises(PortInUse):
            server.udp.socket(local_port=53)


class TestQUIC:
    def test_handshake_establishes(self, lab):
        net, client, server = lab
        server.quic.listen(443)
        attempt = client.quic.connect("192.0.2.2", 443)
        conn = net.sim.run_until(attempt.established)
        assert conn.state is QUICConnectionState.ESTABLISHED
        assert conn.initial_transmissions == 1

    def test_blackhole_retransmits_then_times_out(self, lab):
        net, client, _ = lab
        attempt = client.quic.connect("192.0.2.99", 443,
                                      initial_pto=0.5, max_probes=1)
        with pytest.raises(ConnectTimeout):
            net.sim.run_until(attempt.established)
        assert attempt.initial_transmissions == 2

    def test_deadline_caps_attempt(self, lab):
        net, client, _ = lab
        attempt = client.quic.connect("192.0.2.99", 443, timeout=0.25)
        with pytest.raises(ConnectTimeout):
            net.sim.run_until(attempt.established)
        assert net.sim.now == pytest.approx(0.25)

    def test_abort_is_quiet(self, lab):
        net, client, _ = lab
        attempt = client.quic.connect("192.0.2.99", 443)
        net.sim.run(until=0.1)
        attempt.abort()
        net.sim.run(until=30.0)
        assert attempt.state is QUICConnectionState.ABORTED
        assert isinstance(attempt.established.exception, ConnectionAborted)

    def test_quic_initial_counts_as_connection_attempt(self, lab):
        net, client, server = lab
        server.quic.listen(443)
        capture = client.start_capture()
        attempt = client.quic.connect("192.0.2.2", 443)
        net.sim.run_until(attempt.established)
        attempts = capture.connection_attempts()
        assert len(attempts) == 1
