"""Tests for the analysis layer: rendering and table/figure builders."""

import pytest

from repro.analysis import (evaluate_client_features, figure2_sweep,
                            figure5_attempts, format_ms, format_percent,
                            render_family_strip, render_figure2,
                            render_figure5, render_mark, render_table,
                            table1_parameters, table4_inventory)
from repro.clients import get_profile
from repro.simnet import Family


class TestRenderHelpers:
    def test_render_table_aligns_columns(self):
        text = render_table(["name", "value"],
                            [["a", 1], ["longer-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # All rows padded to the same width.
        assert len(lines[2]) >= len("longer-name") + 2

    def test_render_table_none_becomes_dash(self):
        text = render_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_render_table_with_title(self):
        text = render_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_family_strip(self):
        assert render_family_strip([True, False, None]) == "#. "

    def test_marks(self):
        assert render_mark(True) == "●"
        assert render_mark(False) == "○"
        assert render_mark(None) == "-"
        assert render_mark(True, deviation=True) == "◐"

    def test_format_helpers(self):
        assert format_ms(0.25) == "250 ms"
        assert format_ms(None) is None
        assert format_percent(43.75) == "43.8 %"
        assert format_percent(None) is None


class TestTable1:
    def test_shape(self):
        headers, rows = table1_parameters()
        assert len(headers) == 4
        assert len(rows) == 6
        labels = [row[0] for row in rows]
        assert "Resolution Delay" in labels
        assert "Fixed Conn. Attempt Delay" in labels


class TestClientEvaluation:
    def test_chrome_feature_row(self):
        row = evaluate_client_features(get_profile("Chrome", "130.0"),
                                       seed=61)
        assert row.prefers_ipv6
        assert row.cad_implemented
        assert row.cad_value_ms == pytest.approx(300.0, abs=5.0)
        assert not row.rd_implemented

    def test_safari_feature_row(self):
        row = evaluate_client_features(get_profile("Safari", "17.6"),
                                       seed=62)
        assert row.rd_implemented
        assert row.rd_value_ms == pytest.approx(50.0, abs=5.0)
        assert row.address_selection

    def test_mobile_profile_gets_empty_local_row(self):
        row = evaluate_client_features(
            get_profile("Mobile Safari", "17.6"), seed=63)
        assert row.prefers_ipv6 is None
        assert row.ipv6_addresses_used is None

    def test_table2_store_warm_rerun(self, tmp_path):
        from repro.analysis import table2_features
        from repro.testbed import CampaignStore

        clients = [get_profile("curl", "7.88.1")]
        cold_store = CampaignStore(tmp_path)
        cold = table2_features(seed=66, clients=clients, store=cold_store)
        assert cold_store.stats.stores > 0

        warm_store = CampaignStore(tmp_path)
        warm = table2_features(seed=66, clients=clients, store=warm_store)
        assert warm == cold
        assert warm_store.stats.hits == cold_store.stats.stores
        assert warm_store.stats.misses == 0

        # Parallel path merges worker-side counters into the campaign
        # total, so warm parallel re-runs report truthfully too.
        parallel_store = CampaignStore(tmp_path)
        parallel = table2_features(seed=66, clients=clients, workers=2,
                                   store=parallel_store)
        assert parallel == cold
        assert parallel_store.stats.hits == cold_store.stats.stores


class TestFigureBuilders:
    def test_figure2_series_crossovers(self):
        series = figure2_sweep(
            clients=[get_profile("curl", "7.88.1"),
                     get_profile("Chrome", "130.0")],
            step_ms=50, stop_ms=400, seed=64)
        by_client = {s.client: s for s in series}
        assert by_client["curl 7.88.1"].crossover_ms == 200
        assert by_client["Chrome 130.0"].crossover_ms == 300
        text = render_figure2(series)
        assert "#" in text and "." in text

    def test_figure5_patterns(self):
        series = figure5_attempts(
            [get_profile("Chrome", "130.0"),
             get_profile("Safari", "17.6")], seed=65)
        by_client = {s.client: s for s in series}
        assert by_client["Chrome 130.0"].pattern == "64"
        assert by_client["Safari 17.6"].pattern.startswith("664")
        text = render_figure5(series)
        assert "v6" in text and "v4" in text

    def test_table4_without_probe_uses_static_flags(self):
        rows = table4_inventory(probe=False)
        by_service = {r.service: r for r in rows}
        assert not by_service["DYN"].ipv6_only_capable
        assert by_service["OpenDNS"].ipv6_only_capable
