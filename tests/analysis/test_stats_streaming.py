"""StreamingCDF: the mergeable, deterministic quantile accumulator."""

import random

import pytest

from repro.analysis import StreamingCDF


def filled(values, bin_width=1.0):
    cdf = StreamingCDF(bin_width=bin_width)
    for value in values:
        cdf.add(value)
    return cdf


class TestAccumulation:
    def test_tracks_exact_extremes_and_mean(self):
        cdf = filled([10.0, 20.0, 30.0, 40.0])
        assert cdf.count == 4
        assert cdf.minimum == 10.0
        assert cdf.maximum == 40.0
        assert cdf.mean() == 25.0

    def test_empty_accumulator_returns_none(self):
        cdf = StreamingCDF()
        assert cdf.mean() is None
        assert cdf.quantile(0.5) is None
        assert cdf.cdf_at(1.0) is None
        assert cdf.cdf_points() == []

    def test_quantile_edges_are_exact(self):
        cdf = filled([3.25, 7.5, 11.0])
        assert cdf.quantile(0.0) == 3.25
        assert cdf.quantile(1.0) == 11.0

    def test_quantile_resolves_to_bin_upper_edge(self):
        # 100 values 0..99 in 1 ms bins: rank ceil(q*100) lands in bin
        # floor(value), whose upper edge is value + 1.
        cdf = filled([float(i) for i in range(100)])
        assert cdf.quantile(0.5) == 50.0
        assert cdf.quantile(0.9) == 90.0
        assert cdf.quantile(0.99) == 99.0

    def test_cdf_at_counts_bins_up_to_value(self):
        cdf = filled([10.0, 20.0, 30.0, 40.0])
        assert cdf.cdf_at(0.0) == 0.0
        assert cdf.cdf_at(20.0) == 0.5
        assert cdf.cdf_at(25.0) == 0.5
        assert cdf.cdf_at(40.0) == 1.0

    def test_cdf_points_are_sorted_and_cumulative(self):
        cdf = filled([2.0, 1.0, 1.0, 5.0])
        points = cdf.cdf_points()
        assert points == [(2.0, 0.5), (3.0, 0.75), (6.0, 1.0)]


class TestDeterminism:
    def test_insertion_order_is_irrelevant(self):
        values = [random.Random(7).uniform(0, 500) for _ in range(500)]
        shuffled = list(values)
        random.Random(8).shuffle(shuffled)
        forward, backward = filled(values), filled(shuffled)
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert forward.quantile(q) == backward.quantile(q)
        assert forward.cdf_points() == backward.cdf_points()

    def test_merge_equals_sequential(self):
        values = [random.Random(11).gauss(250, 80) for _ in range(400)]
        sequential = filled(values)
        merged = StreamingCDF(bin_width=1.0)
        for start in range(0, len(values), 100):
            merged.merge(filled(values[start:start + 100]))
        assert merged.count == sequential.count
        assert merged.minimum == sequential.minimum
        assert merged.maximum == sequential.maximum
        # Bin counts and extremes merge exactly; the mean is a float
        # sum, so chunked totals may differ in the last ulp.
        assert merged.mean() == pytest.approx(sequential.mean(),
                                              rel=1e-12)
        assert merged.cdf_points() == sequential.cdf_points()

    def test_merge_into_empty_and_from_empty(self):
        cdf = filled([1.0, 2.0])
        empty = StreamingCDF(bin_width=1.0)
        empty.merge(cdf)
        assert empty.cdf_points() == cdf.cdf_points()
        cdf.merge(StreamingCDF(bin_width=1.0))
        assert cdf.count == 2


class TestValidation:
    def test_bin_width_must_be_positive(self):
        with pytest.raises(ValueError, match="bin_width"):
            StreamingCDF(bin_width=0.0)

    def test_non_finite_samples_rejected(self):
        cdf = StreamingCDF()
        with pytest.raises(ValueError, match="non-finite"):
            cdf.add(float("nan"))
        with pytest.raises(ValueError, match="non-finite"):
            cdf.add(float("inf"))

    def test_mismatched_merge_widths_rejected(self):
        with pytest.raises(ValueError, match="bin widths differ"):
            StreamingCDF(bin_width=1.0).merge(StreamingCDF(bin_width=2.0))

    def test_quantile_domain_checked(self):
        cdf = filled([1.0])
        with pytest.raises(ValueError, match="quantile"):
            cdf.quantile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            cdf.quantile(-0.1)
