"""The deterministic fault-plan model (parse, targeting, bounds)."""

import pickle

import pytest

from repro.faults import (ENTRY_KINDS, STORE_KINDS, WRITE_KINDS, FaultKind,
                          FaultPlan, FaultPlanError, FaultSpec,
                          InjectedFault, inject_entry_fault)


class TestParse:
    def test_single_kind_defaults(self):
        plan = FaultPlan.parse("crash")
        assert plan.specs == (FaultSpec(kind=FaultKind.WORKER_CRASH),)

    def test_full_spec_fields(self):
        plan = FaultPlan.parse("hang:0.5:2:0.75", seed=9)
        (spec,) = plan.specs
        assert spec.kind is FaultKind.ENTRY_HANG
        assert spec.rate == 0.5
        assert spec.attempts == 2
        assert spec.hang_s == 0.75
        assert plan.seed == 9

    def test_comma_separated_streams(self):
        plan = FaultPlan.parse("crash:0.3,corrupt:0.5,io-error")
        assert [s.kind for s in plan.specs] == [
            FaultKind.WORKER_CRASH, FaultKind.CORRUPT_WRITE,
            FaultKind.IO_ERROR]

    def test_unknown_kind(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.parse("meteor:0.5")

    def test_bad_rate(self):
        with pytest.raises(FaultPlanError, match="rate"):
            FaultPlan.parse("crash:1.5")

    def test_bad_attempts(self):
        with pytest.raises(FaultPlanError, match="attempts"):
            FaultPlan.parse("crash:0.5:0")

    def test_too_many_fields(self):
        with pytest.raises(FaultPlanError, match="too many fields"):
            FaultPlan.parse("crash:0.5:1:0.1:extra")

    def test_empty_plan(self):
        with pytest.raises(FaultPlanError, match="empty"):
            FaultPlan.parse(" , ")

    def test_non_numeric_rate(self):
        with pytest.raises(FaultPlanError, match="bad fault spec"):
            FaultPlan.parse("crash:lots")


class TestKindSets:
    def test_partition(self):
        assert ENTRY_KINDS | STORE_KINDS == frozenset(FaultKind)
        assert not ENTRY_KINDS & STORE_KINDS
        assert WRITE_KINDS < STORE_KINDS


class TestTargeting:
    def test_pure_function_of_seed_and_coords(self):
        a = FaultPlan.parse("crash:0.5", seed=3)
        b = FaultPlan.parse("crash:0.5", seed=3)
        coords = ("cad", "Chrome 130.0", 150, 0)
        assert a.entry_fault(coords, 0) == b.entry_fault(coords, 0)

    def test_seed_changes_targets(self):
        coords = [("cad", f"client-{i}", i * 10, 0) for i in range(40)]
        hits = {seed: [c for c in coords
                       if FaultPlan.parse("crash:0.5", seed=seed)
                       .entry_fault(c, 0)]
                for seed in (1, 2)}
        assert hits[1] != hits[2]

    def test_rate_extremes(self):
        coords = [("cad", f"client-{i}", 0, 0) for i in range(20)]
        never = FaultPlan.parse("crash:0.0", seed=1)
        always = FaultPlan.parse("crash:1.0", seed=1)
        assert not any(never.entry_fault(c, 0) for c in coords)
        assert all(always.entry_fault(c, 0) for c in coords)

    def test_attempt_gating_heals(self):
        """attempts=N fires on attempts 0..N-1 and then runs clean —
        the property that makes retrying chaos campaigns converge."""
        plan = FaultPlan.parse("crash:1.0:2", seed=1)
        coords = ("cad", "Chrome 130.0", 150, 0)
        assert plan.entry_fault(coords, 0) is not None
        assert plan.entry_fault(coords, 1) is not None
        assert plan.entry_fault(coords, 2) is None

    def test_store_kinds_never_entry_fault(self):
        plan = FaultPlan.parse("corrupt:1.0,io-error:1.0", seed=1)
        assert plan.entry_fault(("cad", "x", 0, 0), 0) is None


class TestStoreFaults:
    def test_occurrence_counter_bounds_faults(self):
        plan = FaultPlan.parse("corrupt:1.0:2", seed=1)
        key = "ab" * 32
        assert plan.store_fault("write", key) is not None
        assert plan.store_fault("write", key) is not None
        assert plan.store_fault("write", key) is None  # healed

    def test_write_kinds_never_fire_on_read(self):
        plan = FaultPlan.parse("corrupt:1.0,partial:1.0", seed=1)
        assert plan.store_fault("read", "ab" * 32) is None

    def test_io_error_fires_both_ways(self):
        read_plan = FaultPlan.parse("io-error:1.0", seed=1)
        write_plan = FaultPlan.parse("io-error:1.0", seed=1)
        assert read_plan.store_fault("read", "ab" * 32) is not None
        assert write_plan.store_fault("write", "ab" * 32) is not None

    def test_worker_copies_do_not_share_occurrences(self):
        """Pickling (the pool-worker path) keeps plan identity but the
        parent-side occurrence counter stays parent-side semantics:
        equality ignores it."""
        plan = FaultPlan.parse("corrupt:1.0", seed=1)
        plan.store_fault("write", "ab" * 32)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan


class TestInjection:
    def test_serial_crash_is_an_exception(self):
        """In-process 'crashes' must raise, not kill the campaign."""
        (spec,) = FaultPlan.parse("crash:1.0").specs
        with pytest.raises(InjectedFault, match="serial simulation"):
            inject_entry_fault(spec, in_worker=False)

    def test_hang_sleeps_then_raises(self):
        (spec,) = FaultPlan.parse("hang:1.0:1:0.0").specs
        with pytest.raises(InjectedFault, match="injected entry hang"):
            inject_entry_fault(spec, in_worker=True)
