"""PopulationSpec: parsing, validation, digest stability."""

import json

import pytest

from repro.population import (PRESETS, Categorical, Choice, Fixed,
                              Normal, PopulationSpec,
                              PopulationSpecError, Uniform,
                              parse_numeric, resolve_spec)

#: A small hand-rolled spec used throughout; dict ordering here is the
#: "canonical" spelling the reordering tests permute.
SPEC_DATA = {
    "os": {"linux": 0.6, "windows": 0.4},
    "stacks": {"chromium": 0.7, "curl": 0.3},
    "cad_ms": {"kind": "choice", "values": [200, 250],
               "weights": [0.5, 0.5]},
    "rd_ms": 50,
    "resolvers": {"responsive": 0.9, "slow": 0.1},
    "impairments": {"healthy": 1.0},
}


class TestDistributions:
    def test_categorical_inverse_cdf(self):
        shares = Categorical((("a", 1.0), ("b", 3.0)))
        assert shares.sample(0.0) == "a"
        assert shares.sample(0.24) == "a"
        assert shares.sample(0.25) == "b"
        assert shares.sample(0.999) == "b"

    def test_categorical_sorts_choices(self):
        assert (Categorical((("b", 3.0), ("a", 1.0))).choices
                == Categorical((("a", 1.0), ("b", 3.0))).choices)

    def test_categorical_rejects_bad_weights(self):
        with pytest.raises(PopulationSpecError, match="positive"):
            Categorical((("a", 0.0),))
        with pytest.raises(PopulationSpecError, match="at least one"):
            Categorical(())

    def test_fixed_ignores_the_draw(self):
        assert Fixed(42.0).sample(0.0) == 42.0
        assert Fixed(42.0).sample(0.999) == 42.0

    def test_uniform_maps_the_interval(self):
        dist = Uniform(100.0, 300.0)
        assert dist.sample(0.0) == 100.0
        assert dist.sample(0.5) == 200.0
        with pytest.raises(PopulationSpecError, match="low <= high"):
            Uniform(2.0, 1.0)

    def test_normal_clamps_to_bounds(self):
        dist = Normal(50.0, 15.0, 10.0, 100.0)
        assert dist.sample(0.0) == 10.0
        assert dist.sample(1.0) == 100.0
        assert dist.sample(0.5) == pytest.approx(50.0)
        with pytest.raises(PopulationSpecError, match="stddev"):
            Normal(50.0, 0.0, 10.0, 100.0)
        with pytest.raises(PopulationSpecError,
                           match="minimum <= maximum"):
            Normal(50.0, 15.0, 100.0, 10.0)

    def test_choice_sorts_and_samples_values(self):
        dist = Choice(((300.0, 1.0), (150.0, 1.0)))
        assert dist.values == ((150.0, 1.0), (300.0, 1.0))
        assert dist.sample(0.0) == 150.0
        assert dist.sample(0.9) == 300.0


class TestParseNumeric:
    def test_bare_number_is_fixed(self):
        assert parse_numeric(50, "rd_ms") == Fixed(50.0)
        assert parse_numeric(12.5, "rd_ms") == Fixed(12.5)

    def test_booleans_are_not_numbers(self):
        with pytest.raises(PopulationSpecError, match="rd_ms"):
            parse_numeric(True, "rd_ms")

    def test_unknown_kind(self):
        with pytest.raises(PopulationSpecError, match="unknown"):
            parse_numeric({"kind": "pareto", "alpha": 2}, "cad_ms")

    def test_missing_field_names_the_field(self):
        with pytest.raises(PopulationSpecError, match="cad_ms.*missing"):
            parse_numeric({"kind": "uniform", "low": 1}, "cad_ms")

    def test_choice_weight_length_mismatch(self):
        with pytest.raises(PopulationSpecError, match="2 values but 1"):
            parse_numeric({"kind": "choice", "values": [1, 2],
                           "weights": [1.0]}, "cad_ms")


class TestSpecParsing:
    def test_presets_all_parse(self):
        for name, data in PRESETS.items():
            spec = PopulationSpec.from_dict(data)
            assert len(spec.digest()) == 64, name

    def test_unknown_field_rejected(self):
        data = dict(SPEC_DATA, browsers={"chromium": 1.0})
        with pytest.raises(PopulationSpecError, match="browsers"):
            PopulationSpec.from_dict(data)

    def test_missing_field_rejected(self):
        data = {k: v for k, v in SPEC_DATA.items() if k != "resolvers"}
        with pytest.raises(PopulationSpecError, match="resolvers"):
            PopulationSpec.from_dict(data)

    def test_unknown_share_name_rejected(self):
        data = dict(SPEC_DATA, stacks={"netscape": 1.0})
        with pytest.raises(PopulationSpecError, match="netscape"):
            PopulationSpec.from_dict(data)

    def test_empty_shares_rejected(self):
        data = dict(SPEC_DATA, os={})
        with pytest.raises(PopulationSpecError, match="non-empty"):
            PopulationSpec.from_dict(data)


class TestDigest:
    def test_stable_under_field_and_weight_reordering(self):
        reordered = {
            "impairments": {"healthy": 1.0},
            "rd_ms": 50,
            "cad_ms": {"weights": [0.5, 0.5], "values": [200, 250],
                       "kind": "choice"},
            "stacks": {"curl": 0.3, "chromium": 0.7},
            "os": {"windows": 0.4, "linux": 0.6},
            "resolvers": {"slow": 0.1, "responsive": 0.9},
        }
        assert (PopulationSpec.from_dict(SPEC_DATA).digest()
                == PopulationSpec.from_dict(reordered).digest())

    def test_content_changes_move_the_digest(self):
        base = PopulationSpec.from_dict(SPEC_DATA).digest()
        tweaked = dict(SPEC_DATA,
                       os={"linux": 0.61, "windows": 0.39})
        assert PopulationSpec.from_dict(tweaked).digest() != base
        renumbered = dict(SPEC_DATA, rd_ms=51)
        assert PopulationSpec.from_dict(renumbered).digest() != base

    def test_short_digest_is_a_prefix(self):
        spec = PopulationSpec.from_dict(SPEC_DATA)
        assert spec.digest().startswith(spec.short_digest())
        assert len(spec.short_digest()) == 12


class TestResolveSpec:
    def test_preset_names(self):
        assert (resolve_spec("default").digest()
                == PopulationSpec.from_dict(PRESETS["default"]).digest())
        assert (resolve_spec("v6-challenged").digest()
                != resolve_spec("default").digest())

    def test_empty_falls_back_to_default(self):
        assert (resolve_spec(None).digest()
                == resolve_spec("default").digest())
        assert (resolve_spec("").digest()
                == resolve_spec("default").digest())

    def test_at_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC_DATA), encoding="utf-8")
        assert (resolve_spec(f"@{path}").digest()
                == PopulationSpec.from_dict(SPEC_DATA).digest())

    def test_at_file_missing(self, tmp_path):
        with pytest.raises(PopulationSpecError, match="not found"):
            resolve_spec(f"@{tmp_path / 'nope.json'}")

    def test_at_file_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(PopulationSpecError, match="bad JSON"):
            resolve_spec(f"@{path}")

    def test_inline_json(self):
        assert (resolve_spec(json.dumps(SPEC_DATA)).digest()
                == PopulationSpec.from_dict(SPEC_DATA).digest())

    def test_inline_bad_json(self):
        with pytest.raises(PopulationSpecError, match="bad JSON"):
            resolve_spec("{broken")

    def test_unknown_name_lists_presets(self):
        with pytest.raises(PopulationSpecError, match="v6-challenged"):
            resolve_spec("no-such-preset")
