"""PopulationSampler: determinism, profile mapping, and the targeted
store-key invalidation property spec edits rely on."""

import json

import pytest

from repro.dns.rdata import RdataType
from repro.population import (PRESETS, PopulationSampler,
                              PopulationRunner, PopulationSpec,
                              resolve_spec)
from repro.testbed.parallel import spec_keys
from repro.testbed.store import config_digest


def fixed_spec(stack="chromium", os="linux", cad_ms=250, rd_ms=50,
               resolver="responsive", impairment="healthy"):
    """A degenerate one-point population: every draw is forced."""
    return PopulationSpec.from_dict({
        "os": {os: 1.0},
        "stacks": {stack: 1.0},
        "cad_ms": cad_ms,
        "rd_ms": rd_ms,
        "resolvers": {resolver: 1.0},
        "impairments": {impairment: 1.0},
    })


class TestDeterminism:
    def test_same_coordinate_same_user(self):
        spec = resolve_spec("default")
        a = PopulationSampler(spec, seed=3)
        b = PopulationSampler(spec, seed=3)
        for index in range(40):
            left, right = a.user(index), b.user(index)
            assert (left.os, left.stack_family, left.cad_ms,
                    left.rd_ms, left.resolver, left.impairment) == (
                        right.os, right.stack_family, right.cad_ms,
                        right.rd_ms, right.resolver, right.impairment)
            assert (config_digest(left.profile)
                    == config_digest(right.profile))
            assert left.impairments == right.impairments

    def test_seed_moves_the_population(self):
        spec = resolve_spec("default")
        a = PopulationSampler(spec, seed=0)
        b = PopulationSampler(spec, seed=1)
        assert any(
            a.user(i).stack_family != b.user(i).stack_family
            or a.user(i).cad_ms != b.user(i).cad_ms
            for i in range(40))

    def test_fields_draw_independently(self):
        """One field's draw never perturbs another's: a sampler over a
        spec that pins the stack still samples the same OS/CAD/... as
        the default spec does at the same coordinate."""
        pinned = PopulationSpec.from_dict(
            dict(PRESETS["default"], stacks={"curl": 1.0}))
        default = PopulationSampler(resolve_spec("default"), seed=5)
        forced = PopulationSampler(pinned, seed=5)
        for index in range(25):
            a, b = default.user(index), forced.user(index)
            assert b.stack_family == "curl"
            assert (a.os, a.cad_ms, a.rd_ms, a.resolver,
                    a.impairment) == (b.os, b.cad_ms, b.rd_ms,
                                      b.resolver, b.impairment)

    def test_negative_index_rejected(self):
        sampler = PopulationSampler(resolve_spec("default"))
        with pytest.raises(ValueError, match=">= 0"):
            sampler.user(-1)


class TestProfileMapping:
    def sample(self, **kwargs):
        return PopulationSampler(fixed_spec(**kwargs), seed=0).user(0)

    def test_degenerate_spec_is_fully_forced(self):
        user = self.sample()
        assert user.os == "linux"
        assert user.stack_family == "chromium"
        assert user.cad_ms == 250.0
        assert user.rd_ms == 50.0
        assert user.resolver == "responsive"
        assert user.impairment == "healthy"
        assert user.impairments == ()

    def test_browser_profile_shape(self):
        user = self.sample(stack="chromium", cad_ms=200)
        profile = user.profile
        assert profile.name == "pop-chromium"
        assert profile.engine_family == "chromium"
        assert profile.kind == "browser"
        assert profile.implements_happy_eyeballs
        assert profile.query_first is RdataType.AAAA
        assert not profile.supports_web_tests

    def test_gecko_queries_a_first(self):
        assert (self.sample(stack="gecko").profile.query_first
                is RdataType.A)

    def test_wget_is_the_serial_no_he_tail(self):
        profile = self.sample(stack="wget").profile
        assert not profile.implements_happy_eyeballs
        assert profile.kind == "cli"
        assert profile.query_first is RdataType.A

    def test_hev3_maps_to_reference_engine(self):
        profile = self.sample(stack="hev3").profile
        assert profile.engine_family == "reference"
        assert profile.implements_happy_eyeballs

    def test_os_picks_the_sortlist(self):
        windows = self.sample(os="windows").profile
        android = self.sample(os="android").profile
        assert windows.os_hint.startswith("Windows")
        assert android.os_hint.startswith("Android")

    def test_resolver_and_mix_stanzas_compose(self):
        user = self.sample(resolver="lame-aaaa", impairment="v6-lossy")
        names = [spec.name for spec in user.impairments]
        assert names == ["resolver-lame-aaaa", "mix-v6-lossy"]

    def test_cad_floor_keeps_stage_validators_happy(self):
        # A zero-ms CAD draw floors to 1 ms (CAD must be positive);
        # webkit's dynamic-CAD cap additionally floors at 100 ms.
        self.sample(stack="curl", cad_ms=0)
        self.sample(stack="webkit", cad_ms=0)


class TestTargetedInvalidation:
    """The subsystem's headline property: editing a distribution
    invalidates exactly the sample keys the edit actually moves."""

    SAMPLES = 120

    def keys_by_sample(self, spec, samples=SAMPLES):
        runner = PopulationRunner(spec, samples, seed=0)
        specs = runner.enumerate_specs()
        keyed = {}
        for spec_item, key in zip(specs, spec_keys(runner, specs)):
            keyed.setdefault(spec_item.case_index, set()).add(key)
        return runner, keyed

    def test_spec_edit_invalidates_exactly_the_moved_samples(self):
        base = resolve_spec("default")
        edited = PopulationSpec.from_dict(dict(
            PRESETS["default"],
            stacks={"chromium": 0.50, "gecko": 0.23, "webkit": 0.14,
                    "curl": 0.06, "wget": 0.04, "hev3": 0.03}))
        assert base.digest() != edited.digest()
        before_runner, before = self.keys_by_sample(base)
        after_runner, after = self.keys_by_sample(edited)
        moved = {i for i in range(self.SAMPLES)
                 if (before_runner.user(i).stack_family
                     != after_runner.user(i).stack_family)}
        changed = {i for i in range(self.SAMPLES)
                   if before[i] != after[i]}
        assert moved  # the edit is big enough to move someone
        assert changed == moved
        # Unchanged samples keep byte-identical key sets: a warm store
        # replays them with zero misses after the edit.
        for i in range(self.SAMPLES):
            if i not in moved:
                assert before[i] == after[i]

    def test_unrelated_field_edit_leaves_stack_draws_alone(self):
        base = resolve_spec("default")
        edited = PopulationSpec.from_dict(dict(
            PRESETS["default"],
            resolvers={"responsive": 0.70, "slow": 0.20,
                       "lame-aaaa": 0.10}))
        a = PopulationSampler(base, seed=0)
        b = PopulationSampler(edited, seed=0)
        for i in range(60):
            assert a.user(i).stack_family == b.user(i).stack_family
            assert a.user(i).cad_ms == b.user(i).cad_ms


class TestRunnerShape:
    def test_paired_enumeration_not_cross_product(self):
        runner = PopulationRunner(resolve_spec("default"), 5, seed=0)
        specs = runner.enumerate_specs()
        assert len(specs) == 5 * len(runner.degradation)
        assert all(s.case_index == s.client_index for s in specs)
        assert all(s.repetition == 0 for s in specs)

    def test_store_keys_are_distinct(self):
        runner = PopulationRunner(resolve_spec("default"), 10, seed=0)
        keys = list(runner.store_keys())
        assert len(keys) == len(set(keys)) == 10 * 3

    def test_runner_pickles_as_its_recipe(self):
        import pickle

        runner = PopulationRunner(resolve_spec("default"), 50, seed=4)
        clone = pickle.loads(pickle.dumps(runner))
        assert clone.samples == 50
        assert clone.seed == 4
        assert (clone.population_spec.digest()
                == runner.population_spec.digest())
        # The memo does not travel: workers materialize lazily.
        assert clone._memo == {}
        assert (config_digest(clone.user(7).profile)
                == config_digest(runner.user(7).profile))

    def test_sample_columns_are_lazy_sequences(self):
        runner = PopulationRunner(resolve_spec("default"), 8, seed=0)
        assert len(runner.cases) == len(runner.clients) == 8
        assert runner._memo == {}
        assert runner.cases[2].name == "pop-000002"
        assert runner.clients[-1].name.startswith("pop-")
        assert len(runner.cases[1:3]) == 2
        assert set(runner._memo) == {1, 2, 7}

    def test_samples_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            PopulationRunner(resolve_spec("default"), 0)
