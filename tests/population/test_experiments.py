"""The population experiments, end to end through the CLI and the
campaign service: cold==warm, serial==parallel, chaos-heals,
gc-liveness, submit==run."""

import json

import pytest

from repro.cli import main
from repro.experiments import Session, get_experiment, knob_mapping
from repro.service import CampaignService
from repro.testbed import CampaignStore

#: Small but non-trivial: 8 users × 2 degradation levels = 16 runs.
FAST = ["--samples", "8", "--degrade-step", "200"]


def strip_runtime_lines(text):
    return "\n".join(line for line in text.splitlines()
                     if not line.startswith(("[cache]", "[faults]")))


class TestByteIdentity:
    def test_cold_warm_identical_zero_misses(self, capsys, tmp_path):
        argv = ["--cache-dir", str(tmp_path), "run",
                "population-latency", *FAST]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert strip_runtime_lines(warm) == strip_runtime_lines(cold)
        assert "misses=0" in warm
        assert "hits=16" in warm

    def test_serial_equals_parallel(self, capsys, tmp_path):
        assert main(["run", "population-family-share", *FAST]) == 0
        serial = capsys.readouterr().out
        assert main(["--workers", "4", "run",
                     "population-family-share", *FAST]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_json_renders_deterministic_levels(self, capsys):
        assert main(["run", "population-latency", *FAST,
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment"] == "population-latency"
        assert data["samples"] == 8
        assert len(data["spec_digest"]) == 64
        assert [level["value_ms"] for level in data["levels"]] == [0, 200]
        for level in data["levels"]:
            assert level["established"] + level["failed"] == 8

    def test_both_experiments_share_one_campaign(self, capsys,
                                                 tmp_path):
        """family-share warm-replays latency's campaign byte for byte
        from the store: same keys, different aggregation."""
        assert main(["--cache-dir", str(tmp_path), "run",
                     "population-latency", *FAST]) == 0
        capsys.readouterr()
        assert main(["--cache-dir", str(tmp_path), "run",
                     "population-family-share", *FAST]) == 0
        out = capsys.readouterr().out
        assert "misses=0" in out
        assert "hits=16" in out


class TestChaos:
    def test_chaos_run_heals_byte_identical(self, capsys, tmp_path):
        assert main(["run", "population-latency", *FAST]) == 0
        clean = capsys.readouterr().out
        assert main(["--cache-dir", str(tmp_path), "--workers", "2",
                     "--retries", "2", "--fault-plan",
                     "crash:0.3,corrupt:0.5", "run",
                     "population-latency", *FAST]) == 0
        chaos = capsys.readouterr().out
        assert (strip_runtime_lines(chaos)
                == strip_runtime_lines(clean))
        assert any(line.startswith("[faults]")
                   for line in chaos.splitlines())
        # Warm rerun quarantines torn entries and still matches.
        assert main(["--cache-dir", str(tmp_path), "--retries", "2",
                     "run", "population-latency", *FAST]) == 0
        warm = capsys.readouterr().out
        assert (strip_runtime_lines(warm)
                == strip_runtime_lines(clean))

    def test_resume_replays_from_the_journal(self, capsys, tmp_path):
        argv = ["--cache-dir", str(tmp_path), "--retries", "1",
                "run", "population-latency", *FAST]
        assert main(argv) == 0
        clean = capsys.readouterr().out
        journal = tmp_path / ".journal" / "population-latency.log"
        assert journal.is_file()
        assert main(["--resume", *argv]) == 0
        resumed = capsys.readouterr().out
        assert (strip_runtime_lines(resumed)
                == strip_runtime_lines(clean))
        assert "resumed=" in resumed
        assert "misses=0" in resumed


class TestGcLiveness:
    def test_registry_planned_gc_keeps_population_keys(self, capsys,
                                                       tmp_path):
        """``cache gc`` planned at matching knobs reclaims nothing a
        population campaign stored, and the warm rerun is all hits."""
        argv = ["--cache-dir", str(tmp_path), "run",
                "population-latency", *FAST]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(["--cache-dir", str(tmp_path), "cache", "gc",
                     "--population-samples", "8"]) == 0
        gc_line = capsys.readouterr().out
        assert "removed=0" in gc_line
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert strip_runtime_lines(warm) == strip_runtime_lines(cold)
        assert "misses=0" in warm

    def test_gc_reclaims_an_abandoned_spec(self, capsys, tmp_path):
        """Shrinking the live population lets gc reclaim the keys that
        fell out of the plan — and only those."""
        assert main(["--cache-dir", str(tmp_path), "run",
                     "population-latency", *FAST]) == 0
        capsys.readouterr()
        assert main(["--cache-dir", str(tmp_path), "cache", "gc",
                     "--population-samples", "4"]) == 0
        out = capsys.readouterr().out
        # 4 live users × 2 levels stay; the other 4 users' keys go.
        assert "removed=8" in out


class TestService:
    def test_submit_equals_direct_run(self, tmp_path):
        knobs = {"samples": 8, "degrade_step": 200}
        with CampaignService(tmp_path / "svc", seed=0) as service:
            served_cold = service.submit("population-latency", knobs)
            served_warm = service.submit("population-latency", knobs)
        experiment = get_experiment("population-latency")
        direct = experiment.run(Session(
            seed=0, store=CampaignStore(tmp_path / "direct"),
            knobs=knob_mapping(experiment, knobs)))
        assert served_cold.text == direct.text
        assert served_warm.text == direct.text
        assert served_cold.data == direct.data


class TestSpecKnob:
    def test_unknown_spec_is_a_clean_cli_error(self):
        with pytest.raises(SystemExit,
                           match="unknown population spec"):
            main(["run", "population-latency", "--spec", "bogus",
                  *FAST])

    def test_inline_spec_flows_through(self, capsys):
        spec = json.dumps({
            "os": {"linux": 1.0},
            "stacks": {"curl": 1.0},
            "cad_ms": 250,
            "rd_ms": 50,
            "resolvers": {"responsive": 1.0},
            "impairments": {"healthy": 1.0},
        })
        assert main(["run", "population-family-share", "--samples",
                     "4", "--degrade-step", "200", "--spec",
                     spec]) == 0
        out = capsys.readouterr().out
        assert "curl" in out
        assert "spec custom" in out
