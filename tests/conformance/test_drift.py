"""Fingerprint drift: pairing, change detection, rendering."""

from repro.conformance import (ClientFingerprint, Deviation,
                               ParameterVerdict, RFC8305Parameter,
                               Requirement, diff_fingerprints,
                               fingerprint_diff_to_dict,
                               render_fingerprint_diff)


def verdict(parameter, scenario, implemented=True, measured=None,
            nominal=None):
    return ParameterVerdict(parameter=parameter, scenario=scenario,
                            implemented=implemented,
                            measured_ms=measured, nominal_ms=nominal)


def fingerprint(client, verdicts, deviations=()):
    return ClientFingerprint(client=client, engine_family="test",
                             verdicts=list(verdicts),
                             deviations=list(deviations))


CAD = RFC8305Parameter.CONNECTION_ATTEMPT_DELAY
RD = RFC8305Parameter.RESOLUTION_DELAY


class TestDiffFingerprints:
    def test_identical_fingerprints_have_no_drift(self):
        make = lambda: fingerprint("A 1.0", [
            verdict(CAD, "sweep", measured=250.0),
            verdict(RD, "delayed-aaaa", implemented=False)])
        diff = diff_fingerprints(make(), make())
        assert not diff.has_drift
        assert diff.changed_rows == []
        assert len(diff.rows) == 2

    def test_measured_drift_detected_with_delta(self):
        diff = diff_fingerprints(
            fingerprint("A 1.0", [verdict(CAD, "sweep", measured=200.0)]),
            fingerprint("A 2.0", [verdict(CAD, "sweep", measured=300.0)]))
        [row] = diff.rows
        assert row.changed
        assert row.measured_delta_ms == 100.0
        assert diff.has_drift

    def test_sub_tolerance_drift_ignored(self):
        diff = diff_fingerprints(
            fingerprint("A 1.0", [verdict(CAD, "sweep", measured=250.0)]),
            fingerprint("A 2.0", [verdict(CAD, "sweep", measured=250.5)]))
        assert not diff.rows[0].changed
        assert not diff.has_drift

    def test_implementation_flip_detected(self):
        diff = diff_fingerprints(
            fingerprint("A 1.0", [verdict(RD, "delayed-aaaa",
                                          implemented=False)]),
            fingerprint("A 2.0", [verdict(RD, "delayed-aaaa",
                                          implemented=True,
                                          measured=50.0)]))
        assert diff.rows[0].changed

    def test_one_sided_verdicts_are_changes(self):
        diff = diff_fingerprints(
            fingerprint("A 1.0", [verdict(CAD, "sweep", measured=250.0)]),
            fingerprint("A 2.0", [verdict(CAD, "sweep", measured=250.0),
                                  verdict(RD, "delayed-aaaa")]))
        assert len(diff.rows) == 2
        assert not diff.rows[0].changed
        assert diff.rows[1].changed  # only B produced it

    def test_deviation_churn(self):
        gained = Deviation(Requirement.SHOULD, "RFC 8305 §5", "new flag")
        lost = Deviation(Requirement.MUST, "RFC 8305 §4", "old flag")
        shared = Deviation(Requirement.SHOULD, "RFC 8305 §3", "both")
        diff = diff_fingerprints(
            fingerprint("A 1.0", [], deviations=[lost, shared]),
            fingerprint("A 2.0", [], deviations=[shared, gained]))
        assert diff.deviations_added == [gained]
        assert diff.deviations_removed == [lost]
        assert diff.has_drift


class TestDriftRendering:
    def drifted(self):
        return diff_fingerprints(
            fingerprint("A 1.0", [verdict(CAD, "sweep", measured=200.0)],
                        deviations=[Deviation(Requirement.SHOULD,
                                              "RFC 8305 §5", "old")]),
            fingerprint("A 2.0", [verdict(CAD, "sweep", measured=300.0)],
                        deviations=[Deviation(Requirement.SHOULD,
                                              "RFC 8305 §5", "new")]))

    def test_render_flags_changes_and_churn(self):
        text = render_fingerprint_diff(self.drifted())
        assert "Fingerprint drift: A 1.0 -> A 2.0" in text
        assert "CHANGED" in text
        assert "+100.0 ms" in text
        assert "deviations gained by A 2.0:" in text
        assert "deviations resolved since A 1.0:" in text
        assert "1 of 1 verdicts drifted; +1/-1 deviations" in text

    def test_render_no_drift(self):
        same = fingerprint("A 1.0",
                           [verdict(CAD, "sweep", measured=250.0)])
        text = render_fingerprint_diff(diff_fingerprints(same, same))
        assert "no behavioural drift" in text

    def test_json_form_is_deterministic(self):
        data = fingerprint_diff_to_dict(self.drifted())
        assert data["client_a"] == "A 1.0"
        assert data["has_drift"] is True
        assert data["rows"][0]["measured_delta_ms"] == 100.0
        assert data["deviations_added"][0]["description"] == "new"
