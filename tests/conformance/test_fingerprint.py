"""Fingerprint verdicts: nominal agreement, deviations, determinism.

The module-scoped fixture runs the full battery once for every
local-testbed client through a shared store; the tests then assert the
acceptance contract: ≥8 scenarios per client, measured CAD/RD agreeing
with each client's declared (Table 1) parameters, the paper's known
deviations flagged, and byte-identical serial/parallel/warm reports.
"""

import pytest

from repro.clients import get_profile, local_testbed_clients
from repro.conformance import (RFC8305Parameter, Requirement,
                               assemble_fingerprint, fingerprint_client,
                               fingerprints_to_json,
                               outcomes_from_records, render_fingerprint,
                               render_conformance_summary,
                               scenario_battery)
from repro.conformance.probe import ConformanceProbe
from repro.testbed import CampaignStore

#: Simulated timings are sharp; this absorbs capture granularity.
TOLERANCE_MS = 10.0


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return CampaignStore(tmp_path_factory.mktemp("conformance-store"))


@pytest.fixture(scope="module")
def fingerprints(store):
    """full_name -> (profile, fingerprint) for every local client."""
    return {
        profile.full_name: (
            profile,
            fingerprint_client(profile, seed=0, store=store, workers=2))
        for profile in local_testbed_clients()}


class TestAcceptance:
    def test_battery_covers_at_least_eight_scenarios(self, fingerprints):
        for _, fingerprint in fingerprints.values():
            assert len(fingerprint.scenarios_run) >= 8

    def test_measured_cad_agrees_with_declared_nominal(self, fingerprints):
        """Every client declaring a fixed CAD measures within
        tolerance of it — the Table 1 agreement contract."""
        declared = 0
        for profile, fingerprint in fingerprints.values():
            nominal = profile.nominal_cad
            verdict = fingerprint.verdict_for(
                RFC8305Parameter.CONNECTION_ATTEMPT_DELAY,
                "v6-delay-sweep")
            if nominal is None:
                continue
            declared += 1
            assert verdict.implemented, profile.full_name
            assert verdict.measured_ms == pytest.approx(
                nominal * 1000.0, abs=TOLERANCE_MS), profile.full_name
            assert abs(verdict.delta_ms) <= TOLERANCE_MS
        assert declared >= 10  # chromiums + firefoxes + curl

    def test_measured_rd_agrees_with_declared_nominal(self, fingerprints):
        declared = 0
        for profile, fingerprint in fingerprints.values():
            nominal = profile.nominal_rd
            verdict = fingerprint.verdict_for(
                RFC8305Parameter.RESOLUTION_DELAY)
            if nominal is None:
                assert not verdict.implemented, profile.full_name
                continue
            declared += 1
            assert verdict.implemented, profile.full_name
            assert verdict.measured_ms == pytest.approx(
                nominal * 1000.0, abs=TOLERANCE_MS), profile.full_name
        assert declared >= 2  # the Safaris

    def test_cad_stable_under_jitter(self, fingerprints):
        for profile, fingerprint in fingerprints.values():
            if profile.nominal_cad is None:
                continue
            jittery = fingerprint.verdict_for(
                RFC8305Parameter.CONNECTION_ATTEMPT_DELAY,
                "jittery-dual-stack")
            assert jittery.measured_ms == pytest.approx(
                profile.nominal_cad * 1000.0, abs=30.0), profile.full_name


class TestKnownDeviations:
    def test_wget_fails_the_blackhole_must(self, fingerprints):
        _, fingerprint = fingerprints["wget 1.21.3"]
        assert any(d.requirement is Requirement.MUST
                   for d in fingerprint.deviations)
        verdict = fingerprint.verdict_for(RFC8305Parameter.FALLBACK,
                                          "v6-blackhole")
        assert verdict.implemented is False

    def test_happy_eyeballs_clients_survive_the_blackhole(
            self, fingerprints):
        for name, (profile, fingerprint) in fingerprints.items():
            if not profile.implements_happy_eyeballs:
                continue
            verdict = fingerprint.verdict_for(RFC8305Parameter.FALLBACK,
                                              "v6-blackhole")
            assert verdict.implemented, name
            assert not fingerprint.must_deviations, name

    def test_chromium_flags_the_delayed_a_stall(self, fingerprints):
        _, fingerprint = fingerprints["Chrome 130.0"]
        verdict = fingerprint.verdict_for(
            RFC8305Parameter.RESOLUTION_POLICY)
        assert verdict.implemented is False
        assert any("stalls healthy IPv6" in d.description
                   for d in fingerprint.should_deviations)

    def test_safari_implements_rd_without_stall(self, fingerprints):
        _, fingerprint = fingerprints["Safari 17.6"]
        rd = fingerprint.verdict_for(RFC8305Parameter.RESOLUTION_DELAY)
        assert rd.implemented and rd.measured_ms == pytest.approx(
            50.0, abs=TOLERANCE_MS)
        policy = fingerprint.verdict_for(
            RFC8305Parameter.RESOLUTION_POLICY)
        assert policy.implemented is True
        assert not any("Resolution Delay" in d.description
                       for d in fingerprint.deviations)

    def test_firefox_flags_a_first_query_order(self, fingerprints):
        _, fingerprint = fingerprints["Firefox 132.0"]
        assert any("A query before the AAAA" in d.description
                   for d in fingerprint.should_deviations)

    def test_recommended_cad_only_for_firefox(self, fingerprints):
        """250 ms is the recommendation: Firefox matches it, the
        Chromium family (300 ms) and curl (200 ms) get flagged."""
        def cad_flagged(fingerprint):
            return any("recommended 250 ms" in d.description
                       for d in fingerprint.should_deviations)

        assert not cad_flagged(fingerprints["Firefox 132.0"][1])
        assert cad_flagged(fingerprints["Chrome 130.0"][1])
        assert cad_flagged(fingerprints["curl 7.88.1"][1])


class TestDeterminism:
    def test_serial_parallel_warm_reports_byte_identical(self, tmp_path):
        profile = get_profile("Chrome", "130.0")
        battery = scenario_battery()
        serial = fingerprint_client(profile, seed=11, battery=battery)
        parallel = fingerprint_client(profile, seed=11, workers=2,
                                      battery=battery)
        store = CampaignStore(tmp_path)
        fingerprint_client(profile, seed=11, store=store, battery=battery)
        warm_store = CampaignStore(tmp_path)
        warm = fingerprint_client(profile, seed=11, store=warm_store,
                                  battery=battery)
        assert warm_store.stats.misses == 0
        reference = fingerprints_to_json([serial])
        assert fingerprints_to_json([parallel]) == reference
        assert fingerprints_to_json([warm]) == reference
        assert render_fingerprint(warm) == render_fingerprint(serial)

    def test_summary_renders_every_client(self, fingerprints):
        text = render_conformance_summary(
            [fp for _, fp in fingerprints.values()])
        for name in fingerprints:
            assert name in text


class TestReplay:
    def test_fingerprint_from_recorded_runs(self, fingerprints):
        """Capture-replay path: records from a previous probe
        re-assemble into the same measured values without executing."""
        profile = get_profile("curl", "7.88.1")
        battery = scenario_battery()
        probe = ConformanceProbe(profile, seed=0, battery=battery)
        outcomes = probe.run()
        records = [record for outcome in outcomes
                   for record in outcome.records]
        replayed = assemble_fingerprint(
            profile, outcomes_from_records(battery, records))
        live = assemble_fingerprint(profile, outcomes)
        for a, b in zip(live.verdicts, replayed.verdicts):
            assert a.parameter is b.parameter
            assert a.implemented == b.implemented
            assert a.measured_ms == b.measured_ms
        assert replayed.deviations == live.deviations
