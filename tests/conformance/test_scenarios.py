"""The scenario catalog: coverage, declarations, spec integration."""

import pytest

from repro.conformance import (RFC8305Parameter, Scenario,
                               render_scenario_catalog, scenario_battery,
                               scenario_by_name)
from repro.simnet.addr import Family
from repro.testbed import (ImpairmentSpec, SpecError, TestCaseKind,
                           modules_for)
from repro.testbed.modules import ImpairmentModule
from repro.testbed.spec import parse_case, parse_impairment


class TestCatalog:
    def test_battery_has_at_least_eight_scenarios(self):
        assert len(scenario_battery()) >= 8

    def test_names_unique_and_cases_prefixed(self):
        battery = scenario_battery()
        names = [s.name for s in battery]
        assert len(set(names)) == len(names)
        case_names = [s.case.name for s in battery]
        assert len(set(case_names)) == len(case_names)
        assert all(name.startswith("conf-") for name in case_names)

    def test_issue_scenarios_all_present(self):
        """The battery covers every impairment the ISSUE names."""
        names = {s.name for s in scenario_battery()}
        assert {"v6-delay-sweep", "v6-blackhole", "asymmetric-loss",
                "delayed-a", "delayed-aaaa", "slow-resolver",
                "jittery-dual-stack", "v6-reorder",
                "rate-limited-v6"} <= names

    def test_every_scenario_declares_a_parameter(self):
        for scenario in scenario_battery():
            assert isinstance(scenario.discriminates, RFC8305Parameter)
            assert scenario.rfc_clause.startswith("RFC 8305")
            assert scenario.description

    def test_all_parameters_discriminated(self):
        from repro.conformance import (hev3_battery, sortlist_battery,
                                       svcb_battery)

        covered = {s.discriminates for s in scenario_battery()}
        assert covered == set(RFC8305Parameter) - {
            RFC8305Parameter.PROTOCOL_RACING,
            RFC8305Parameter.SVCB_DISCOVERY,
            RFC8305Parameter.DESTINATION_SORTING,
        }
        for battery in (hev3_battery(), svcb_battery(),
                        sortlist_battery()):
            covered |= {s.discriminates for s in battery}
        assert covered == set(RFC8305Parameter)

    def test_stage_batteries_have_unique_case_names(self):
        from repro.conformance import (hev3_battery, sortlist_battery,
                                       svcb_battery)

        names = [s.case.name for battery in
                 (scenario_battery(), hev3_battery(), svcb_battery(),
                  sortlist_battery()) for s in battery]
        assert len(names) == len(set(names))
        assert all(name.startswith("conf-") for name in names)

    def test_every_parameter_maps_to_a_stage(self):
        for parameter in RFC8305Parameter:
            assert parameter.stage in ("resolution", "sorting", "racing")

    def test_adaptive_scenarios_carry_both_steps(self):
        for scenario in scenario_battery():
            if scenario.adaptive:
                assert scenario.coarse_step_ms > scenario.fine_step_ms

    def test_scenario_by_name(self):
        assert scenario_by_name("v6-blackhole").discriminates is \
            RFC8305Parameter.FALLBACK
        with pytest.raises(KeyError):
            scenario_by_name("nope")

    def test_catalog_renders(self):
        text = render_scenario_catalog(scenario_battery())
        assert "v6-blackhole" in text
        assert "loss=100%" in text

    def test_impairment_cases_build_module_chains(self):
        for scenario in scenario_battery():
            modules = modules_for(scenario.case)
            has_impairments = bool(scenario.case.impairments)
            assert any(isinstance(m, ImpairmentModule)
                       for m in modules) == has_impairments


class TestImpairmentSpec:
    def test_blackhole_is_total_loss(self):
        spec = scenario_by_name("v6-blackhole").case.impairments[0]
        assert spec.loss == 1.0
        assert spec.family is Family.V6

    def test_label_summarizes_shaping(self):
        label = ImpairmentSpec(family=Family.V6, loss=0.4).label()
        assert "IPv6" in label and "loss=40%" in label
        assert ImpairmentSpec().label() == "no-op"

    def test_dns_rtype_excludes_netem_fields(self):
        from repro.dns.rdata import RdataType

        with pytest.raises(ValueError):
            ImpairmentSpec(dns_rtype=RdataType.A, loss=0.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ImpairmentSpec(delay_s=-1.0)


class TestSpecParsing:
    def test_impairment_stanza_round_trip(self):
        case = parse_case({
            "kind": "impairment",
            "name": "my-scenario",
            "impairments": [
                {"family": "v6", "protocol": "tcp", "loss": 0.25},
                {"dns_rtype": "AAAA", "delay_s": 1.5},
            ],
        })
        assert case.kind is TestCaseKind.IMPAIRMENT
        assert case.sweep.values_ms == (0,)  # IMPAIRMENT default sweep
        assert case.impairments[0].family is Family.V6
        assert case.impairments[0].loss == 0.25
        assert case.impairments[1].dns_rtype.name == "AAAA"

    def test_unknown_impairment_field_rejected(self):
        with pytest.raises(SpecError, match="unknown impairment"):
            parse_impairment({"family": "v6", "delya_s": 1.0})

    def test_bad_family_and_protocol_rejected(self):
        with pytest.raises(SpecError, match="unknown family"):
            parse_impairment({"family": "v8"})
        with pytest.raises(SpecError, match="unknown protocol"):
            parse_impairment({"protocol": "sctp"})

    def test_invalid_values_surface_as_spec_errors(self):
        with pytest.raises(SpecError, match="bad impairment"):
            parse_impairment({"loss": 1.5})
