"""The three policy-stage scenario batteries (HEv3, SVCB, sortlist).

Acceptance contract: on every battery at least two *registered*
clients produce different per-stage fingerprint verdicts — the stages
actually discriminate — and each battery replays byte-identically from
a warm store.
"""

import pytest

from repro.clients.registry import get_profile, local_testbed_clients
from repro.conformance import (fingerprint_client, hev3_battery,
                               render_battery_summary, sortlist_battery,
                               svcb_battery)
from repro.conformance.scenarios import RFC8305Parameter
from repro.simnet.packet import Protocol
from repro.testbed import CampaignStore
from repro.testbed.config import ServiceSpec
from repro.testbed.runner import TestRunner


def verdict_map(fingerprint):
    return {(v.parameter, v.scenario): v.implemented
            for v in fingerprint.verdicts}


BATTERIES = {
    "hev3": hev3_battery,
    "svcb": svcb_battery,
    "sortlist": sortlist_battery,
}


class TestDiscrimination:
    @pytest.mark.parametrize("battery_name", sorted(BATTERIES))
    def test_two_registered_clients_differ(self, battery_name):
        battery = BATTERIES[battery_name]()
        fingerprints = {}
        for name, version in (("hev3-reference", "draft-07"),
                              ("Chrome", "130.0"), ("wget", "1.21.3")):
            profile = get_profile(name, version)
            fingerprints[name] = verdict_map(
                fingerprint_client(profile, battery=battery))
        # Every scenario of the battery gets a verdict per client, and
        # at least two registered clients disagree on every scenario.
        for scenario in battery:
            key = (scenario.discriminates, scenario.name)
            verdicts = {client: mapping[key]
                        for client, mapping in fingerprints.items()}
            assert len(set(verdicts.values())) > 1, (
                f"{battery_name}/{scenario.name}: all clients agree "
                f"({verdicts}) — the stage does not discriminate")

    def test_hev3_reference_races_and_wins_quic(self):
        fp = fingerprint_client(get_profile("hev3-reference"),
                                battery=hev3_battery())
        advertised = fp.verdict_for(RFC8305Parameter.PROTOCOL_RACING,
                                    "quic-advertised")
        blackholed = fp.verdict_for(RFC8305Parameter.PROTOCOL_RACING,
                                    "quic-blackholed")
        assert advertised.implemented is True
        assert blackholed.implemented is True  # TCP fallback worked
        assert not fp.must_deviations

    def test_legacy_client_never_touches_quic_or_svcb(self):
        chrome = get_profile("Chrome", "130.0")
        fp = fingerprint_client(chrome, battery=hev3_battery())
        assert fp.verdict_for(RFC8305Parameter.PROTOCOL_RACING,
                              "quic-advertised").implemented is False
        fp = fingerprint_client(chrome, battery=svcb_battery())
        assert fp.verdict_for(RFC8305Parameter.SVCB_DISCOVERY,
                              "https-query").implemented is False

    def test_wget_flagged_for_legacy_sortlist(self):
        fp = fingerprint_client(get_profile("wget", "1.21.3"),
                                battery=sortlist_battery())
        assert all(v.implemented is False for v in fp.verdicts)
        assert len(fp.should_deviations) == 3  # one per scenario
        conforming = fingerprint_client(get_profile("Chrome", "130.0"),
                                        battery=sortlist_battery())
        assert all(v.implemented is True for v in conforming.verdicts)
        assert not conforming.deviations


class TestWarmReplay:
    @pytest.mark.parametrize("battery_name", sorted(BATTERIES))
    def test_cold_equals_warm_with_all_hits(self, tmp_path, battery_name):
        battery = BATTERIES[battery_name]()
        profile = get_profile("hev3-reference")
        cold_store = CampaignStore(tmp_path)
        cold = fingerprint_client(profile, store=cold_store,
                                  battery=battery)
        assert cold_store.stats.stores > 0
        warm_store = CampaignStore(tmp_path)
        warm = fingerprint_client(profile, store=warm_store,
                                  battery=battery)
        assert warm_store.stats.misses == 0
        assert warm_store.stats.hits == cold_store.stats.stores
        assert render_battery_summary("t", [warm], battery) == \
            render_battery_summary("t", [cold], battery)


class TestServiceObservables:
    """The ServiceSpec testbed seam feeds the new RunRecord fields."""

    def run_single(self, scenario, client=("hev3-reference", "draft-07")):
        profile = get_profile(*client)
        runner = TestRunner([profile], [scenario.case], seed=1)
        return runner.run_single(scenario.case, profile, 0, 0)

    def test_quic_advertised_observables(self):
        scenario = hev3_battery()[0]
        record = self.run_single(scenario)
        assert record.queried_https is True
        assert record.attempts_quic > 0
        assert record.winning_protocol is Protocol.QUIC
        legacy = self.run_single(scenario, client=("curl", "7.88.1"))
        assert legacy.queried_https is False
        assert legacy.attempts_quic == 0
        assert legacy.winning_protocol is Protocol.TCP

    def test_alt_port_observable(self):
        scenario = svcb_battery()[1]
        assert scenario.case.service.https_port == 8443
        record = self.run_single(scenario)
        assert record.first_attempt_port == 8443
        legacy = self.run_single(scenario, client=("curl", "7.88.1"))
        assert legacy.first_attempt_port == 80

    def test_sortlist_destinations_all_connect(self):
        for scenario in sortlist_battery():
            record = self.run_single(scenario)
            assert record.winning_family is not None, scenario.name

    def test_service_spec_validation(self):
        with pytest.raises(ValueError, match="https_alpn"):
            ServiceSpec(https_port=8443)
        with pytest.raises(ValueError, match="https_port"):
            ServiceSpec(https_alpn=("h3",), https_port=0)
        assert "quic" in ServiceSpec(https_alpn=("h3",),
                                     quic_listener=True).label()

    def test_batteries_cover_all_local_clients(self):
        # The registered battery experiments run every local client;
        # the registry must include the discriminating pair.
        names = {p.name for p in local_testbed_clients()}
        assert {"hev3-reference", "wget", "Chrome"} <= names
