"""The adaptive probe: refinement windows, cache-awareness, planning."""

import pytest

from repro.clients import get_profile
from repro.conformance import (ConformanceProbe, refinement_window,
                               scenario_battery, scenario_by_name)
from repro.simnet.addr import Family
from repro.testbed import CampaignStore


class TestRefinementWindow:
    def test_window_brackets_the_crossover(self):
        series = {0: Family.V6, 50: Family.V6, 100: Family.V4,
                  150: Family.V4}
        assert refinement_window(series, 50, 400) == (50, 100)

    def test_no_fallback_means_no_refinement(self):
        series = {0: Family.V6, 50: Family.V6}
        assert refinement_window(series, 50, 400) is None

    def test_immediate_v4_refines_from_zero(self):
        series = {0: Family.V4, 50: Family.V4}
        assert refinement_window(series, 50, 400) == (0, 50)

    def test_flapping_series_widens_to_the_flap(self):
        # IPv4 at 100 but IPv6 again at 200: refine the whole window.
        series = {0: Family.V6, 100: Family.V4, 200: Family.V6,
                  300: Family.V4}
        assert refinement_window(series, 50, 400) == (50, 250)

    def test_pure_function_of_the_series(self):
        series = {0: Family.V6, 250: Family.V6, 300: Family.V4}
        assert refinement_window(series, 50, 400) == \
            refinement_window(dict(reversed(series.items())), 50, 400)


class TestAdaptiveProbe:
    def test_fine_pass_reuses_cached_coarse_values(self, tmp_path):
        """The cache-aware inner loop: the fine sweep's overlap with
        the coarse grid comes back as hits even on a cold campaign."""
        profile = get_profile("curl", "7.88.1")
        scenario = scenario_by_name("v6-delay-sweep")
        store = CampaignStore(tmp_path)
        probe = ConformanceProbe(profile, seed=2, store=store,
                                 battery=[scenario])
        outcome = probe.run()[0]
        assert outcome.refined_window_ms is not None
        lo, hi = outcome.refined_window_ms
        # curl's 200 ms CAD sits inside the refined window.
        assert lo <= 200 <= hi
        assert store.stats.hits > 0        # coarse overlap replayed
        # The fine pass measured at 5 ms granularity inside the window.
        fine_values = {r.value_ms for r in outcome.records
                       if lo < r.value_ms < hi}
        assert fine_values  # refinement actually added values

    def test_warm_probe_executes_nothing(self, tmp_path):
        profile = get_profile("Chrome", "130.0")
        battery = scenario_battery()
        cold = ConformanceProbe(profile, seed=1,
                                store=CampaignStore(tmp_path),
                                battery=battery).run()
        warm_store = CampaignStore(tmp_path)
        warm = ConformanceProbe(profile, seed=1, store=warm_store,
                                battery=battery).run()
        assert warm_store.stats.misses == 0
        assert warm_store.stats.stores == 0
        for cold_outcome, warm_outcome in zip(cold, warm):
            assert warm_outcome.records == cold_outcome.records
            assert warm_outcome.refined_window_ms == \
                cold_outcome.refined_window_ms

    def test_serial_equals_parallel(self):
        profile = get_profile("curl", "7.88.1")
        battery = [scenario_by_name("v6-delay-sweep"),
                   scenario_by_name("asymmetric-loss")]
        serial = ConformanceProbe(profile, seed=4,
                                  battery=battery).run()
        parallel = ConformanceProbe(profile, seed=4, workers=2,
                                    battery=battery).run()
        for a, b in zip(serial, parallel):
            assert a.records == b.records


class TestKeyPlanning:
    def test_store_keys_cover_the_warm_battery(self, tmp_path):
        """After a cold probe, the planned key set contains every key
        the probe touched — the gc contract that a warm battery stays
        fully cached."""
        profile = get_profile("curl", "7.88.1")
        battery = [scenario_by_name("v6-delay-sweep"),
                   scenario_by_name("v6-blackhole")]
        store = CampaignStore(tmp_path)
        ConformanceProbe(profile, seed=7, store=store,
                         battery=battery).run()
        on_disk = {key for key, _ in store.entries()}
        planned = set(ConformanceProbe(
            profile, seed=7, store=CampaignStore(tmp_path),
            battery=battery).store_keys())
        assert on_disk <= planned

    def test_cold_planning_skips_unknowable_fine_keys(self, tmp_path):
        profile = get_profile("curl", "7.88.1")
        scenario = scenario_by_name("v6-delay-sweep")
        probe = ConformanceProbe(profile, seed=7,
                                 store=CampaignStore(tmp_path),
                                 battery=[scenario])
        planned = list(probe.store_keys())
        # Cold store: only the enumerable coarse keys are planned.
        assert len(planned) == len(scenario.case.sweep)

    def test_storeless_planning_yields_coarse_keys_only(self):
        """Without a store (``repro ls`` on a cold catalogue) the
        plan is exactly the enumerable coarse keys of the battery."""
        profile = get_profile("curl", "7.88.1")
        battery = [scenario_by_name("v6-delay-sweep"),
                   scenario_by_name("v6-blackhole")]
        probe = ConformanceProbe(profile, battery=battery)
        planned = list(probe.store_keys())
        expected = sum(len(s.case.sweep) * s.case.repetitions
                       for s in battery)
        assert len(planned) == expected
        assert len(set(planned)) == expected
