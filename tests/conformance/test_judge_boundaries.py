"""Judge tie and boundary cases, pinned on fabricated records.

The verdict and drift code draws sharp lines — a measured delta of
exactly the tolerance, an exact half split of family winners, a vote
tie — and each line's side is part of the report's contract.
"""

import pytest

from repro.clients import get_profile
from repro.conformance import DriftRow, Requirement, scenario_battery
from repro.conformance.drift import DRIFT_TOLERANCE_MS
from repro.conformance.fingerprint import (ClientFingerprint,
                                           ParameterVerdict,
                                           assemble_fingerprint)
from repro.conformance.probe import ScenarioOutcome
from repro.conformance.scenarios import RFC8305Parameter
from repro.simnet.addr import Family
from repro.synthesis import ScenarioSpace
from repro.testbed.runner import RunRecord, majority_family

PROFILE = get_profile("curl", "7.88.1")


def record_for(scenario, repetition=0, winning_family=Family.V6,
               aaaa_first=True, duration_s=0.05):
    return RunRecord(
        case=scenario.case.name, kind=scenario.case.kind,
        client=PROFILE.full_name, value_ms=0, repetition=repetition,
        completed=True, winning_family=winning_family,
        aaaa_first=aaaa_first, duration_s=duration_s)


def judge_one(scenario, records):
    fingerprint = assemble_fingerprint(
        PROFILE, [ScenarioOutcome(scenario=scenario, records=records)])
    assert len(fingerprint.verdicts) == 1
    return fingerprint, fingerprint.verdicts[0]


def scenario_named(name):
    (scenario,) = [s for s in scenario_battery() if s.name == name]
    return scenario


class TestMajorityFamily:
    def test_tie_breaks_toward_ipv4(self):
        assert majority_family({Family.V4: 2, Family.V6: 2}) is Family.V4

    def test_majority_wins(self):
        assert majority_family({Family.V4: 1, Family.V6: 2}) is Family.V6
        assert majority_family({Family.V4: 2, Family.V6: 1}) is Family.V4

    def test_unanimous_one_family(self):
        assert majority_family({Family.V6: 3}) is Family.V6


class TestDriftTolerance:
    def row(self, measured_a, measured_b):
        def verdict(measured):
            return ParameterVerdict(
                parameter=RFC8305Parameter.CONNECTION_ATTEMPT_DELAY,
                scenario="v6-delay-sweep", implemented=True,
                measured_ms=measured)

        return DriftRow(parameter="CAD", scenario="v6-delay-sweep",
                        verdict_a=verdict(measured_a),
                        verdict_b=verdict(measured_b))

    def test_delta_exactly_at_tolerance_is_unchanged(self):
        row = self.row(250.0, 250.0 + DRIFT_TOLERANCE_MS)
        assert row.measured_delta_ms == pytest.approx(1.0)
        assert not row.changed

    def test_delta_just_past_tolerance_is_changed(self):
        assert self.row(250.0, 250.0 + DRIFT_TOLERANCE_MS + 0.001).changed
        assert self.row(250.0 + DRIFT_TOLERANCE_MS + 0.001, 250.0).changed

    def test_measurement_disappearing_is_changed(self):
        row = self.row(250.0, 250.0)
        row.verdict_b.measured_ms = None
        assert row.changed

    def test_missing_counterpart_verdict_is_changed(self):
        row = self.row(250.0, 250.0)
        row.verdict_b = None
        assert row.changed


class TestFirstFamilyHalfSplit:
    """`prefers_v6` holds at *exactly* half the winners — an even
    split is ambiguous evidence and must not flag a deviation."""

    def winners(self, families):
        scenario = scenario_named("slow-resolver")
        records = [record_for(scenario, repetition=i, winning_family=f)
                   for i, f in enumerate(families)]
        return judge_one(scenario, records)

    def test_exact_half_v6_still_prefers_v6(self):
        fingerprint, verdict = self.winners([Family.V6, Family.V4])
        assert verdict.implemented is True
        assert not fingerprint.deviations

    def test_minority_v6_deviates(self):
        fingerprint, verdict = self.winners(
            [Family.V6, Family.V4, Family.V4])
        assert verdict.implemented is False
        (deviation,) = fingerprint.deviations
        assert deviation.requirement is Requirement.SHOULD
        assert "prefers IPv4" in deviation.description

    def test_a_query_first_deviates_even_when_v6_wins(self):
        scenario = scenario_named("slow-resolver")
        records = [record_for(scenario, repetition=i, aaaa_first=False)
                   for i in range(2)]
        fingerprint, verdict = judge_one(scenario, records)
        assert verdict.implemented is False
        (deviation,) = fingerprint.deviations
        assert "A query before the AAAA" in deviation.description


class TestSynthesizedJudge:
    """The generic reachability judge every `synth-` scenario gets."""

    def synth_scenario(self):
        space = ScenarioSpace.default()
        candidate = space.sample(3, 0)
        return space.scenario_for(candidate, "fabricated for the test")

    def outcome(self, families):
        scenario = self.synth_scenario()
        records = [record_for(scenario, repetition=i, winning_family=f)
                   for i, f in enumerate(families)]
        return judge_one(scenario, records)

    def test_full_establishment_is_clean(self):
        fingerprint, verdict = self.outcome([Family.V6, Family.V6])
        assert verdict.implemented is True
        assert verdict.parameter is self.synth_scenario().discriminates
        assert verdict.measured_ms == pytest.approx(50.0)
        assert not fingerprint.deviations

    def test_never_establishing_is_a_must_deviation(self):
        fingerprint, verdict = self.outcome([None, None])
        assert verdict.implemented is False
        (deviation,) = fingerprint.deviations
        assert deviation.requirement is Requirement.MUST
        assert "never reached the dual-stack host" in deviation.description
        assert self.synth_scenario().name in deviation.description

    def test_partial_establishment_is_a_should_deviation(self):
        fingerprint, verdict = self.outcome([Family.V4, None, None])
        assert verdict.implemented is False
        assert "1/3 established" in verdict.detail
        (deviation,) = fingerprint.deviations
        assert deviation.requirement is Requirement.SHOULD
        assert "only 1/3 repetitions" in deviation.description

    def test_synth_prefix_bypasses_the_handwritten_judges(self):
        """A synth- scenario discriminating a parameter with a
        hand-written judge still gets the generic judge: the verdict
        carries the synthesized detail string, not the judge table's."""
        fingerprint, verdict = self.outcome([Family.V6])
        assert "under synthesized mix" in verdict.detail
        assert isinstance(fingerprint, ClientFingerprint)
