"""Tests for the recursive resolver engine and the resolver testbed."""

import pytest

from repro.dns.nsselect import GluePlan, ResolverBehavior
from repro.resolvers import (BIND9, KNOT, UNBOUND, ResolverTestbed,
                             evaluated_services, excluded_services,
                             probe_ipv6_only_capability,
                             run_resolver_campaign)
from repro.simnet import Family


class TestIterativeResolution:
    def test_delegation_walk_succeeds(self):
        testbed = ResolverTestbed(BIND9, seed=1)
        observation = testbed.run()
        assert observation.success
        assert observation.first_probe_family is not None

    def test_bind_always_prefers_ipv6(self):
        for seed in range(5):
            testbed = ResolverTestbed(BIND9, seed=seed, zone_index=seed)
            observation = testbed.run()
            assert observation.first_probe_family is Family.V6

    def test_bind_falls_back_after_800ms(self):
        testbed = ResolverTestbed(BIND9, seed=2, delay_ms=1200)
        observation = testbed.run()
        assert observation.success
        assert observation.answering_family is Family.V4
        assert observation.fallback_gap_s == pytest.approx(0.800, abs=0.010)

    def test_bind_uses_ipv6_below_timeout(self):
        testbed = ResolverTestbed(BIND9, seed=3, delay_ms=500)
        observation = testbed.run()
        assert observation.answering_family is Family.V6
        assert observation.v6_packets == 1

    def test_bind_queries_a_before_aaaa_for_ns(self):
        testbed = ResolverTestbed(BIND9, seed=4)
        observation = testbed.run()
        assert observation.aaaa_before_a is False
        assert observation.aaaa_before_probe is True

    def test_unbound_queries_aaaa_before_a(self):
        testbed = ResolverTestbed(UNBOUND, seed=5)
        observation = testbed.run()
        assert observation.aaaa_before_a is True

    def test_unbound_retry_has_exponential_backoff(self):
        # Find a seed where Unbound retries IPv6 (44 % chance).
        for seed in range(40):
            testbed = ResolverTestbed(UNBOUND, seed=seed, delay_ms=2000,
                                      zone_index=seed)
            observation = testbed.run()
            if observation.first_probe_family is not Family.V6:
                continue
            if observation.v6_packets == 2:
                # Retry fired 376 ms after the first attempt.
                assert observation.success
                break
        else:
            pytest.fail("no Unbound IPv6 retry observed in 40 seeds")

    def test_knot_sends_single_ns_address_query(self):
        testbed = ResolverTestbed(KNOT, seed=6)
        testbed.run()
        from repro.dns.name import DNSName
        from repro.dns.rdata import RdataType

        ns_name = DNSName.from_text(testbed.ns_name)
        qtypes = {entry.qtype for entry in testbed.auth.query_log
                  if entry.qname == ns_name}
        assert len(qtypes) == 1
        assert qtypes <= {RdataType.A, RdataType.AAAA}

    def test_sticky_family_resolver_fails_rather_than_switch(self):
        sticky = ResolverBehavior(
            name="sticky", v6_preference=1.0, attempt_timeout=0.2,
            max_queries_per_address=2, switch_family_on_failure=False)
        testbed = ResolverTestbed(sticky, seed=7, delay_ms=5000)
        observation = testbed.run()
        assert not observation.success
        assert observation.v4_packets == 0


class TestCampaigns:
    def test_campaign_share_tracks_preference(self):
        result = run_resolver_campaign(UNBOUND, delays_ms=[0],
                                       repetitions=40, seed=8)
        assert result.runs == 40
        assert 25.0 < result.ipv6_share < 75.0

    def test_campaign_max_delay_equals_timeout(self):
        result = run_resolver_campaign(
            BIND9, delays_ms=[400, 700, 800, 900, 1200], repetitions=1,
            seed=9)
        # One-way shaping: usable until the delay exceeds the 800 ms
        # attempt timeout.
        assert result.max_ipv6_delay_ms == 800

    def test_opendns_model_he_style(self):
        from repro.resolvers import OPEN_RESOLVER_BY_NAME

        opendns = OPEN_RESOLVER_BY_NAME["OpenDNS"].behavior
        result = run_resolver_campaign(opendns, delays_ms=[200],
                                       repetitions=3, seed=10)
        assert result.ipv6_share == 100.0
        gap = result.median_fallback_gap_ms()
        assert gap == pytest.approx(50.0, abs=5.0)


class TestCapabilityProbe:
    def test_dual_stack_resolver_passes(self):
        assert probe_ipv6_only_capability(BIND9, dual_stack_resolver=True)

    def test_v4_only_resolver_fails(self):
        assert not probe_ipv6_only_capability(
            BIND9, dual_stack_resolver=False)

    def test_excluded_services_match_paper(self):
        names = {s.service for s in excluded_services()}
        assert names == {"Hurricane Electric", "Lumen (Level3)", "DYN",
                         "G-Core"}

    def test_thirteen_services_evaluated(self):
        assert len(evaluated_services()) == 13
