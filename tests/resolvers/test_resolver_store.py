"""Resolver campaigns through the content-addressed store (Table 3)."""

import dataclasses

import pytest

from repro.resolvers.models import BIND9, UNBOUND
from repro.resolvers.testbed import (decode_observation,
                                     encode_observation,
                                     resolver_campaign_keys,
                                     resolver_run_key,
                                     run_resolver_campaign)
from repro.testbed import CampaignStore

DELAYS = [0, 100]
REPS = 2


class TestObservationRoundTrip:
    def test_encode_decode_identity(self):
        campaign = run_resolver_campaign(BIND9, delays_ms=[0, 900],
                                         repetitions=1, seed=1)
        for observation in campaign.observations:
            assert decode_observation(
                encode_observation(observation)) == observation


class TestCampaignCaching:
    def test_cold_then_warm_identical(self, tmp_path):
        store = CampaignStore(tmp_path)
        cold = run_resolver_campaign(BIND9, delays_ms=DELAYS,
                                     repetitions=REPS, seed=3,
                                     store=store)
        assert store.stats.misses == len(DELAYS) * REPS
        assert store.stats.stores == len(DELAYS) * REPS
        warm_store = CampaignStore(tmp_path)
        warm = run_resolver_campaign(BIND9, delays_ms=DELAYS,
                                     repetitions=REPS, seed=3,
                                     store=warm_store)
        assert warm_store.stats.hits == len(DELAYS) * REPS
        assert warm_store.stats.misses == 0
        assert warm.observations == cold.observations

    def test_cached_equals_uncached(self, tmp_path):
        plain = run_resolver_campaign(UNBOUND, delays_ms=DELAYS,
                                      repetitions=REPS, seed=5)
        cached = run_resolver_campaign(UNBOUND, delays_ms=DELAYS,
                                       repetitions=REPS, seed=5,
                                       store=CampaignStore(tmp_path))
        assert cached.observations == plain.observations

    def test_grid_extension_reuses_overlap(self, tmp_path):
        """Runs are keyed by their own (delay, repetition), not the
        campaign grid — a denser grid replays the overlap."""
        run_resolver_campaign(BIND9, delays_ms=DELAYS, repetitions=REPS,
                              seed=3, store=CampaignStore(tmp_path))
        store = CampaignStore(tmp_path)
        run_resolver_campaign(BIND9, delays_ms=[0, 50, 100],
                              repetitions=REPS, seed=3, store=store)
        assert store.stats.hits == len(DELAYS) * REPS
        assert store.stats.misses == 1 * REPS  # only the 50 ms runs

    def test_behavior_change_misses(self):
        base = resolver_run_key(BIND9, 3, 100, 0)
        slower = dataclasses.replace(BIND9, attempt_timeout=1.2)
        assert resolver_run_key(slower, 3, 100, 0) != base
        assert resolver_run_key(BIND9, 4, 100, 0) != base
        assert resolver_run_key(BIND9, 3, 101, 0) != base
        assert resolver_run_key(BIND9, 3, 100, 1) != base

    def test_campaign_keys_enumerate_every_run(self, tmp_path):
        store = CampaignStore(tmp_path)
        run_resolver_campaign(BIND9, delays_ms=DELAYS, repetitions=REPS,
                              seed=3, store=store)
        keys = resolver_campaign_keys(BIND9, DELAYS, REPS, 3)
        assert {key for key, _ in store.entries()} == set(keys)


class TestTable3Store:
    def test_warm_rerender_all_hits_and_identical_rows(self, tmp_path):
        from repro.analysis import table3_resolvers

        kwargs = dict(seed=2, share_repetitions=4, delay_repetitions=1,
                      delays_ms=[100])
        cold_store = CampaignStore(tmp_path)
        cold = table3_resolvers(store=cold_store, **kwargs)
        assert cold_store.stats.stores > 0
        warm_store = CampaignStore(tmp_path)
        warm = table3_resolvers(store=warm_store, **kwargs)
        assert warm_store.stats.misses == 0
        assert warm_store.stats.hits == cold_store.stats.misses
        for cold_row, warm_row in zip(cold, warm):
            assert warm_row.service == cold_row.service
            assert warm_row.aaaa_query == cold_row.aaaa_query
            assert warm_row.ipv6_share == cold_row.ipv6_share
            assert warm_row.max_ipv6_delay_ms == cold_row.max_ipv6_delay_ms
            assert warm_row.ipv6_packets == cold_row.ipv6_packets

    def test_store_keys_cover_the_warm_table(self, tmp_path):
        from repro.analysis import table3_resolvers, table3_store_keys

        kwargs = dict(seed=2, share_repetitions=4, delay_repetitions=1,
                      delays_ms=[100])
        store = CampaignStore(tmp_path)
        table3_resolvers(store=store, **kwargs)
        planned = set(table3_store_keys(seed=2, share_repetitions=4,
                                        delay_repetitions=1,
                                        delays_ms=[100]))
        on_disk = {key for key, _ in store.entries()}
        assert on_disk <= planned
