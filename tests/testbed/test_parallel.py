"""The parallel campaign engine and stable run seeding."""

import os
import subprocess
import sys

import pytest

from repro.clients import get_profile
from repro.seeding import stable_run_seed
from repro.testbed import (CampaignExecutor, SweepSpec, TestCaseConfig,
                           TestCaseKind, TestRunner, address_selection_case,
                           enumerate_specs, run_campaign_spec)


def small_runner(seed: int = 5) -> TestRunner:
    return TestRunner(
        clients=[get_profile("Chrome", "130.0"),
                 get_profile("curl", "7.88.1")],
        cases=[TestCaseConfig(
                   name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                   sweep=SweepSpec.fixed(0, 150, 310), repetitions=2),
               TestCaseConfig(
                   name="rd", kind=TestCaseKind.RESOLUTION_DELAY,
                   sweep=SweepSpec.fixed(1000)),
               address_selection_case(3)],
        seed=seed)


class TestStableRunSeed:
    def test_deterministic_within_process(self):
        assert stable_run_seed(0, "cad", "Chrome 130.0", 150, 0) == \
            stable_run_seed(0, "cad", "Chrome 130.0", 150, 0)

    def test_distinguishes_coordinates(self):
        seeds = {stable_run_seed(0, "cad", client, value, repetition)
                 for client in ("Chrome 130.0", "curl 7.88.1")
                 for value in (0, 150) for repetition in (0, 1)}
        assert len(seeds) == 8

    def test_31_bit_range(self):
        seed = stable_run_seed(12345, "x" * 100, 2.5, None)
        assert 0 <= seed <= 0x7FFFFFFF

    def test_type_sensitive(self):
        # "1" and 1 must not collide: canonical form includes the type.
        assert stable_run_seed(1) != stable_run_seed("1")

    def test_stable_across_interpreter_hash_seeds(self):
        """``hash()`` is PYTHONHASHSEED-salted; the digest must not be."""
        expected = stable_run_seed(7, "cad", "Chrome 130.0", 150, 1)
        script = ("from repro.seeding import stable_run_seed; "
                  "print(stable_run_seed(7, 'cad', 'Chrome 130.0', 150, 1))")
        for hash_seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH="src")
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True,
                cwd=os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__)))))
            assert int(out.stdout.strip()) == expected, hash_seed


class TestSpecEnumeration:
    def test_matches_serial_loop_order(self):
        runner = small_runner()
        specs = enumerate_specs(runner)
        expected = [(ci, pi, v, r)
                    for ci, case in enumerate(runner.cases)
                    for pi in range(len(runner.clients))
                    for v in case.sweep
                    for r in range(case.repetitions)]
        assert [(s.case_index, s.client_index, s.value_ms, s.repetition)
                for s in specs] == expected

    def test_chunks_partition_in_order(self):
        executor = CampaignExecutor(small_runner(), workers=3)
        specs = enumerate_specs(executor.runner)
        flattened = [spec for chunk in executor.chunks() for spec in chunk]
        assert flattened == specs

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            CampaignExecutor(small_runner(), workers=0)
        with pytest.raises(ValueError):
            small_runner().run(workers=0)
        with pytest.raises(ValueError):
            small_runner().run(workers=-3)


class TestParallelCampaign:
    def test_serial_and_parallel_records_identical(self):
        """The acceptance property: same records, same order, same values."""
        runner = small_runner()
        serial = runner.run()
        parallel = runner.run(workers=2)
        assert len(serial) == len(parallel)
        assert serial.records == parallel.records

    def test_workers_one_is_serial(self):
        runner = small_runner(seed=6)
        assert runner.run().records == runner.run(workers=1).records

    def test_aggregations_agree(self):
        runner = small_runner(seed=7)
        serial = runner.run()
        parallel = runner.run(workers=2)
        assert serial.median_cad("Chrome 130.0") == \
            parallel.median_cad("Chrome 130.0")
        assert serial.family_by_delay("curl 7.88.1", "cad") == \
            parallel.family_by_delay("curl 7.88.1", "cad")

    def test_spec_workers_knob(self):
        spec = {
            "seed": 3,
            "workers": 2,
            "clients": [{"name": "curl", "version": "7.88.1"}],
            "cases": [{"kind": "cad",
                       "sweep": {"values": [0, 150, 310]}}],
        }
        parallel = run_campaign_spec(spec)
        serial = run_campaign_spec({**spec, "workers": None})
        assert serial.records == parallel.records
