"""The fault-tolerant campaign runtime.

The headline invariant, asserted for every fault kind: under any
seeded fault plan, a campaign with retries enabled produces records
**byte-identical** to the fault-free run — chaos may cost time, never
correctness.  Around it: the crash-safe journal and ``--resume``,
graceful degradation past the retry budget, the per-entry watchdog,
and the shared-pool recovery seams.
"""

import dataclasses
import pickle

import pytest

from repro.clients import get_profile
from repro.faults import FaultPlan
from repro.fanout import shared_pool, shutdown_shared_pool
from repro.seeding import backoff_jitter
from repro.testbed import (CampaignJournal, CampaignStore, Resilience,
                           RetryPolicy, SweepSpec, TestCaseConfig,
                           TestCaseKind, TestRunner, cad_case,
                           is_harness_failure)

#: Backoff tuned for tests: correctness is identical, sleeps are not.
FAST = dict(backoff_base=0.001, backoff_cap=0.01)


def chaos_runner(seed=5, resilience=None, store=None, values=(0, 80, 160,
                                                             240, 320)):
    return TestRunner(
        clients=[get_profile("Chrome", "130.0"),
                 get_profile("curl", "7.88.1")],
        cases=[dataclasses.replace(cad_case(),
                                   sweep=SweepSpec.fixed(*values))],
        seed=seed, store=store, resilience=resilience)


def campaign_coords(runner):
    return [(case.name, profile.full_name, value_ms, repetition)
            for case in runner.cases
            for profile in runner.clients
            for value_ms in case.sweep
            for repetition in range(case.repetitions)]


@pytest.fixture(scope="module")
def clean_records():
    return list(chaos_runner().stream())


class TestBackoffJitter:
    def test_deterministic(self):
        assert backoff_jitter(7, 3) == backoff_jitter(7, 3)

    def test_within_half_open_window(self):
        for attempt in range(6):
            window = min(2.0, 0.05 * (2 ** attempt))
            delay = backoff_jitter(1, attempt)
            assert window / 2 <= delay < window

    def test_exponential_until_cap(self):
        # Window doubles per attempt, so the lower bound of attempt
        # n+1 equals the upper bound of attempt n: monotone growth.
        assert backoff_jitter(1, 0) < backoff_jitter(1, 2)
        assert backoff_jitter(1, 20) < 2.0  # capped

    def test_seed_varies_jitter(self):
        draws = {backoff_jitter(seed, 2) for seed in range(16)}
        assert len(draws) > 8

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            backoff_jitter(1, -1)


class TestCampaignJournal:
    def test_roundtrip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j" / "campaign.log")
        keys = {"ab" * 32, "cd" * 32, "ef" * 32}
        for key in sorted(keys):
            journal.record(key)
        journal.close()
        assert CampaignJournal(journal.path).load() == keys

    def test_torn_last_line_is_ignored(self, tmp_path):
        path = tmp_path / "campaign.log"
        path.write_text(("ab" * 32) + "\n" + ("cd" * 16))  # kill mid-write
        assert CampaignJournal(path).load() == {"ab" * 32}

    def test_garbage_lines_are_ignored(self, tmp_path):
        path = tmp_path / "campaign.log"
        path.write_text("not-a-key\n" + ("ab" * 32) + "\n\nxyz\n")
        assert CampaignJournal(path).load() == {"ab" * 32}

    def test_missing_file_loads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "absent.log").load() == set()

    def test_picklable_with_open_handle(self, tmp_path):
        journal = CampaignJournal(tmp_path / "campaign.log")
        journal.record("ab" * 32)
        clone = pickle.loads(pickle.dumps(journal))
        assert clone.path == journal.path
        assert clone._handle is None
        journal.close()


class TestChaosInvariant:
    """Faulted campaigns with retries heal into byte-identical output."""

    @pytest.mark.parametrize("plan_text", [
        "crash:0.4", "hang:0.4:1:0.05", "crash:0.3,hang:0.3:1:0.05"])
    def test_serial_entry_faults(self, clean_records, plan_text):
        plan = FaultPlan.parse(plan_text, seed=5)
        res = Resilience(policy=RetryPolicy(retries=2, **FAST),
                         fault_plan=plan)
        runner = chaos_runner(resilience=res)
        targeted = [c for c in campaign_coords(runner)
                    if plan.entry_fault(c, 0)]
        assert targeted, "plan must actually fire for the test to bite"
        assert list(runner.stream()) == clean_records
        assert res.manifest.retries >= len(targeted)
        assert not res.manifest.failures

    @pytest.mark.parametrize("plan_text", ["crash:0.4",
                                           "crash:0.3,hang:0.3:1:0.05"])
    def test_parallel_worker_crashes(self, clean_records, plan_text):
        """Satellite: a worker crash mid-campaign breaks the shared
        ``ProcessPoolExecutor``; the runtime respawns it, re-dispatches
        only unfinished entries, and the output stays byte-identical
        to the serial fault-free run."""
        plan = FaultPlan.parse(plan_text, seed=5)
        res = Resilience(policy=RetryPolicy(retries=2, **FAST),
                         fault_plan=plan)
        runner = chaos_runner(resilience=res)
        assert list(runner.stream(workers=2)) == clean_records
        if "crash" in plan_text:
            assert res.manifest.pool_breaks > 0
            assert res.manifest.respawns >= res.manifest.pool_breaks
        assert not res.manifest.failures
        # The shared pool is healthy again after the breaks.
        assert shared_pool(2).submit(len, ()).result() == 0

    def test_parallel_hang_watchdog(self, clean_records):
        """Injected hangs (0.25 s) exceed the watchdog (0.08 s): the
        pool is abandoned, hung entries are charged and retried, and
        the campaign still heals byte-identically."""
        plan = FaultPlan.parse("hang:0.4:1:0.25", seed=5)
        res = Resilience(policy=RetryPolicy(retries=2, entry_timeout=0.08,
                                            **FAST), fault_plan=plan)
        runner = chaos_runner(resilience=res)
        assert list(runner.stream(workers=2)) == clean_records
        assert res.manifest.hang_timeouts > 0
        assert res.manifest.respawns > 0
        assert not res.manifest.failures
        assert shared_pool(2).submit(len, ()).result() == 0

    def test_corrupt_store_writes_heal_on_rerun(self, tmp_path,
                                                clean_records):
        """Torn writes poison the cold run's cache without touching its
        output; the warm rerun quarantines the torn entries,
        re-executes them, and is byte-identical too."""
        plan = FaultPlan.parse("corrupt:0.5,partial:0.3", seed=5)
        store = CampaignStore(tmp_path / "cache")
        store.fault_plan = plan
        res = Resilience(policy=RetryPolicy(retries=2, **FAST),
                         fault_plan=plan)
        cold = list(chaos_runner(resilience=res, store=store).stream())
        assert cold == clean_records
        torn = sum(1 for key in store.fault_plan._occurrences)
        assert torn > 0, "plan must actually tear writes"

        warm_store = CampaignStore(tmp_path / "cache")  # fault-free handle
        res2 = Resilience(policy=RetryPolicy(retries=2, **FAST))
        warm = list(chaos_runner(resilience=res2,
                                 store=warm_store).stream())
        assert warm == clean_records
        assert warm_store.stats.quarantined == torn
        assert warm_store.stats.invalid == torn
        quarantined = list((tmp_path / "cache" / ".quarantine")
                           .rglob("*.json"))
        assert len(quarantined) == torn

        # Third run: fully healed, pure hits.
        healed_store = CampaignStore(tmp_path / "cache")
        assert list(chaos_runner(store=healed_store)
                    .stream()) == clean_records
        assert healed_store.stats.misses == 0

    def test_transient_io_errors_degrade_not_abort(self, tmp_path,
                                                   clean_records):
        """Injected read/write OSErrors cost cache entries, never
        records: the campaign completes identically and the skipped
        writes are counted."""
        plan = FaultPlan.parse("io-error:0.4:3", seed=5)
        store = CampaignStore(tmp_path / "cache")
        store.fault_plan = plan
        res = Resilience(policy=RetryPolicy(retries=2, **FAST),
                         fault_plan=plan)
        assert list(chaos_runner(resilience=res,
                                 store=store).stream()) == clean_records
        assert res.manifest.store_write_errors > 0


class TestGracefulDegradation:
    def test_serial_budget_exhaustion_completes_campaign(self):
        plan = FaultPlan.parse("crash:1.0:9", seed=5)  # never heals
        res = Resilience(policy=RetryPolicy(retries=1, **FAST),
                         fault_plan=plan)
        records = list(chaos_runner(resilience=res).stream())
        assert len(records) == 10
        assert all(is_harness_failure(r) for r in records)
        assert all(not r.completed for r in records)
        assert len(res.manifest.failures) == 10
        assert all(f.attempts == 2 for f in res.manifest.failures)

    def test_parallel_persistent_crasher_is_bounded(self, clean_records):
        """A worker that crashes on every attempt cannot crash-loop:
        settle-phase attribution charges it and the campaign finishes
        with the failure recorded and every other entry intact."""
        plan = FaultPlan.parse("crash:1.0:9", seed=5)
        res = Resilience(policy=RetryPolicy(retries=1, **FAST),
                         fault_plan=plan)
        records = list(chaos_runner(resilience=res,
                                    values=(0, 80)).stream(workers=2))
        assert len(records) == 4
        assert all(is_harness_failure(r) for r in records)
        assert len(res.manifest.failures) == 4
        assert shared_pool(2).submit(len, ()).result() == 0

    def test_harness_failures_never_cached_or_journaled(self, tmp_path):
        plan = FaultPlan.parse("crash:1.0:9", seed=5)
        store = CampaignStore(tmp_path / "cache")
        journal = CampaignJournal(tmp_path / "cache" / ".journal" / "c.log")
        res = Resilience(policy=RetryPolicy(retries=1, **FAST),
                         fault_plan=plan, journal=journal)
        list(chaos_runner(resilience=res, store=store).stream())
        journal.close()
        assert store.stats.stores == 0
        assert list(store.entries()) == []
        assert CampaignJournal(journal.path).load() == set()


class TestJournalResume:
    def _resilience(self, tmp_path, resume=False):
        journal = CampaignJournal(tmp_path / "cache" / ".journal" / "c.log")
        return Resilience(policy=RetryPolicy(retries=1, **FAST),
                          journal=journal, resume=resume)

    def test_abandoned_campaign_resumes_without_reexecution(self,
                                                            tmp_path,
                                                            clean_records):
        store = CampaignStore(tmp_path / "cache")
        res = self._resilience(tmp_path)
        stream = chaos_runner(resilience=res, store=store).stream()
        partial = [next(stream) for _ in range(4)]  # then SIGKILL
        stream.close()
        res.close()
        assert partial == clean_records[:4]
        journaled = CampaignJournal(res.journal.path).load()
        assert len(journaled) == 4

        store2 = CampaignStore(tmp_path / "cache")
        res2 = self._resilience(tmp_path, resume=True)
        finished = list(chaos_runner(resilience=res2,
                                     store=store2).stream())
        res2.close()
        assert finished == clean_records
        assert res2.manifest.resumed == 4          # zero re-executions
        assert store2.stats.hits == 4
        assert store2.stats.misses == len(clean_records) - 4
        assert res2.manifest.journal_stale == 0

    def test_journaled_key_lost_from_store_reexecutes(self, tmp_path,
                                                      clean_records):
        store = CampaignStore(tmp_path / "cache")
        res = self._resilience(tmp_path)
        assert list(chaos_runner(resilience=res,
                                 store=store).stream()) == clean_records
        res.close()
        key, path = next(store.entries())
        path.unlink()  # the store lost a journaled entry

        store2 = CampaignStore(tmp_path / "cache")
        res2 = self._resilience(tmp_path, resume=True)
        assert list(chaos_runner(resilience=res2,
                                 store=store2).stream()) == clean_records
        res2.close()
        assert res2.manifest.journal_stale == 1     # detected, not trusted
        assert res2.manifest.resumed == len(clean_records) - 1
        assert store2.stats.misses == 1

    def test_resume_accounting_is_capped_by_plan(self, tmp_path,
                                                 clean_records):
        """Journaled keys outside the campaign's plan (say, from a
        larger earlier sweep) are simply ignored."""
        store = CampaignStore(tmp_path / "cache")
        res = self._resilience(tmp_path)
        list(chaos_runner(resilience=res, store=store).stream())
        res.journal.record("ab" * 32)  # foreign journaled key
        res.close()

        store2 = CampaignStore(tmp_path / "cache")
        res2 = self._resilience(tmp_path, resume=True)
        assert list(chaos_runner(resilience=res2,
                                 store=store2).stream()) == clean_records
        res2.close()
        assert res2.manifest.resumed == len(clean_records)
        assert res2.manifest.journal_stale == 0


class TestSharedPoolSeams:
    def test_atexit_registered_once_across_respawns(self, monkeypatch):
        """Satellite: shutdown + recreate cycles must not stack atexit
        hooks — the teardown is registered at most once per process."""
        import atexit

        from repro import fanout

        shutdown_shared_pool()
        calls = []
        monkeypatch.setattr(atexit, "register",
                            lambda fn: calls.append(fn))
        monkeypatch.setattr(fanout, "_atexit_registered", False)
        try:
            for _ in range(3):
                shared_pool(1)
                shutdown_shared_pool()
            assert calls == [shutdown_shared_pool]
        finally:
            shutdown_shared_pool()

    def test_abandon_discards_pool_without_waiting(self):
        from repro.fanout import abandon_shared_pool

        first = shared_pool(1)
        abandon_shared_pool()
        second = shared_pool(1)
        try:
            assert second is not first
            assert second.submit(len, ()).result() == 0
        finally:
            shutdown_shared_pool()
