"""Tests for declarative campaign specs and summary statistics."""

import pytest

from repro.analysis import (Summary, cad_summary, outlier_fraction,
                            stall_summary, summarize)
from repro.testbed import (CampaignSpec, SpecError, TestCaseKind,
                           run_campaign_spec)
from repro.testbed.spec import parse_case, parse_client, parse_sweep


class TestSpecParsing:
    def test_minimal_spec(self):
        spec = CampaignSpec.from_dict({
            "clients": [{"name": "curl", "version": "7.88.1"}],
            "cases": [{"kind": "cad",
                       "sweep": {"values": [100, 300]}}],
        })
        assert len(spec.clients) == 1
        assert spec.cases[0].kind is TestCaseKind.CONNECTION_ATTEMPT_DELAY
        assert spec.total_runs() == 2

    def test_range_sweep(self):
        case = parse_case({"kind": "cad",
                           "sweep": {"start": 0, "stop": 100, "step": 50}})
        assert list(case.sweep) == [0, 50, 100]

    def test_default_sweep_per_kind(self):
        case = parse_case({"kind": "rd"})
        assert len(case.sweep) > 0

    def test_sweep_cannot_mix_forms(self):
        with pytest.raises(SpecError):
            parse_sweep({"values": [1], "stop": 5},
                        TestCaseKind.RESOLUTION_DELAY)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="valid:"):
            parse_case({"kind": "warp-speed"})

    def test_missing_kind_rejected(self):
        with pytest.raises(SpecError):
            parse_case({"sweep": {"values": [1]}})

    def test_unknown_client_rejected(self):
        with pytest.raises(SpecError):
            parse_client({"name": "NetPositive"})

    def test_hev3_flag_applied(self):
        profile = parse_client({"name": "Chrome", "version": "130.0",
                                "hev3_flag": True})
        assert profile.implements_resolution_delay

    def test_empty_spec_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"clients": [], "cases": []})
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({
                "clients": [{"name": "curl"}], "cases": []})

    def test_resilience_stanzas(self):
        spec = CampaignSpec.from_dict({
            "clients": [{"name": "curl", "version": "7.88.1"}],
            "cases": [{"kind": "cad", "sweep": {"values": [100]}}],
            "seed": 7, "retries": 2, "entry_timeout": 30.0,
            "faults": "crash:0.3,corrupt:0.5",
        })
        res = spec.build_resilience()
        assert res.policy.retries == 2
        assert res.policy.entry_timeout == 30.0
        assert res.policy.backoff_seed == 7
        assert res.fault_plan.seed == 7  # chaos replays with the seed
        assert len(res.fault_plan.specs) == 2
        # The fault-plan stanza form can pin its own seed.
        spec = CampaignSpec.from_dict({
            "clients": [{"name": "curl", "version": "7.88.1"}],
            "cases": [{"kind": "cad", "sweep": {"values": [100]}}],
            "faults": {"plan": "hang:0.2:1:0.4", "seed": 11},
        })
        assert spec.faults.seed == 11
        assert spec.faults.specs[0].hang_s == 0.4

    def test_default_spec_builds_no_resilience(self):
        spec = CampaignSpec.from_dict({
            "clients": [{"name": "curl", "version": "7.88.1"}],
            "cases": [{"kind": "cad", "sweep": {"values": [100]}}],
        })
        assert spec.build_resilience() is None

    def test_bad_resilience_stanzas_rejected(self):
        base = {"clients": [{"name": "curl", "version": "7.88.1"}],
                "cases": [{"kind": "cad", "sweep": {"values": [100]}}]}
        with pytest.raises(SpecError, match="retries"):
            CampaignSpec.from_dict({**base, "retries": -1})
        with pytest.raises(SpecError, match="bad fault plan"):
            CampaignSpec.from_dict({**base, "faults": "meteor:0.5"})
        with pytest.raises(SpecError, match="'plan' string"):
            CampaignSpec.from_dict({**base, "faults": {"seed": 3}})

    def test_chaos_spec_matches_fault_free_execution(self):
        base = {
            "seed": 13,
            "clients": [{"name": "curl", "version": "7.88.1"}],
            "cases": [{"kind": "cad", "sweep": {"values": [150, 250]}}],
        }
        clean = run_campaign_spec(base)
        chaos = run_campaign_spec({**base, "retries": 2,
                                   "faults": "crash:1.0"})
        assert chaos.records == clean.records

    def test_end_to_end_execution(self):
        results = run_campaign_spec({
            "seed": 13,
            "clients": [{"name": "curl", "version": "7.88.1"}],
            "cases": [{"kind": "cad",
                       "sweep": {"values": [150, 250]}}],
        })
        assert len(results) == 2
        series = results.family_by_delay("curl 7.88.1", "cad")
        assert series[150].label == "IPv6"
        assert series[250].label == "IPv4"


class TestSummaries:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.median == pytest.approx(2.5)
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0

    def test_summarize_odd_count_median(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0

    def test_summarize_empty_is_none(self):
        assert summarize([]) is None

    def test_within(self):
        summary = summarize([0.249, 0.250, 0.251])
        assert summary.within(0.250, 0.002)
        assert not summary.within(0.300, 0.002)

    def test_describe_scales(self):
        text = summarize([0.25]).describe(unit="ms", scale=1000.0)
        assert "250.0ms" in text

    def test_cad_summary_from_campaign(self):
        results = run_campaign_spec({
            "seed": 14,
            "clients": [{"name": "Chrome", "version": "130.0"}],
            "cases": [{"kind": "cad",
                       "sweep": {"values": [350, 380, 400]}}],
        })
        summary = cad_summary(results, "Chrome 130.0")
        assert summary.count == 3
        assert summary.within(0.300, 0.005)
        assert summary.stddev < 0.001  # "within a ms", like the paper

    def test_firefox_outlier_fraction(self):
        results = run_campaign_spec({
            "seed": 15,
            "clients": [{"name": "Firefox", "version": "132.0"}],
            "cases": [{"kind": "cad",
                       "sweep": {"values": [400]}, "repetitions": 30}],
        })
        fraction = outlier_fraction(results, "Firefox 132.0",
                                    nominal_cad_s=0.250)
        assert fraction is not None
        assert 0.0 < fraction < 0.5  # a few outliers, not the norm

    def test_stall_summary(self):
        results = run_campaign_spec({
            "seed": 16,
            "clients": [{"name": "Chrome", "version": "130.0"}],
            "cases": [{"kind": "delayed-a",
                       "sweep": {"values": [500]}}],
        })
        summary = stall_summary(results, "Chrome 130.0")
        assert summary.median == pytest.approx(0.500, abs=0.010)
