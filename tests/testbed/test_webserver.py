"""Tests for the echo web server and testbed topology details."""

import pytest

from repro.simnet import Family
from repro.testbed.topology import (EchoWebServer, LocalTestbed, SERVER_V4,
                                    SERVER_V6)


class TestEchoWebServer:
    def test_echoes_client_source_address(self):
        testbed = LocalTestbed(seed=81)

        def client_proc():
            attempt = testbed.client.tcp.connect(SERVER_V4, 80)
            connection = yield attempt.established
            connection.send(b"GET /ip HTTP/1.1\r\n\r\n")
            reply = yield connection.recv()
            connection.close()
            return reply

        reply = testbed.sim.run_until(testbed.sim.process(client_proc()))
        assert b"200 OK" in reply
        assert reply.endswith(b"192.0.2.1")

    def test_serves_both_families(self):
        testbed = LocalTestbed(seed=82)

        def fetch(dst):
            attempt = testbed.client.tcp.connect(dst, 80)
            connection = yield attempt.established
            connection.send(b"GET /ip HTTP/1.1\r\n\r\n")
            reply = yield connection.recv()
            connection.close()
            return reply

        v4 = testbed.sim.run_until(testbed.sim.process(fetch(SERVER_V4)))
        v6 = testbed.sim.run_until(testbed.sim.process(fetch(SERVER_V6)))
        assert v4.endswith(b"192.0.2.1")
        assert v6.endswith(b"2001:db8:1::1")

    def test_exchanges_logged(self):
        testbed = LocalTestbed(seed=83)

        def client_proc():
            attempt = testbed.client.tcp.connect(SERVER_V6, 80)
            connection = yield attempt.established
            connection.send(b"GET /ip HTTP/1.1\r\n\r\n")
            yield connection.recv()

        testbed.sim.run_until(testbed.sim.process(client_proc()))
        assert len(testbed.web.exchanges) == 1
        exchange = testbed.web.exchanges[0]
        assert exchange.family is Family.V6
        assert str(exchange.server_address) == SERVER_V6

    def test_stopped_server_refuses(self):
        testbed = LocalTestbed(seed=84)
        testbed.web.stop()
        from repro.transport.errors import ConnectRefused

        attempt = testbed.client.tcp.connect(SERVER_V4, 80)
        with pytest.raises(ConnectRefused):
            testbed.sim.run_until(attempt.established)


class TestTopologyHelpers:
    def test_add_domain_registers_records(self):
        testbed = LocalTestbed(seed=85)
        hostname = testbed.add_domain("svc", ["192.0.2.40",
                                              "2001:db8:1::40"])
        assert hostname == "svc.he-test.example"
        from repro.dns import RdataType

        assert testbed.zone.rrset("svc", RdataType.A) is not None
        assert testbed.zone.rrset("svc", RdataType.AAAA) is not None

    def test_attach_server_address_makes_it_answer(self):
        testbed = LocalTestbed(seed=86)
        testbed.attach_server_address("192.0.2.41")
        testbed.server.tcp.listen(8080)

        def client_proc():
            attempt = testbed.client.tcp.connect("192.0.2.41", 8080)
            connection = yield attempt.established
            return connection

        connection = testbed.sim.run_until(
            testbed.sim.process(client_proc()))
        assert str(connection.remote_addr) == "192.0.2.41"

    def test_unique_hostname_stays_in_zone(self):
        testbed = LocalTestbed(seed=87)
        assert testbed.unique_hostname("x1").endswith(".he-test.example")

    def test_clear_shaping_idempotent(self):
        testbed = LocalTestbed(seed=88)
        testbed.delay_ipv6_tcp(0.1)
        testbed.clear_shaping()
        testbed.clear_shaping()
        assert testbed.server_iface.egress.rules == []

    def test_dns_delay_roundtrip(self):
        from repro.dns import RdataType

        testbed = LocalTestbed(seed=89)
        testbed.set_dns_delay(RdataType.AAAA, 0.5)
        assert testbed.auth.static_delays[RdataType.AAAA] == 0.5
        testbed.clear_dns_delays()
        assert testbed.auth.static_delays == {}
