"""Single-pass capture observation vs the legacy multi-scan inference.

``CaptureObservation`` walks a capture once and decodes each DNS
payload at most once.  These tests check it against straight-line
reference implementations of the legacy helpers (the pre-refactor
multi-scan code, preserved here as the oracle) on captures from three
test-case kinds, and assert the single-decode guarantee via a decode
counter.
"""

from typing import List, Optional, Tuple

import pytest

from repro.clients import Client, get_profile
from repro.core.sortlist import HistoryStore
from repro.dns.message import DNSMessage
from repro.dns.rdata import RdataType
from repro.simnet.addr import Family
from repro.simnet.capture import Direction, PacketCapture
from repro.simnet.packet import Protocol
from repro.testbed import (CaptureObservation, TestCaseConfig, TestCaseKind,
                           SweepSpec, address_selection_case,
                           modules_for, rd_case)
from repro.testbed.modules import AddressSelectionModule, CaptureModule
from repro.testbed.topology import LocalTestbed


# --------------------------------------------------------------------------
# Reference implementations: the legacy per-function, multi-scan logic.
# --------------------------------------------------------------------------


def ref_established_family(capture: PacketCapture) -> Optional[Family]:
    for frame in capture:
        packet = frame.packet
        if frame.direction is Direction.IN and packet.is_syn_ack:
            return packet.family
        if (frame.direction is Direction.IN
                and packet.protocol is Protocol.QUIC
                and packet.quic_type is not None
                and packet.quic_type.value == "handshake"):
            return packet.family
    return None


def ref_infer_cad(capture: PacketCapture) -> Optional[float]:
    first_v6 = capture.first_connection_attempt(Family.V6)
    first_v4 = capture.first_connection_attempt(Family.V4)
    if first_v6 is None or first_v4 is None:
        return None
    return first_v4.timestamp - first_v6.timestamp


def ref_attempt_sequence(capture: PacketCapture
                         ) -> List[Tuple[float, Family]]:
    seen = set()
    sequence: List[Tuple[float, Family]] = []
    for frame in capture.connection_attempts():
        packet = frame.packet
        key = (packet.dst, packet.dport, packet.sport)
        if key in seen:
            continue
        seen.add(key)
        sequence.append((frame.timestamp, packet.family))
    return sequence


def ref_attempts_per_family(capture: PacketCapture) -> dict:
    counts = {Family.V4: 0, Family.V6: 0}
    seen = set()
    for frame in capture.connection_attempts():
        packet = frame.packet
        key = (packet.dst, packet.dport)
        if key in seen:
            continue
        seen.add(key)
        counts[packet.family] += 1
    return counts


def ref_dns_pairs(capture: PacketCapture
                  ) -> List[Tuple[RdataType, float, Optional[float]]]:
    queries: dict = {}
    order: List[Tuple[int, RdataType, float]] = []
    responses: dict = {}
    for frame in capture:
        packet = frame.packet
        if packet.protocol is not Protocol.UDP:
            continue
        try:
            message = DNSMessage.decode(packet.payload)
        except Exception:
            continue
        if not message.questions:
            continue
        rtype = message.question.rtype
        if not message.qr and frame.direction is Direction.OUT:
            key = (message.id, rtype)
            if key not in queries:
                queries[key] = frame.timestamp
                order.append((message.id, rtype, frame.timestamp))
        elif message.qr and frame.direction is Direction.IN:
            responses.setdefault((message.id, rtype), frame.timestamp)
    return [(rtype, sent_at, responses.get((message_id, rtype)))
            for message_id, rtype, sent_at in order]


def ref_aaaa_before_a(capture: PacketCapture) -> Optional[bool]:
    order = [rtype for rtype, _, _ in ref_dns_pairs(capture)]
    if RdataType.AAAA not in order or RdataType.A not in order:
        return None
    return order.index(RdataType.AAAA) < order.index(RdataType.A)


def ref_resolution_delay(capture: PacketCapture) -> Optional[float]:
    a_response = next((response_at
                       for rtype, _, response_at in ref_dns_pairs(capture)
                       if rtype is RdataType.A and response_at is not None),
                      None)
    if a_response is None:
        return None
    first_v4 = capture.first_connection_attempt(Family.V4)
    if first_v4 is None or first_v4.timestamp < a_response:
        return None
    return first_v4.timestamp - a_response


def ref_time_to_first_attempt(capture: PacketCapture) -> Optional[float]:
    pairs = ref_dns_pairs(capture)
    if not pairs:
        return None
    first_query = min(sent_at for _, sent_at, _ in pairs)
    attempts = capture.connection_attempts()
    if not attempts:
        return None
    return attempts[0].timestamp - first_query


# --------------------------------------------------------------------------
# Capture harvesting: one isolated run per (case, client), like run_single.
# --------------------------------------------------------------------------


def run_and_capture(case: TestCaseConfig, client_name: str,
                    version: str, value_ms: int,
                    seed: int = 31) -> PacketCapture:
    profile = get_profile(client_name, version)
    testbed = LocalTestbed(seed=seed)
    modules = modules_for(case)
    for module in modules:
        module.on_case_start(testbed, case)
    for module in modules:
        module.on_run_start(testbed, case, value_ms, "v0r0")
    hostname = None
    capture = None
    for module in modules:
        if isinstance(module, AddressSelectionModule):
            hostname = module.last_hostname
        if isinstance(module, CaptureModule):
            capture = module.capture
    if hostname is None:
        hostname = testbed.unique_hostname(f"{case.kind.value}-v0r0")
    client = Client(testbed.client, profile,
                    testbed.resolver_addresses[:1], history=HistoryStore())
    process = client.connect(hostname)
    process.defused = True
    testbed.sim.run(until=testbed.sim.now + case.run_timeout)
    for module in modules:
        module.on_run_end(testbed, case, value_ms)
    assert capture is not None and len(capture) > 0
    return capture


CASES = [
    ("cad-below", TestCaseConfig(
        name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
        sweep=SweepSpec.fixed(0)), "Chrome", "130.0", 0),
    ("cad-above", TestCaseConfig(
        name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
        sweep=SweepSpec.fixed(400)), "Chrome", "130.0", 400),
    ("rd", rd_case(), "Safari", "17.6", 1500),
    ("rd-chrome", rd_case(), "Chrome", "130.0", 1000),
    ("addr-sel", address_selection_case(5), "Safari", "17.6", 0),
    ("addr-sel-wget", address_selection_case(3), "wget", "1.21.3", 0),
]


@pytest.fixture(params=CASES, ids=[c[0] for c in CASES])
def harvested(request):
    _, case, name, version, value_ms = request.param
    return run_and_capture(case, name, version, value_ms)


class TestObservationMatchesLegacy:
    def test_all_fields_match_reference(self, harvested):
        observation = CaptureObservation(harvested)
        assert observation.established_family == \
            ref_established_family(harvested)
        assert observation.cad == ref_infer_cad(harvested)
        assert observation.attempt_sequence == \
            ref_attempt_sequence(harvested)
        assert observation.attempts_per_family == \
            ref_attempts_per_family(harvested)
        assert [(o.rtype, o.query_at, o.response_at)
                for o in observation.dns_observations] == \
            ref_dns_pairs(harvested)
        assert observation.aaaa_first == ref_aaaa_before_a(harvested)
        assert observation.resolution_delay == \
            ref_resolution_delay(harvested)
        assert observation.time_to_first_attempt == \
            ref_time_to_first_attempt(harvested)


class TestSingleDecode:
    def test_each_dns_payload_decoded_exactly_once(self, harvested,
                                                   monkeypatch):
        from repro.testbed import clear_dns_decode_intern

        udp_frames = sum(1 for frame in harvested
                         if frame.packet.protocol is Protocol.UDP)
        unique_payloads = len({frame.packet.payload for frame in harvested
                               if frame.packet.protocol is Protocol.UDP})
        assert udp_frames > 0
        calls = {"n": 0}
        original = DNSMessage.decode

        def counting_decode(payload):
            calls["n"] += 1
            return original(payload)

        monkeypatch.setattr(DNSMessage, "decode",
                            staticmethod(counting_decode))
        clear_dns_decode_intern()
        observation = CaptureObservation(harvested)
        # Each *distinct* payload decodes once; duplicates intern.
        assert calls["n"] == unique_payloads
        assert observation.dns_payloads_decoded == unique_payloads
        assert (observation.dns_payloads_decoded
                + observation.dns_payloads_interned) == udp_frames
        # Reading every derived field must not trigger re-decodes.
        _ = (observation.cad, observation.aaaa_first,
             observation.resolution_delay,
             observation.time_to_first_attempt, observation.query_order,
             observation.established_family, observation.attempt_sequence,
             observation.attempts_per_family)
        assert calls["n"] == unique_payloads
        # A second observation of the same capture is fully interned.
        second = CaptureObservation(harvested)
        assert calls["n"] == unique_payloads
        assert second.dns_payloads_decoded == 0
        assert second.dns_payloads_interned == udp_frames
        assert [(o.rtype, o.query_at, o.response_at)
                for o in second.dns_observations] == \
            [(o.rtype, o.query_at, o.response_at)
             for o in observation.dns_observations]

    def test_decode_dns_false_skips_all_decoding(self, harvested,
                                                 monkeypatch):
        calls = {"n": 0}
        original = DNSMessage.decode

        def counting_decode(payload):
            calls["n"] += 1
            return original(payload)

        monkeypatch.setattr(DNSMessage, "decode",
                            staticmethod(counting_decode))
        observation = CaptureObservation(harvested, decode_dns=False)
        assert calls["n"] == 0
        assert observation.dns_payloads_decoded == 0
        assert observation.dns_observations == []
        # Connection-level fields still match the full observation.
        full = CaptureObservation(harvested)
        assert observation.established_family == full.established_family
        assert observation.cad == full.cad
        assert observation.attempt_sequence == full.attempt_sequence
        assert observation.attempts_per_family == full.attempts_per_family

    def test_decode_counter_drops_across_repetitions(self):
        """Repetition-heavy campaigns intern DNS payloads: repetitions
        of the same (case, value) emit byte-identical queries and
        answers (value-scoped hostnames, per-stub deterministic query
        ids), so only the first repetition's observation pays any
        decode cost — every later repetition is fully interned."""
        from repro.seeding import stable_run_seed
        from repro.testbed import clear_dns_decode_intern

        case = TestCaseConfig(
            name="rep-heavy", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
            sweep=SweepSpec.fixed(100), repetitions=5)
        captures = [
            run_and_capture(case, "Chrome", "130.0", 100,
                            seed=stable_run_seed(17, case.name,
                                                 "Chrome 130.0", 100,
                                                 repetition))
            for repetition in range(case.repetitions)]
        # The runner derives the hostname from (kind, value) only, so
        # all repetitions must have produced identical payload *sets*.
        payload_sets = [{frame.packet.payload for frame in capture
                         if frame.packet.protocol is Protocol.UDP}
                        for capture in captures]
        assert all(payloads == payload_sets[0]
                   for payloads in payload_sets[1:])

        clear_dns_decode_intern()
        observations = [CaptureObservation(capture)
                        for capture in captures]
        first, rest = observations[0], observations[1:]
        assert first.dns_payloads_decoded == len(payload_sets[0])
        # Repetitions 2..N decode nothing at all.
        assert all(obs.dns_payloads_decoded == 0 for obs in rest)
        assert all(obs.dns_payloads_interned > 0 for obs in rest)
        # And the interned observations still read identically.
        for obs in rest:
            assert obs.query_order == first.query_order
            assert obs.aaaa_first == first.aaaa_first

    def test_legacy_wrappers_still_work(self, harvested):
        from repro.testbed import (aaaa_before_a, attempt_sequence,
                                   established_family, infer_cad)

        observation = CaptureObservation(harvested)
        assert infer_cad(harvested) == observation.cad
        assert established_family(harvested) == \
            observation.established_family
        assert aaaa_before_a(harvested) == observation.aaaa_first
        assert attempt_sequence(harvested) == observation.attempt_sequence
