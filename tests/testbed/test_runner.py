"""Integration tests for the testbed framework (config, modules, runner)."""

import pytest

from repro.clients import get_profile
from repro.simnet import Family
from repro.testbed import (NonMonotonicSeriesError, ResultSet, RunRecord,
                           StreamingResultSet, SweepSpec, TestCaseConfig,
                           TestCaseKind, TestRunner,
                           address_selection_case, cad_case,
                           delayed_a_case, majority_family, rd_case,
                           series_flap_window)


class TestSweepSpec:
    def test_range_inclusive(self):
        sweep = SweepSpec.range(0, 20, 5)
        assert list(sweep) == [0, 5, 10, 15, 20]

    def test_fixed(self):
        assert list(SweepSpec.fixed(100, 200)) == [100, 200]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(())

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec.fixed(-5)

    def test_coarse_fine_combines(self):
        sweep = SweepSpec.coarse_fine(coarse_step_ms=100, fine_step_ms=10,
                                      stop_ms=400, around_ms=250,
                                      fine_window_ms=50)
        values = list(sweep)
        assert 0 in values and 400 in values  # coarse endpoints
        assert 250 in values and 210 in values  # fine region
        assert values == sorted(values)

    def test_case_validation(self):
        with pytest.raises(ValueError):
            TestCaseConfig(name="x", kind=TestCaseKind.RESOLUTION_DELAY,
                           sweep=SweepSpec.fixed(1), repetitions=0)


class TestCadRuns:
    def test_chrome_flips_at_300ms(self):
        runner = TestRunner(
            clients=[get_profile("Chrome", "130.0")],
            cases=[TestCaseConfig(
                name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                sweep=SweepSpec.fixed(100, 250, 290, 310, 400))],
            seed=11)
        results = runner.run()
        series = results.family_by_delay("Chrome 130.0", "cad")
        assert series[100] is Family.V6
        assert series[250] is Family.V6
        assert series[290] is Family.V6
        assert series[310] is Family.V4
        assert series[400] is Family.V4

    def test_cad_estimate_matches_profile(self):
        runner = TestRunner(
            clients=[get_profile("Firefox", "132.0")],
            cases=[TestCaseConfig(
                name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                sweep=SweepSpec.fixed(350, 400))],
            seed=12)
        results = runner.run()
        cad = results.median_cad("Firefox 132.0")
        assert cad == pytest.approx(0.250, abs=0.090)  # outliers allowed

    def test_crossover_helper(self):
        runner = TestRunner(
            clients=[get_profile("curl", "7.88.1")],
            cases=[TestCaseConfig(
                name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                sweep=SweepSpec.fixed(150, 190, 210, 250))],
            seed=13)
        results = runner.run()
        crossover = results.observed_cad_crossover("curl 7.88.1", "cad")
        assert crossover == 190  # curl's CAD is 200 ms

    def test_aaaa_query_order_observed(self):
        runner = TestRunner(
            clients=[get_profile("Chrome", "130.0"),
                     get_profile("Firefox", "132.0")],
            cases=[TestCaseConfig(
                name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                sweep=SweepSpec.fixed(0))],
            seed=14)
        results = runner.run()
        chrome = results.for_client("Chrome 130.0")[0]
        firefox = results.for_client("Firefox 132.0")[0]
        assert chrome.aaaa_first is True
        assert firefox.aaaa_first is False


class TestRdRuns:
    def test_safari_rd_50ms(self):
        runner = TestRunner(
            clients=[get_profile("Safari", "17.6")],
            cases=[TestCaseConfig(
                name="rd", kind=TestCaseKind.RESOLUTION_DELAY,
                sweep=SweepSpec.fixed(1000))],
            seed=15)
        record = runner.run().records[0]
        assert record.rd_s == pytest.approx(0.050, abs=0.005)
        assert record.winning_family is Family.V4

    def test_chrome_inherits_resolver_timeout(self):
        runner = TestRunner(
            clients=[get_profile("Chrome", "130.0")],
            cases=[TestCaseConfig(
                name="rd", kind=TestCaseKind.RESOLUTION_DELAY,
                sweep=SweepSpec.fixed(8000))],  # beyond resolver timeout
            seed=16, resolver_timeout=2.0)
        record = runner.run().records[0]
        # IPv4 connection only starts after the 2 s resolver timeout.
        assert record.time_to_first_attempt_s == pytest.approx(2.0,
                                                               abs=0.050)

    def test_delayed_a_stalls_chrome_ipv6(self):
        runner = TestRunner(
            clients=[get_profile("Chrome", "130.0")],
            cases=[delayed_a_case()],
            seed=17)
        results = runner.run()
        for record in results.records:
            assert record.winning_family is Family.V6
            expected_stall = record.value_ms / 1000.0
            assert record.time_to_first_attempt_s == pytest.approx(
                expected_stall, abs=0.050)

    def test_hev3_flag_removes_delayed_a_stall(self):
        runner = TestRunner(
            clients=[get_profile("Chrome", "130.0")],
            cases=[TestCaseConfig(
                name="delayed-a", kind=TestCaseKind.DELAYED_A,
                sweep=SweepSpec.fixed(2000))],
            seed=18, hev3_flag=True)
        record = runner.run().records[0]
        assert record.winning_family is Family.V6
        assert record.time_to_first_attempt_s < 0.100


class TestAddressSelectionRuns:
    def test_hev1_clients_try_one_address_per_family(self):
        runner = TestRunner(
            clients=[get_profile("Chrome", "130.0")],
            cases=[address_selection_case()],
            seed=19)
        record = runner.run().records[0]
        assert record.attempts_v6 == 1
        assert record.attempts_v4 == 1

    def test_safari_tries_all_addresses(self):
        runner = TestRunner(
            clients=[get_profile("Safari", "17.6")],
            cases=[address_selection_case()],
            seed=20)
        record = runner.run().records[0]
        assert record.attempts_v6 == 10
        assert record.attempts_v4 == 10
        # Safari's interleave pattern: v6 v6 v4 v6*8 v4*9 (App. D).
        families = [family for _, family in record.attempts]
        assert families[:3] == [Family.V6, Family.V6, Family.V4]
        assert families[3:11] == [Family.V6] * 8
        assert families[11:] == [Family.V4] * 9

    def test_wget_stays_on_first_ipv6(self):
        runner = TestRunner(
            clients=[get_profile("wget", "1.21.3")],
            cases=[address_selection_case()],
            seed=21)
        record = runner.run().records[0]
        assert record.attempts_v6 == 1
        assert record.attempts_v4 == 0


def _cad_record(value_ms: int, repetition: int,
                family: Family, client: str = "c 1.0",
                cad_s=None) -> RunRecord:
    return RunRecord(case="cad",
                     kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                     client=client, value_ms=value_ms,
                     repetition=repetition, completed=True,
                     winning_family=family, cad_s=cad_s)


class TestFamilyByDelayAggregation:
    """Repetitions aggregate by majority vote, not last-write-wins."""

    def test_majority_wins(self):
        results = ResultSet()
        for repetition, family in enumerate(
                [Family.V6, Family.V4, Family.V6]):
            results.add(_cad_record(100, repetition, family))
        assert results.family_by_delay("c 1.0", "cad") == {100: Family.V6}

    def test_independent_of_repetition_order(self):
        """The regression: the last repetition used to overwrite all
        earlier ones, so the series depended on record order."""
        records = [_cad_record(100, 0, Family.V6),
                   _cad_record(100, 1, Family.V6),
                   _cad_record(100, 2, Family.V4)]
        forward, backward = ResultSet(), ResultSet()
        for record in records:
            forward.add(record)
        for record in reversed(records):
            backward.add(record)
        assert forward.family_by_delay("c 1.0", "cad") == {100: Family.V6}
        assert backward.family_by_delay("c 1.0", "cad") == \
            forward.family_by_delay("c 1.0", "cad")

    def test_tie_breaks_toward_ipv4(self):
        results = ResultSet()
        results.add(_cad_record(100, 0, Family.V6))
        results.add(_cad_record(100, 1, Family.V4))
        assert results.family_by_delay("c 1.0", "cad") == {100: Family.V4}
        assert majority_family({Family.V6: 2, Family.V4: 2}) is Family.V4

    def test_none_winners_ignored(self):
        results = ResultSet()
        results.add(_cad_record(100, 0, None))
        results.add(_cad_record(100, 1, Family.V6))
        assert results.family_by_delay("c 1.0", "cad") == {100: Family.V6}


class TestCrossoverMonotonicity:
    """Non-monotonic series raise instead of masking flapping."""

    def test_monotonic_series_unchanged(self):
        results = ResultSet()
        results.add(_cad_record(100, 0, Family.V6))
        results.add(_cad_record(200, 0, Family.V4))
        assert results.is_monotonic("c 1.0", "cad")
        assert results.observed_cad_crossover("c 1.0", "cad") == 100

    def test_all_ipv4_has_no_crossover(self):
        results = ResultSet()
        results.add(_cad_record(100, 0, Family.V4))
        assert results.observed_cad_crossover("c 1.0", "cad") is None

    def test_flapping_series_raises(self):
        """The regression: IPv4 at 100 ms but IPv6 again at 200 ms used
        to silently report a 200 ms crossover."""
        results = ResultSet()
        results.add(_cad_record(100, 0, Family.V4))
        results.add(_cad_record(200, 0, Family.V6))
        results.add(_cad_record(300, 0, Family.V4))
        assert not results.is_monotonic("c 1.0", "cad")
        with pytest.raises(NonMonotonicSeriesError) as excinfo:
            results.observed_cad_crossover("c 1.0", "cad")
        assert excinfo.value.flap_window == (100, 200)
        assert "100 ms" in str(excinfo.value)
        assert excinfo.value.client == "c 1.0"

    def test_flap_window_helper(self):
        assert series_flap_window({100: Family.V6, 200: Family.V4}) is None
        assert series_flap_window({100: Family.V4,
                                   200: Family.V6}) == (100, 200)


class TestStreamingResultSet:
    """Streaming aggregation matches the materialized ResultSet."""

    def runner(self) -> TestRunner:
        return TestRunner(
            clients=[get_profile("Chrome", "130.0"),
                     get_profile("curl", "7.88.1")],
            cases=[TestCaseConfig(
                name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                sweep=SweepSpec.fixed(150, 250, 350), repetitions=2)],
            seed=23)

    def test_matches_materialized_aggregations(self):
        runner = self.runner()
        materialized = runner.run()
        streamed = StreamingResultSet.consume(runner.stream())
        assert len(streamed) == len(materialized)
        for client in ("Chrome 130.0", "curl 7.88.1"):
            assert streamed.median_cad(client) == \
                materialized.median_cad(client)
            assert streamed.family_by_delay(client, "cad") == \
                materialized.family_by_delay(client, "cad")
            assert streamed.observed_cad_crossover(client, "cad") == \
                materialized.observed_cad_crossover(client, "cad")

    def test_stream_order_matches_run(self):
        runner = self.runner()
        streamed = list(runner.stream())
        assert streamed == runner.run().records

    def test_outcomes_include_unestablished_values(self):
        aggregate = StreamingResultSet()
        aggregate.add(_cad_record(100, 0, Family.V6))
        aggregate.add(_cad_record(200, 0, None))
        assert aggregate.outcomes("c 1.0", "cad") == \
            [(100, Family.V6), (200, None)]

    def test_completion_and_error_counters(self):
        aggregate = StreamingResultSet()
        aggregate.add(_cad_record(100, 0, Family.V6))
        failed = _cad_record(200, 0, None)
        failed.completed = False
        failed.error = "boom"
        aggregate.add(failed)
        assert aggregate.total == 2
        assert aggregate.completed == 1
        assert aggregate.errors == 1


class TestResultSet:
    def test_filters(self):
        results = ResultSet()
        runner = TestRunner(
            clients=[get_profile("curl", "7.88.1")],
            cases=[TestCaseConfig(
                name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                sweep=SweepSpec.fixed(0, 300))],
            seed=22)
        results = runner.run()
        assert len(results) == 2
        assert len(results.for_client("curl 7.88.1")) == 2
        assert len(results.for_case("cad")) == 2
        assert len(results.for_client("nobody")) == 0
