"""Batch lookup (get_many) and the per-shard sidecar index."""

import json

from repro.clients import get_profile
from repro.testbed import CampaignStore, TestRunner
from repro.testbed.config import SweepSpec, TestCaseConfig, TestCaseKind
from repro.testbed.store import decode_record


def small_runner(store=None, seed=5):
    case = TestCaseConfig(name="cad",
                          kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                          sweep=SweepSpec.fixed(0, 150, 400),
                          repetitions=2)
    return TestRunner([get_profile("curl", "7.88.1")], [case],
                      seed=seed, store=store)


def populate(tmp_path):
    """Cold-run a small campaign; returns its keys in order."""
    runner = small_runner(store=CampaignStore(tmp_path))
    runner.run()
    return list(runner.store_keys())


def index_files(tmp_path):
    return sorted((tmp_path / ".index").glob("*.json"))


class TestGetMany:
    def test_matches_per_key_lookup(self, tmp_path):
        keys = populate(tmp_path)
        indexed = CampaignStore(tmp_path)
        perkey = CampaignStore(tmp_path, use_index=False)
        got_indexed = indexed.get_many(keys, decode_record)
        got_perkey = perkey.get_many(keys, decode_record)
        assert got_indexed == got_perkey
        assert set(got_indexed) == set(keys)
        assert indexed.stats.hits == len(keys)
        assert indexed.stats.misses == 0
        assert perkey.stats.hits == len(keys)

    def test_absent_keys_count_as_misses(self, tmp_path):
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        ghost = CampaignStore.key("never-stored")
        got = store.get_many(keys + [ghost], decode_record)
        assert ghost not in got
        assert store.stats.hits == len(keys)
        assert store.stats.misses == 1

    def test_empty_store_is_all_misses(self, tmp_path):
        store = CampaignStore(tmp_path / "empty")
        runner = small_runner()
        keys = list(runner.store_keys())
        assert store.get_many(keys, decode_record) == {}
        assert store.stats.misses == len(keys)
        assert not index_files(tmp_path / "empty")


class TestSidecarIndex:
    def test_missing_index_is_rebuilt(self, tmp_path):
        keys = populate(tmp_path)
        assert not index_files(tmp_path)  # cold run built no index
        CampaignStore(tmp_path).get_many(keys, decode_record)
        built = index_files(tmp_path)
        assert built  # batch lookup persisted the sidecars
        # A later handle serves every hit from the fresh sidecars.
        warm = CampaignStore(tmp_path)
        assert set(warm.get_many(keys, decode_record)) == set(keys)
        assert warm.stats.hits == len(keys)
        assert warm.stats.misses == 0

    def test_stale_index_is_ignored(self, tmp_path):
        """An index whose shard changed since it was built (generation
        counter mismatch) is ignored: lookups read the entry files."""
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        truth = store.get_many(keys, decode_record)  # builds sidecars
        victim_key = keys[0]
        shard = victim_key[:2]
        index_path = tmp_path / ".index" / f"{shard}.json"
        index = json.loads(index_path.read_text(encoding="utf-8"))
        # Tamper the indexed payload *and* change the shard (an entry
        # write through put() bumps the generation counter) — the
        # stale sidecar must not be believed.
        index["entries"][victim_key]["value_ms"] = 99999
        index_path.write_text(json.dumps(index), encoding="utf-8")
        newcomer = shard + "0" * 62
        CampaignStore(tmp_path).put(newcomer, {"unrelated": True})
        reread = CampaignStore(tmp_path).get_many(keys, decode_record)
        assert reread[victim_key] == truth[victim_key]
        assert reread[victim_key].value_ms != 99999

    def test_generation_survives_interleaved_writes(self, tmp_path):
        """The ROADMAP perf item: a handle that writes through the
        store keeps its index generation-consistent, so hot mixed
        read/write campaigns never rebuild the sidecar per batch."""
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        truth = store.get_many(keys, decode_record)  # one build pass
        builds = store.index_rebuilds
        assert builds >= 1
        shard = keys[0][:2]
        extra = []
        for nibble in "0123456789abcdef":
            newcomer = shard + nibble * 62
            store.put(newcomer, dict(
                json.loads(store._path(keys[0])
                           .read_text(encoding="utf-8"))["payload"]))
            extra.append(newcomer)
            got = store.get_many(keys + extra, decode_record)
            assert set(got) == set(keys + extra)
        # Every interleaved batch was served without a single rebuild.
        assert store.index_rebuilds == builds
        assert store.get_many(keys, decode_record) == truth
        # A later handle inherits the flushed, generation-stamped
        # sidecar: warm again, still no rebuild.
        fresh = CampaignStore(tmp_path)
        assert set(fresh.get_many(keys + extra, decode_record)) \
            == set(keys + extra)
        assert fresh.index_rebuilds == 0
        assert fresh.stats.misses == 0

    def test_out_of_band_deletion_invalidates_the_index(self, tmp_path):
        """An entry removed behind the store's back (manual pruning,
        partial sync) never bumps the generation — the directory-mtime
        cross-check must catch it, keeping get_many and get agreeing."""
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        store.get_many(keys, decode_record)  # builds sidecars
        victim = store._path(keys[0])
        victim.unlink()
        fresh = CampaignStore(tmp_path)
        got = fresh.get_many(keys, decode_record)
        assert keys[0] not in got
        assert fresh.stats.misses == 1
        assert fresh.get(keys[0], decode_record) is None

    def test_out_of_band_addition_is_served(self, tmp_path):
        """An entry file dropped in without put() still resolves —
        via index rebuild or per-key fallback, never a false miss."""
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        truth = store.get_many(keys, decode_record)  # builds sidecars
        source = store._path(keys[0])
        newcomer = keys[0][:2] + "e" * 62
        data = json.loads(source.read_text(encoding="utf-8"))
        data["key"] = newcomer
        (source.parent / f"{newcomer}.json").write_text(
            json.dumps(data), encoding="utf-8")
        fresh = CampaignStore(tmp_path)
        got = fresh.get_many(keys + [newcomer], decode_record)
        assert got[newcomer] == truth[keys[0]]
        assert fresh.stats.misses == 0

    def test_gc_bumps_generation_of_swept_shards(self, tmp_path):
        """An index built before a gc sweep — held by another handle —
        must not serve removed entries afterwards."""
        keys = populate(tmp_path)
        holder = CampaignStore(tmp_path)
        holder.get_many(keys, decode_record)  # builds + caches indexes
        CampaignStore(tmp_path).gc(keys[1:])  # evict exactly one entry
        got = holder.get_many(keys, decode_record)
        assert keys[0] not in got
        assert set(got) == set(keys[1:])

    def test_corrupt_index_falls_back_safely(self, tmp_path):
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        truth = store.get_many(keys, decode_record)
        for index_path in index_files(tmp_path):
            index_path.write_text("{ not json", encoding="utf-8")
        fresh = CampaignStore(tmp_path)
        assert fresh.get_many(keys, decode_record) == truth
        assert fresh.stats.hits == len(keys)
        assert fresh.stats.misses == 0

    def test_invalid_entry_excluded_from_index(self, tmp_path):
        """A corrupt entry file never reaches the sidecar: its key
        keeps falling back to a per-key read that counts truthfully."""
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        victim = store._path(keys[0])
        victim.write_text("{ not json", encoding="utf-8")
        fresh = CampaignStore(tmp_path)
        got = fresh.get_many(keys, decode_record)
        assert keys[0] not in got
        assert fresh.stats.invalid == 1
        assert fresh.stats.misses == 1
        assert fresh.stats.hits == len(keys) - 1

    def test_all_miss_lookup_builds_no_index(self, tmp_path):
        """A campaign whose keys are all new must not pay for (or
        duplicate on disk) an index of unrelated existing entries."""
        populate(tmp_path)
        other = small_runner(seed=99)  # disjoint key universe
        other_keys = list(other.store_keys())
        store = CampaignStore(tmp_path)
        assert store.get_many(other_keys, decode_record) == {}
        assert store.stats.misses == len(other_keys)
        assert not index_files(tmp_path)

    def test_gc_sweeps_crashed_index_writer_droppings(self, tmp_path):
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        store.get_many(keys, decode_record)  # builds sidecars
        orphan = tmp_path / ".index" / ".tmp-dead.json"
        orphan.write_text("{", encoding="utf-8")
        stats = store.gc(keys)
        assert stats.removed_tmp == 1
        assert not orphan.exists()

    def test_index_not_listed_as_entries(self, tmp_path):
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        store.get_many(keys, decode_record)  # builds sidecars
        assert {key for key, _ in store.entries()} == set(keys)

    def test_gc_keeps_fresh_sidecars_when_nothing_removed(self,
                                                          tmp_path):
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        store.get_many(keys, decode_record)  # builds sidecars
        built = index_files(tmp_path)
        assert built
        stats = store.gc(keys)
        assert stats.removed == 0
        assert stats.kept == len(keys)
        assert stats.removed_index == 0
        assert index_files(tmp_path) == built  # still fresh, still warm
        warm = CampaignStore(tmp_path)
        assert set(warm.get_many(keys, decode_record)) == set(keys)
        assert warm.stats.misses == 0

    def test_gc_drops_sidecars_of_swept_shards(self, tmp_path):
        keys = populate(tmp_path)
        store = CampaignStore(tmp_path)
        store.get_many(keys, decode_record)  # builds sidecars
        stats = store.gc(keys[1:])  # evict exactly one entry
        assert stats.removed == 1
        assert stats.removed_index >= 1
        swept_shard = keys[0][:2]
        assert not (tmp_path / ".index" / f"{swept_shard}.json").exists()
        # Surviving keys still resolve; the evicted one is a miss.
        warm = CampaignStore(tmp_path)
        got = warm.get_many(keys, decode_record)
        assert set(got) == set(keys[1:])
        assert warm.stats.misses == 1


class TestRunnerBatchPath:
    def test_serial_warm_stream_uses_batch_hits(self, tmp_path):
        cold = small_runner(store=CampaignStore(tmp_path)).run()
        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run()
        assert warm.records == cold.records
        assert warm_store.stats.hits == len(cold)
        assert warm_store.stats.misses == 0
        assert index_files(tmp_path)  # the warm stream built sidecars

    def test_parallel_warm_stream_identical(self, tmp_path):
        cold = small_runner(store=CampaignStore(tmp_path)).run()
        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run(workers=2)
        assert warm.records == cold.records
        assert warm_store.stats.hits == len(cold)
        assert warm_store.stats.misses == 0

    def test_disabled_index_still_correct(self, tmp_path):
        cold = small_runner(store=CampaignStore(tmp_path)).run()
        warm_store = CampaignStore(tmp_path, use_index=False)
        warm = small_runner(store=warm_store).run()
        assert warm.records == cold.records
        assert warm_store.stats.hits == len(cold)
        assert not index_files(tmp_path)
