"""The incremental campaign store: identity, invalidation, fallback."""

import dataclasses
import json
import pathlib

import pytest

from repro.clients import get_profile
from repro.testbed import (CampaignExecutor, CampaignStore, ResultSet,
                           SweepSpec, TestCaseConfig, TestCaseKind,
                           TestRunner, run_campaign_spec)
from repro.testbed.store import (STORE_FORMAT, canonical, config_digest,
                                 decode_record, encode_record)


def small_runner(seed: int = 5, store: CampaignStore = None,
                 **knobs) -> TestRunner:
    return TestRunner(
        clients=[get_profile("Chrome", "130.0"),
                 get_profile("curl", "7.88.1")],
        cases=[TestCaseConfig(
            name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
            sweep=SweepSpec.fixed(0, 150, 310), repetitions=2)],
        seed=seed, store=store, **knobs)


def entry_paths(store: CampaignStore):
    return sorted(store.root.rglob("*.json"))


class TestCanonicalDigest:
    def test_dataclass_fields_all_contribute(self):
        case = TestCaseConfig(name="x",
                              kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                              sweep=SweepSpec.fixed(0))
        rendered = canonical(case)
        for field in dataclasses.fields(case):
            assert field.name in rendered

    def test_type_tagged_primitives(self):
        # "1" and 1 must not collide, exactly like stable_run_seed.
        assert config_digest(1) != config_digest("1")
        assert config_digest(1.0) != config_digest(1)

    def test_enum_and_container_forms(self):
        assert "TestCaseKind.RESOLUTION_DELAY" in canonical(
            TestCaseKind.RESOLUTION_DELAY)
        assert canonical((1, 2)) == canonical([1, 2])
        assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})


class TestRecordRoundTrip:
    def test_encode_decode_identity(self):
        runner = small_runner()
        record = runner.run_single(runner.cases[0], runner.clients[0], 310)
        assert decode_record(encode_record(record)) == record

    def test_json_round_trip_identity(self):
        """The on-disk representation: through actual JSON text."""
        runner = small_runner()
        for client in runner.clients:
            record = runner.run_single(runner.cases[0], client, 150)
            via_json = decode_record(
                json.loads(json.dumps(encode_record(record))))
            assert via_json == record


class TestWarmCampaigns:
    def test_second_run_all_hits_and_identical(self, tmp_path):
        cold_store = CampaignStore(tmp_path)
        cold = small_runner(store=cold_store).run()
        assert cold_store.stats.hits == 0
        assert cold_store.stats.misses == len(cold)
        assert cold_store.stats.stores == len(cold)

        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run()
        assert warm_store.stats.hits == len(warm)
        assert warm_store.stats.misses == 0
        assert warm.records == cold.records

    def test_cached_equals_uncached(self, tmp_path):
        fresh = small_runner().run()
        store = CampaignStore(tmp_path)
        small_runner(store=store).run()
        cached = small_runner(store=CampaignStore(tmp_path)).run()
        assert cached.records == fresh.records

    def test_parallel_warm_run_identical_and_poolless(self, tmp_path):
        store = CampaignStore(tmp_path)
        cold = small_runner(store=store).run(workers=2)
        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run(workers=2)
        assert warm.records == cold.records
        assert warm_store.stats.hits == len(cold)
        assert warm_store.stats.misses == 0

    def test_serial_cold_parallel_warm_identity(self, tmp_path):
        store = CampaignStore(tmp_path)
        cold = small_runner(store=store).run()
        warm = small_runner(store=CampaignStore(tmp_path)).run(workers=2)
        assert warm.records == cold.records

    def test_spec_cache_dir_stanza(self, tmp_path):
        spec = {
            "seed": 3,
            "cache_dir": str(tmp_path),
            "clients": [{"name": "curl", "version": "7.88.1"}],
            "cases": [{"kind": "cad", "sweep": {"values": [0, 150, 310]}}],
        }
        first = run_campaign_spec(spec)
        second = run_campaign_spec(spec)
        assert first.records == second.records
        assert entry_paths(CampaignStore(tmp_path))  # populated on disk


class TestStoreGC:
    def populate(self, tmp_path):
        store = CampaignStore(tmp_path)
        runner = small_runner(store=store)
        runner.run()
        return store, set(runner.store_keys())

    def test_gc_keeps_live_and_drops_stale(self, tmp_path):
        store, live = self.populate(tmp_path)
        stale_keys = [CampaignStore.key("stale", index)
                      for index in range(3)]
        for key in stale_keys:
            store.put(key, {"orphaned": True})
        stats = store.gc(live)
        assert stats.removed == 3
        assert stats.kept == len(live)
        assert stats.reclaimed_bytes > 0
        remaining = {key for key, _ in store.entries()}
        assert remaining == live

    def test_gc_everything_when_nothing_is_live(self, tmp_path):
        store, live = self.populate(tmp_path)
        stats = store.gc([])
        assert stats.removed == len(live)
        assert stats.kept == 0
        assert list(store.entries()) == []
        # Emptied shard directories are pruned.
        assert not any(p.is_dir() for p in store.root.iterdir())

    def test_gc_sweeps_stale_tmp_files(self, tmp_path):
        store, live = self.populate(tmp_path)
        shard = next(iter(store.root.iterdir()))
        (shard / ".tmp-crashed.json").write_text("torn")
        stats = store.gc(live)
        assert stats.removed_tmp == 1
        assert not list(shard.glob(".tmp-*"))

    def test_gc_survivors_still_hit(self, tmp_path):
        store, live = self.populate(tmp_path)
        store.gc(live)
        warm = small_runner(store=CampaignStore(tmp_path))
        warm.run()
        assert warm.store.stats.misses == 0

    def test_gc_on_missing_root_is_a_noop(self, tmp_path):
        store = CampaignStore(tmp_path / "never-created")
        stats = store.gc(["anything"])
        assert stats.removed == 0 and stats.kept == 0

    def test_gc_dry_run_reports_without_deleting(self, tmp_path):
        store, live = self.populate(tmp_path)
        stale_keys = [CampaignStore.key("stale", index)
                      for index in range(3)]
        for key in stale_keys:
            store.put(key, {"orphaned": True})
        shard = next(s for s in store.root.iterdir()
                     if s.is_dir() and len(s.name) == 2)
        (shard / ".tmp-crashed.json").write_text("torn")
        before = {key for key, _ in store.entries()}
        dry = store.gc(live, dry_run=True)
        # Nothing was touched: every entry (and the tmp dropping)
        # survives, and live keys still resolve from disk.
        assert {key for key, _ in store.entries()} == before
        assert list(shard.glob(".tmp-*"))
        fresh = CampaignStore(tmp_path)
        assert all(fresh.has(key) for key in live)
        # The accounting matches the later real sweep.
        real = store.gc(live)
        assert (dry.kept, dry.kept_bytes) == (real.kept, real.kept_bytes)
        assert dry.removed == real.removed == 3
        assert dry.removed_tmp == real.removed_tmp == 1
        assert dry.reclaimed_bytes > 0
        assert {key for key, _ in store.entries()} == live

    def test_runner_store_keys_match_executed_entries(self, tmp_path):
        store, live = self.populate(tmp_path)
        assert {key for key, _ in store.entries()} == live


class TestCacheInvalidation:
    def cold_keys(self, tmp_path, **overrides):
        """Store keys a campaign with ``overrides`` would use."""
        runner = small_runner(store=CampaignStore(tmp_path), **overrides)
        case, profile = runner.cases[0], runner.clients[0]
        return runner.store_key_for(case, profile, 150, 0)

    def test_case_field_change_misses(self, tmp_path):
        from repro.testbed import ImpairmentSpec
        from repro.simnet.addr import Family

        store = CampaignStore(tmp_path)
        runner = small_runner(store=store)
        base_case, profile = runner.cases[0], runner.clients[0]
        base_key = runner.store_key_for(base_case, profile, 150, 0)
        for changed in (
                dataclasses.replace(base_case, name="other"),
                dataclasses.replace(base_case, run_timeout=10.0),
                dataclasses.replace(base_case, addresses_per_family=2),
                dataclasses.replace(base_case,
                                    kind=TestCaseKind.RESOLUTION_DELAY),
                dataclasses.replace(base_case, impairments=(
                    ImpairmentSpec(family=Family.V6, loss=0.1),)),
        ):
            assert runner.store_key_for(changed, profile, 150, 0) != \
                base_key, changed

    def test_sweep_and_repetitions_are_campaign_shape(self, tmp_path):
        """A run's key depends on its own coordinates, never on which
        other sweep values or how many repetitions share the campaign
        — that reuse is what makes coarse→fine refinement nearly free
        on a warm cache."""
        store = CampaignStore(tmp_path)
        runner = small_runner(store=store)
        base_case, profile = runner.cases[0], runner.clients[0]
        base_key = runner.store_key_for(base_case, profile, 150, 0)
        for same in (
                dataclasses.replace(base_case,
                                    sweep=SweepSpec.fixed(0, 150, 311)),
                dataclasses.replace(base_case,
                                    sweep=SweepSpec.range(100, 200, 5)),
                dataclasses.replace(base_case, repetitions=3),
        ):
            assert runner.store_key_for(same, profile, 150, 0) == \
                base_key, same

    def test_coarse_results_reused_by_fine_sweep(self, tmp_path):
        """The fine pass executes only the values the coarse pass did
        not already cache (store counters prove the overlap hits)."""
        coarse = small_runner(store=CampaignStore(tmp_path))
        coarse.cases = [dataclasses.replace(
            coarse.cases[0], sweep=SweepSpec.fixed(0, 150, 310))]
        coarse.run()
        fine = small_runner(store=CampaignStore(tmp_path))
        fine.cases = [dataclasses.replace(
            fine.cases[0], sweep=SweepSpec.fixed(0, 100, 150, 200, 310))]
        fine_results = fine.run()
        # 2 clients × 2 reps: {0, 150, 310} replay from the coarse
        # pass, only {100, 200} execute fresh.
        assert fine.store.stats.hits == 12
        assert fine.store.stats.misses == 8
        assert sorted({r.value_ms for r in fine_results.records}) == \
            [0, 100, 150, 200, 310]

    def test_profile_field_change_misses(self, tmp_path):
        store = CampaignStore(tmp_path)
        runner = small_runner(store=store)
        case, base_profile = runner.cases[0], runner.clients[0]
        base_key = runner.store_key_for(case, base_profile, 150, 0)
        changed_profiles = [
            dataclasses.replace(base_profile, version="131.0"),
            dataclasses.replace(base_profile, os_hint="Windows"),
            dataclasses.replace(base_profile, outlier_probability=0.5),
            base_profile.with_stack(base_profile.stack.with_racing(
                connection_attempt_delay=0.123)),
            base_profile.with_stack(base_profile.stack.with_sorting(
                sortlist="rfc3484")),
        ]
        for changed in changed_profiles:
            assert runner.store_key_for(case, changed, 150, 0) != \
                base_key, changed

    def test_runner_knob_change_misses(self, tmp_path):
        base = self.cold_keys(tmp_path)
        assert self.cold_keys(tmp_path, resolver_timeout=2.0) != base
        assert self.cold_keys(tmp_path, hev3_flag=True) != base
        assert self.cold_keys(tmp_path, seed=6) != base

    def test_coordinates_distinguish_entries(self, tmp_path):
        runner = small_runner(store=CampaignStore(tmp_path))
        case, profile = runner.cases[0], runner.clients[0]
        keys = {runner.store_key_for(case, profile, value, repetition)
                for value in (0, 150, 310) for repetition in (0, 1)}
        assert len(keys) == 6

    def test_behavior_version_change_misses(self, tmp_path, monkeypatch):
        """A package upgrade may change simulator behavior: the cache
        must miss rather than replay the old model's results."""
        import repro.testbed.store as store_module

        warmed = CampaignStore(tmp_path)
        small_runner(store=warmed).run()
        monkeypatch.setattr(store_module, "BEHAVIOR_VERSION", "999.0.0")
        upgraded = CampaignStore(tmp_path)
        small_runner(store=upgraded).run()
        assert upgraded.stats.hits == 0
        assert upgraded.stats.misses > 0

    def test_changed_config_re_executes(self, tmp_path):
        """End to end: a warm cache is useless for a changed campaign."""
        small_runner(store=CampaignStore(tmp_path)).run()
        changed_store = CampaignStore(tmp_path)
        small_runner(store=changed_store, resolver_timeout=2.0).run()
        assert changed_store.stats.hits == 0
        assert changed_store.stats.misses > 0


class TestCorruptEntries:
    def populate(self, tmp_path) -> ResultSet:
        return small_runner(store=CampaignStore(tmp_path)).run()

    def test_corrupted_entry_falls_back_to_fresh(self, tmp_path):
        cold = self.populate(tmp_path)
        store = CampaignStore(tmp_path)
        victim = entry_paths(store)[0]
        victim.write_text("{ not json", encoding="utf-8")
        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run()
        assert warm.records == cold.records
        assert warm_store.stats.invalid == 1
        assert warm_store.stats.misses == 1
        assert warm_store.stats.hits == len(cold) - 1
        # The corrupted entry was rewritten by the fresh execution.
        repaired = CampaignStore(tmp_path)
        small_runner(store=repaired).run()
        assert repaired.stats.hits == len(cold)

    def test_corrupted_entry_parallel_inline_repair(self, tmp_path):
        """The parallel planner sees the entry file and plans a hit;
        the lazy read discovers the corruption and repairs inline."""
        cold = self.populate(tmp_path)
        victim = entry_paths(CampaignStore(tmp_path))[0]
        victim.write_text("{ not json", encoding="utf-8")
        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run(workers=2)
        assert warm.records == cold.records
        assert warm_store.stats.invalid == 1
        repaired = CampaignStore(tmp_path)
        small_runner(store=repaired).run(workers=2)
        assert repaired.stats.hits == len(cold)

    def test_partial_entry_falls_back_to_fresh(self, tmp_path):
        """An entry without the completeness marker is a miss."""
        cold = self.populate(tmp_path)
        store = CampaignStore(tmp_path)
        victim = entry_paths(store)[0]
        data = json.loads(victim.read_text(encoding="utf-8"))
        del data["complete"]
        victim.write_text(json.dumps(data), encoding="utf-8")
        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run()
        assert warm.records == cold.records
        assert warm_store.stats.invalid == 1

    def test_format_version_mismatch_is_invalid(self, tmp_path):
        cold = self.populate(tmp_path)
        store = CampaignStore(tmp_path)
        victim = entry_paths(store)[0]
        data = json.loads(victim.read_text(encoding="utf-8"))
        data["format"] = STORE_FORMAT + 1
        victim.write_text(json.dumps(data), encoding="utf-8")
        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run()
        assert warm.records == cold.records
        assert warm_store.stats.invalid == 1

    def test_undecodable_payload_is_invalid(self, tmp_path):
        cold = self.populate(tmp_path)
        store = CampaignStore(tmp_path)
        victim = entry_paths(store)[0]
        data = json.loads(victim.read_text(encoding="utf-8"))
        data["payload"]["winning_family"] = "V9"
        victim.write_text(json.dumps(data), encoding="utf-8")
        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run()
        assert warm.records == cold.records
        assert warm_store.stats.invalid == 1


class TestQuarantine:
    """Content-invalid entries are moved aside, not just skipped:
    the evidence survives for postmortems and the bad file can never
    shadow its repaired replacement."""

    def populate(self, tmp_path) -> ResultSet:
        return small_runner(store=CampaignStore(tmp_path)).run()

    def corrupt_one(self, tmp_path) -> str:
        victim = entry_paths(CampaignStore(tmp_path))[0]
        victim.write_text("{ not json", encoding="utf-8")
        return victim.stem

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cold = self.populate(tmp_path)
        key = self.corrupt_one(tmp_path)
        warm_store = CampaignStore(tmp_path)
        warm = small_runner(store=warm_store).run()
        assert warm.records == cold.records
        assert warm_store.stats.quarantined == 1
        assert warm_store.stats.invalid == 1
        moved = tmp_path / ".quarantine" / key[:2] / f"{key}.json"
        assert moved.is_file()
        assert moved.read_text(encoding="utf-8") == "{ not json"
        # The re-execution rewrote the entry in place: pure hits next.
        repaired = CampaignStore(tmp_path)
        small_runner(store=repaired).run()
        assert repaired.stats.hits == len(cold)
        assert repaired.stats.quarantined == 0

    def test_unreadable_entry_is_not_quarantined(self, tmp_path,
                                                 monkeypatch):
        """A transient read error (permissions, NFS hiccup) proves
        nothing about the entry's content — leave it in place."""
        cold = self.populate(tmp_path)
        victim = entry_paths(CampaignStore(tmp_path))[0]
        original = pathlib.Path.read_text

        def flaky(self, *args, **kwargs):
            if self == victim:
                raise OSError("injected transient read error")
            return original(self, *args, **kwargs)

        warm_store = CampaignStore(tmp_path)
        monkeypatch.setattr(pathlib.Path, "read_text", flaky)
        warm = small_runner(store=warm_store).run()
        monkeypatch.undo()
        assert warm.records == cold.records
        assert warm_store.stats.invalid == 1
        assert warm_store.stats.quarantined == 0
        assert victim.is_file()
        assert not (tmp_path / ".quarantine").exists()

    def test_gc_leaves_quarantine_intact(self, tmp_path):
        self.populate(tmp_path)
        key = self.corrupt_one(tmp_path)
        warm_store = CampaignStore(tmp_path)
        small_runner(store=warm_store).run()
        moved = tmp_path / ".quarantine" / key[:2] / f"{key}.json"
        assert moved.is_file()
        gc_store = CampaignStore(tmp_path)
        stats = gc_store.gc(live_keys=[])  # collect *everything* live
        assert stats.removed > 0
        assert moved.is_file()  # ... except the quarantined evidence
        assert list(gc_store.entries()) == []

    def test_quarantined_entries_never_enumerate(self, tmp_path):
        cold = self.populate(tmp_path)
        self.corrupt_one(tmp_path)
        warm_store = CampaignStore(tmp_path)
        small_runner(store=warm_store).run()
        assert len(list(warm_store.entries())) == len(cold)


class _SpeclessRunner:
    """A runner shape with nothing to enumerate (cases define specs)."""

    cases = []
    clients = []
    store = None


class TestExecutorEdges:
    def test_empty_spec_list_chunks(self):
        executor = CampaignExecutor(_SpeclessRunner(), workers=3)
        assert executor.chunks() == []
        result = executor.execute()
        assert len(result) == 0
        assert result.records == []

    def test_workers_exceed_spec_count(self):
        runner = TestRunner(
            clients=[get_profile("curl", "7.88.1")],
            cases=[TestCaseConfig(
                name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                sweep=SweepSpec.fixed(0, 310))],
            seed=4)
        serial = runner.run()
        wide = runner.run(workers=16)
        assert wide.records == serial.records

    def test_workers_exceed_spec_count_with_store(self, tmp_path):
        runner = TestRunner(
            clients=[get_profile("curl", "7.88.1")],
            cases=[TestCaseConfig(
                name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                sweep=SweepSpec.fixed(0))],
            seed=4, store=CampaignStore(tmp_path))
        first = runner.run(workers=8)
        second = runner.run(workers=8)
        assert first.records == second.records
