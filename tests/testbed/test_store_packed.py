"""The packed per-shard store: round-trip, torn tails, gc, sidecars."""

import json

import pytest

from repro.clients import get_profile
from repro.testbed import (CampaignStore, PackedCampaignStore, SweepSpec,
                          TestCaseConfig, TestCaseKind, TestRunner,
                          open_store)
from repro.testbed.store import decode_record, encode_record


def small_runner(seed: int = 5, store=None, **knobs) -> TestRunner:
    return TestRunner(
        clients=[get_profile("Chrome", "130.0"),
                 get_profile("curl", "7.88.1")],
        cases=[TestCaseConfig(
            name="cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
            sweep=SweepSpec.fixed(0, 150, 310), repetitions=2)],
        seed=seed, store=store, **knobs)


class TestPackedRoundTrip:
    def test_records_round_trip_byte_identical_to_per_file(self, tmp_path):
        """The absolute invariant: layout never changes decoded records."""
        packed = PackedCampaignStore(tmp_path / "packed")
        perfile = CampaignStore(tmp_path / "perfile")
        small_runner(store=packed).run()
        small_runner(store=perfile).run()
        packed_keys = dict(packed.entries())
        perfile_keys = dict(perfile.entries())
        assert set(packed_keys) == set(perfile_keys)
        for key in packed_keys:
            assert packed.get_record(key) == perfile.get_record(key)

    def test_many_entries_per_shard_few_files(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        small_runner(store=store).run()
        entries = sum(1 for _ in store.entries())
        packs = list(tmp_path.glob("*.pack"))
        assert entries > 0
        assert packs  # packed layout: *.pack files at the root
        assert not [p for p in tmp_path.iterdir()
                    if p.is_dir() and len(p.name) == 2]

    def test_fresh_handle_warm_reads(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        small_runner(store=store).run()
        keys = [key for key, _ in store.entries()]
        warm = PackedCampaignStore(tmp_path)
        found = warm.get_many_records(keys)
        assert set(found) == set(keys)
        assert warm.stats.hits == len(keys)

    def test_supersede_last_write_wins(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        key = "ab" * 32
        store.put(key, {"v": 1})
        store.put(key, {"v": 2})
        assert store.get(key, lambda p: p["v"]) == 2
        # A fresh handle scanning the pack agrees (last occurrence wins).
        assert PackedCampaignStore(tmp_path).get(
            key, lambda p: p["v"]) == 2
        assert store.dead_bytes("ab") > 0

    def test_open_store_autodetects_layout(self, tmp_path):
        packed_root = tmp_path / "packed"
        PackedCampaignStore(packed_root).put("cd" * 32, {"v": 1})
        assert isinstance(open_store(packed_root), PackedCampaignStore)
        perfile_root = tmp_path / "perfile"
        CampaignStore(perfile_root).put("cd" * 32, {"v": 1})
        opened = open_store(perfile_root)
        assert isinstance(opened, CampaignStore)
        assert not isinstance(opened, PackedCampaignStore)
        assert isinstance(open_store(tmp_path / "empty"),
                          CampaignStore)  # empty root: per-file default
        with pytest.raises(ValueError):
            open_store(tmp_path, layout="bogus")


class TestTornTail:
    def test_torn_tail_is_invisible_and_healed(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        k1, k2, k3 = "ee" * 32, "ee" + "01" * 31, "ee" + "02" * 31
        store.put(k1, {"v": 1})
        pack = tmp_path / "ee.pack"
        # Simulate a crash mid-append: valid line + truncated tail,
        # no trailing newline.
        torn = json.dumps({"key": k2, "v": 2}, sort_keys=True)[:20]
        with pack.open("ab") as fh:
            fh.write(torn.encode("ascii"))
        fresh = PackedCampaignStore(tmp_path)
        assert fresh.get(k1, lambda p: p["v"]) == 1
        assert fresh.get(k2, lambda p: p) is None  # torn line never indexed
        # The next append heals the tail: both old and new survive a rescan.
        fresh.put(k3, {"v": 3})
        rescan = PackedCampaignStore(tmp_path)
        assert rescan.get(k1, lambda p: p["v"]) == 1
        assert rescan.get(k3, lambda p: p["v"]) == 3

    def test_unterminated_final_line_not_indexed(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        key = "ff" * 32
        line = json.dumps({"complete": True, "format": 2, "key": key,
                           "payload": {}}, sort_keys=True)
        (tmp_path / "ff.pack").write_bytes(line.encode("ascii"))
        assert store.get(key, lambda p: p) is None


class TestQuarantine:
    def test_invalid_entry_quarantined_not_served(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        key = "aa" * 32
        # A complete line whose record is invalid (complete: false).
        line = json.dumps({"complete": False, "format": 2, "key": key,
                           "payload": {"v": 1}}, sort_keys=True) + "\n"
        (tmp_path / "aa.pack").write_bytes(line.encode("ascii"))
        assert store.get(key, lambda p: p) is None
        assert store.stats.invalid == 1
        assert store.stats.quarantined == 1
        quarantined = list((tmp_path / ".quarantine").rglob("*.json"))
        assert len(quarantined) == 1
        assert json.loads(quarantined[0].read_text())["key"] == key
        # Quarantined bytes are dead; the slot is gone from the index.
        assert store.dead_bytes("aa") == len(line.encode("ascii"))
        assert not store.has(key)


class TestPackedGC:
    def test_gc_keeps_live_drops_dead(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        small_runner(store=store).run()
        keys = sorted(key for key, _ in store.entries())
        live, dead = keys[: len(keys) // 2], keys[len(keys) // 2:]
        stats = store.gc(live)
        assert stats.removed == len(dead)
        assert stats.kept == len(live)
        fresh = PackedCampaignStore(tmp_path)
        for key in live:
            assert fresh.has(key)
        for key in dead:
            assert not fresh.has(key)

    def test_gc_drops_empty_packs(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        store.put("ab" * 32, {"v": 1})
        store.gc([])
        assert not list(tmp_path.glob("*.pack"))

    def test_gc_dry_run_reports_without_rewriting(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        small_runner(store=store).run()
        keys = sorted(key for key, _ in store.entries())
        live, dead = keys[: len(keys) // 2], keys[len(keys) // 2:]
        pack_bytes = {p.name: p.read_bytes()
                      for p in tmp_path.glob("*.pack")}
        dry = store.gc(live, dry_run=True)
        # No pack was rewritten or unlinked: bytes are untouched and
        # every entry (live and dead) still resolves.
        assert {p.name: p.read_bytes()
                for p in tmp_path.glob("*.pack")} == pack_bytes
        fresh = PackedCampaignStore(tmp_path)
        assert all(fresh.has(key) for key in keys)
        # Accounting matches the later real sweep: a rewrite emits
        # exactly the live slices, so the dry-run estimate covers the
        # pack bytes exactly; sidecars of packs the real sweep
        # *empties* are a few extra real-only bytes.
        real = store.gc(live)
        assert (dry.kept, dry.kept_bytes) == (real.kept, real.kept_bytes)
        assert dry.removed == real.removed == len(dead)
        assert 0 < dry.reclaimed_bytes <= real.reclaimed_bytes
        after = PackedCampaignStore(tmp_path)
        assert all(after.has(key) for key in live)
        assert not any(after.has(key) for key in dead)

    def test_compaction_reclaims_dead_bytes(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        key = "cd" * 32
        for version in range(5):
            store.put(key, {"v": version})
        before = store.pack_size("cd")
        reclaimed = store.compact_shard("cd")
        assert reclaimed > 0
        assert store.pack_size("cd") < before
        assert store.dead_bytes("cd") == 0
        assert store.get(key, lambda p: p["v"]) == 4


class TestPackedSidecars:
    def test_sidecar_skips_rescan(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        small_runner(store=store).run()
        keys = [key for key, _ in store.entries()]
        # Like the per-file store, dirty sidecars flush on the next
        # batch read, not once per put.
        store.get_many_records(keys)
        assert list(tmp_path.glob(".index/*.json"))
        warm = PackedCampaignStore(tmp_path)
        warm.get_many_records(keys)
        assert warm.index_rebuilds == 0

    def test_foreign_write_forces_rescan(self, tmp_path):
        store = PackedCampaignStore(tmp_path)
        key1, key2 = "ab" * 32, "ab" + "11" * 31
        store.put(key1, {"v": 1})
        # A writer that never updates the sidecar (foreign process).
        line = json.dumps({"complete": True, "format": 2, "key": key2,
                           "payload": {"v": 2}}, sort_keys=True) + "\n"
        with (tmp_path / "ab.pack").open("ab") as fh:
            fh.write(line.encode("ascii"))
        fresh = PackedCampaignStore(tmp_path)
        assert fresh.get(key2, lambda p: p["v"]) == 2

    def test_no_index_mode(self, tmp_path):
        store = PackedCampaignStore(tmp_path, use_index=False)
        key = "ef" * 32
        store.put(key, {"v": 9})
        assert not list(tmp_path.glob(".index/*"))
        fresh = PackedCampaignStore(tmp_path, use_index=False)
        assert fresh.get(key, lambda p: p["v"]) == 9

    def test_shard_payloads_both_layouts(self, tmp_path):
        packed = PackedCampaignStore(tmp_path / "p")
        perfile = CampaignStore(tmp_path / "f")
        runner = small_runner()
        record = runner.run_single(runner.cases[0], runner.clients[0], 310)
        payload = encode_record(record)
        key = "ab" * 32
        packed.put(key, payload)
        perfile.put(key, payload)
        assert packed.shard_payloads("ab") == perfile.shard_payloads("ab")
        assert decode_record(
            packed.shard_payloads("ab")[key]) == record
        assert packed.shards() == perfile.shards() == ["ab"]
