"""Configuration validation: bad numbers fail fast, by field name.

A NaN or out-of-range shaping value would otherwise clamp (or
misbehave) silently deep inside netem — every rejection must name the
offending field so a config error is diagnosable from the message
alone.
"""

import math

import pytest

from repro.dns.rdata import RdataType
from repro.testbed import ImpairmentSpec, SweepSpec, TestCaseConfig
from repro.testbed.config import TestCaseKind

NAN = float("nan")
INF = float("inf")


class TestDurationFields:
    @pytest.mark.parametrize("field_name",
                             ["delay_s", "jitter_s", "reorder_gap_s"])
    @pytest.mark.parametrize("value", [NAN, INF, -INF, -0.001])
    def test_rejected_by_name(self, field_name, value):
        with pytest.raises(ValueError) as excinfo:
            ImpairmentSpec(**{field_name: value})
        message = str(excinfo.value)
        assert f"ImpairmentSpec.{field_name}" in message
        assert "non-negative duration in seconds" in message
        assert repr(value) in message

    def test_zero_and_positive_accepted(self):
        ImpairmentSpec(delay_s=0.0, jitter_s=0.0)
        ImpairmentSpec(delay_s=0.4, jitter_s=0.02, reorder_gap_s=0.005)


class TestProbabilityFields:
    @pytest.mark.parametrize(
        "field_name", ["loss", "reorder_probability",
                       "jitter_correlation"])
    @pytest.mark.parametrize("value", [NAN, INF, -0.1, 1.0001])
    def test_rejected_by_name(self, field_name, value):
        with pytest.raises(ValueError) as excinfo:
            ImpairmentSpec(**{field_name: value})
        message = str(excinfo.value)
        assert f"ImpairmentSpec.{field_name}" in message
        assert "probability in [0, 1]" in message

    def test_boundaries_accepted(self):
        ImpairmentSpec(loss=0.0)
        ImpairmentSpec(loss=1.0, reorder_probability=1.0,
                       jitter_correlation=1.0)


class TestRateField:
    @pytest.mark.parametrize("value", [NAN, INF, 0.0, -8000.0])
    def test_rejected_by_name(self, value):
        with pytest.raises(ValueError) as excinfo:
            ImpairmentSpec(rate_bps=value)
        message = str(excinfo.value)
        assert "ImpairmentSpec.rate_bps" in message
        assert "finite positive rate" in message

    def test_none_means_unshaped(self):
        assert ImpairmentSpec(rate_bps=None).rate_bps is None
        assert ImpairmentSpec(rate_bps=8000.0).rate_bps == 8000.0


class TestDnsRtypeExclusivity:
    def test_netem_fields_rejected_with_dns_rtype(self):
        with pytest.raises(ValueError, match="static answer delay"):
            ImpairmentSpec(dns_rtype=RdataType.AAAA, loss=0.5)

    def test_dns_rtype_with_delay_only_is_fine(self):
        spec = ImpairmentSpec(dns_rtype=RdataType.AAAA, delay_s=1.0)
        assert spec.delay_s == 1.0


class TestRunTimeout:
    @pytest.mark.parametrize("value", [NAN, INF, 0.0, -1.0])
    def test_rejected_by_name(self, value):
        with pytest.raises(ValueError) as excinfo:
            TestCaseConfig(name="t", kind=TestCaseKind.IMPAIRMENT,
                           sweep=SweepSpec.fixed(0), run_timeout=value)
        message = str(excinfo.value)
        assert "TestCaseConfig.run_timeout" in message
        assert "finite positive duration" in message

    def test_finite_positive_accepted(self):
        case = TestCaseConfig(name="t", kind=TestCaseKind.IMPAIRMENT,
                              sweep=SweepSpec.fixed(0), run_timeout=60.0)
        assert math.isfinite(case.run_timeout)
