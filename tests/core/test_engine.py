"""End-to-end tests for the Happy Eyeballs engine on the testbed."""

import pytest

from repro.clients import Client, get_profile
from repro.core import (HEEventKind, HEParams, HappyEyeballsError,
                        HistoryStore, InterlaceStrategy, ResolutionPolicy,
                        rfc8305_params)
from repro.core.engine import HappyEyeballsEngine
from repro.dns import RdataType
from repro.dns.stub import StubResolver
from repro.simnet import Family
from repro.testbed.topology import LocalTestbed
from repro.testbed import inference


def make_engine(testbed, params, **kwargs):
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    return HappyEyeballsEngine(testbed.client, stub, params, **kwargs)


class TestEngineBasics:
    def test_connects_over_ipv6_when_healthy(self):
        testbed = LocalTestbed(seed=1)
        engine = make_engine(testbed, rfc8305_params())
        process = engine.connect("www.he-test.example")
        result = testbed.sim.run_until(process)
        assert result.success
        assert result.winning_family is Family.V6

    def test_falls_back_to_ipv4_beyond_cad(self):
        testbed = LocalTestbed(seed=1)
        testbed.delay_ipv6_tcp(0.400)  # > 250 ms CAD
        engine = make_engine(testbed, rfc8305_params())
        process = engine.connect("www.he-test.example")
        result = testbed.sim.run_until(process)
        assert result.winning_family is Family.V4

    def test_stays_on_ipv6_below_cad(self):
        testbed = LocalTestbed(seed=1)
        testbed.delay_ipv6_tcp(0.100)  # < 250 ms CAD
        engine = make_engine(testbed, rfc8305_params())
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        assert result.winning_family is Family.V6

    def test_cad_observed_in_capture(self):
        testbed = LocalTestbed(seed=1)
        testbed.delay_ipv6_tcp(0.500)
        capture = testbed.start_client_capture()
        engine = make_engine(testbed, rfc8305_params())
        testbed.sim.run_until(engine.connect("www.he-test.example"))
        cad = inference.infer_cad(capture)
        assert cad == pytest.approx(0.250, abs=0.002)

    def test_no_addresses_raises(self):
        testbed = LocalTestbed(seed=1)
        engine = make_engine(testbed, rfc8305_params())
        process = engine.connect("bare.nxdomain-zone.example")
        with pytest.raises(HappyEyeballsError):
            testbed.sim.run_until(process)

    def test_outcome_cached_after_win(self):
        testbed = LocalTestbed(seed=1)
        engine = make_engine(testbed, rfc8305_params())
        testbed.sim.run_until(engine.connect("www.he-test.example"))
        cached = engine.cache.lookup("www.he-test.example",
                                     testbed.sim.now)
        assert cached is not None
        assert cached.family is Family.V6

    def test_trace_records_the_figure1_sequence(self):
        testbed = LocalTestbed(seed=1)
        engine = make_engine(testbed, rfc8305_params())
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        kinds = [event.kind for event in result.trace]
        assert kinds[0] is HEEventKind.CONNECT_REQUESTED
        assert HEEventKind.QUERY_SENT in kinds
        assert HEEventKind.ANSWER_RECEIVED in kinds
        assert HEEventKind.ATTEMPT_STARTED in kinds
        assert kinds[-1] is HEEventKind.CONNECTION_WON


class TestResolutionBehaviors:
    def test_hev2_rd_expires_with_delayed_aaaa(self):
        """AAAA delayed 1 s: RFC 8305 client goes IPv4 after RD=50 ms."""
        testbed = LocalTestbed(seed=2)
        testbed.set_dns_delay(RdataType.AAAA, 1.0)
        capture = testbed.start_client_capture()
        engine = make_engine(testbed, rfc8305_params())
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        assert result.winning_family is Family.V4
        assert result.time_to_connect < 0.100  # RD + handshake, not 1 s
        rd = inference.infer_resolution_delay(capture)
        assert rd == pytest.approx(0.050, abs=0.005)

    def test_wait_both_stalls_on_delayed_aaaa(self):
        """The §5.2 behaviour: no own timeout, waits the full AAAA delay."""
        testbed = LocalTestbed(seed=2)
        testbed.set_dns_delay(RdataType.AAAA, 1.0)
        params = rfc8305_params().with_overrides(
            resolution_policy=ResolutionPolicy.WAIT_BOTH)
        engine = make_engine(testbed, params)
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        assert result.time_to_connect > 1.0

    def test_wait_both_stalls_ipv6_on_delayed_a(self):
        """Delayed *A* stalls even the IPv6 connection (the pathology)."""
        testbed = LocalTestbed(seed=2)
        testbed.set_dns_delay(RdataType.A, 0.800)
        params = rfc8305_params().with_overrides(
            resolution_policy=ResolutionPolicy.WAIT_BOTH)
        engine = make_engine(testbed, params)
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        assert result.winning_family is Family.V6
        assert result.time_to_connect > 0.800

    def test_hev2_immune_to_delayed_a(self):
        """RFC 8305 client starts IPv6 immediately when AAAA is first."""
        testbed = LocalTestbed(seed=2)
        testbed.set_dns_delay(RdataType.A, 0.800)
        engine = make_engine(testbed, rfc8305_params())
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        assert result.winning_family is Family.V6
        assert result.time_to_connect < 0.100

    def test_late_aaaa_joins_running_race(self):
        """AAAA arriving after RD still gets attempted if v4 is slow."""
        testbed = LocalTestbed(seed=2)
        testbed.set_dns_delay(RdataType.AAAA, 0.200)  # > RD (50 ms)
        testbed.delay_ipv6_tcp(0.0)  # v6 healthy once known
        # Slow the IPv4 handshake so the race is still open at 200 ms.
        from repro.simnet import NetemFilter, NetemRule, NetemSpec, Protocol
        testbed.server_iface.egress.add_rule(NetemRule(
            spec=NetemSpec(delay=0.500),
            filter=NetemFilter(family=Family.V4, protocol=Protocol.TCP)))
        engine = make_engine(testbed, rfc8305_params())
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        assert result.winning_family is Family.V6
        late = result.trace.of_kind(HEEventKind.LATE_ADDRESSES_ADDED)
        assert len(late) == 1


class TestDynamicCad:
    def test_no_history_uses_maximum_cad(self):
        """Safari's local-testbed behaviour: fresh state -> 2 s CAD."""
        testbed = LocalTestbed(seed=3)
        testbed.delay_ipv6_tcp(0.500)
        params = rfc8305_params().with_overrides(
            dynamic_cad=True, maximum_cad=2.0)
        capture = testbed.start_client_capture()
        engine = make_engine(testbed, params, history=HistoryStore())
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        # 500 ms < 2 s CAD: IPv6 still wins, no IPv4 attempt at all.
        assert result.winning_family is Family.V6
        assert inference.infer_cad(capture) is None

    def test_history_shrinks_cad(self):
        testbed = LocalTestbed(seed=3)
        testbed.delay_ipv6_tcp(0.500)
        history = HistoryStore()
        from repro.simnet import parse_address
        history.record_success(parse_address("2001:db8:1::10"),
                               rtt=0.020, now=0.0)
        params = rfc8305_params().with_overrides(
            dynamic_cad=True, minimum_cad=0.010, maximum_cad=2.0)
        capture = testbed.start_client_capture()
        engine = make_engine(testbed, params, history=history)
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        # CAD = 2 * 20 ms = 40 ms << 500 ms delay: IPv4 wins.
        assert result.winning_family is Family.V4
        assert inference.infer_cad(capture) == pytest.approx(0.040,
                                                             abs=0.005)


class TestClientModels:
    @pytest.mark.parametrize("name,version,expected_cad", [
        ("Chrome", "130.0", 0.300),
        ("Edge", "130.0", 0.300),
        ("Firefox", "132.0", 0.250),
        ("curl", "7.88.1", 0.200),
    ])
    def test_fixed_cad_clients(self, name, version, expected_cad):
        testbed = LocalTestbed(seed=4)
        testbed.delay_ipv6_tcp(expected_cad + 0.150)
        capture = testbed.start_client_capture()
        client = Client(testbed.client, get_profile(name, version),
                        testbed.resolver_addresses[:1])
        result = testbed.sim.run_until(
            client.fetch("www.he-test.example"))
        assert result.used_family is Family.V4
        assert inference.infer_cad(capture) == pytest.approx(
            expected_cad, abs=0.010)

    def test_wget_never_falls_back(self):
        testbed = LocalTestbed(seed=4)
        testbed.delay_ipv6_tcp(0.400)
        capture = testbed.start_client_capture()
        client = Client(testbed.client, get_profile("wget", "1.21.3"),
                        testbed.resolver_addresses[:1])
        result = testbed.sim.run_until(
            client.fetch("www.he-test.example"))
        # Still IPv6, just slow; and no IPv4 attempt was ever made.
        assert result.used_family is Family.V6
        assert capture.first_connection_attempt(Family.V4) is None

    def test_safari_full_hev2(self):
        testbed = LocalTestbed(seed=4)
        testbed.set_dns_delay(RdataType.AAAA, 1.0)
        capture = testbed.start_client_capture()
        client = Client(testbed.client, get_profile("Safari", "17.6"),
                        testbed.resolver_addresses[:1],
                        history=HistoryStore())
        result = testbed.sim.run_until(
            client.fetch("www.he-test.example"))
        assert result.used_family is Family.V4
        rd = inference.infer_resolution_delay(capture)
        assert rd == pytest.approx(0.050, abs=0.005)

    def test_fetch_reports_echoed_source_address(self):
        testbed = LocalTestbed(seed=4)
        client = Client(testbed.client, get_profile("Chrome", "130.0"),
                        testbed.resolver_addresses[:1])
        result = testbed.sim.run_until(
            client.fetch("www.he-test.example"))
        assert str(result.reported_address) == "2001:db8:1::1"

    def test_hev3_flag_fixes_delayed_a_stall(self):
        profile = get_profile("Chrome", "130.0")
        for flag, expect_fast in ((False, False), (True, True)):
            testbed = LocalTestbed(seed=5)
            testbed.set_dns_delay(RdataType.A, 2.0)
            client = Client(testbed.client, profile,
                            testbed.resolver_addresses[:1], hev3_flag=flag)
            result = testbed.sim.run_until(
                client.fetch("www.he-test.example"))
            ttc = result.he.time_to_connect
            if expect_fast:
                assert ttc < 0.100
            else:
                assert ttc > 2.0

    def test_hev3_flag_unavailable_on_old_versions(self):
        with pytest.raises(ValueError):
            get_profile("Chrome", "88.0").with_hev3_flag()
