"""Tests for RFC 6555 §4.1 outcome caching inside the engine."""

import pytest

from repro.core import OutcomeCache, rfc8305_params
from repro.core.engine import HappyEyeballsEngine
from repro.dns.stub import StubResolver
from repro.simnet import Family
from repro.testbed.topology import LocalTestbed


def make_engine(testbed, cache=None):
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    return HappyEyeballsEngine(testbed.client, stub, rfc8305_params(),
                               cache=cache)


class TestOutcomeCacheBias:
    def test_cached_v4_win_biases_next_attempt(self):
        """After IPv4 wins once, the next connection leads with IPv4."""
        testbed = LocalTestbed(seed=71)
        testbed.delay_ipv6_tcp(0.600)  # IPv6 slow: IPv4 wins round one
        engine = make_engine(testbed)
        first = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        assert first.winning_family is Family.V4

        capture = testbed.start_client_capture()
        second = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        assert second.winning_family is Family.V4
        # The *first* attempt of round two is IPv4 — no 250 ms paid.
        first_attempt = capture.connection_attempts()[0]
        assert first_attempt.packet.family is Family.V4
        assert second.time_to_connect < 0.010

    def test_cache_expiry_restores_v6_preference(self):
        testbed = LocalTestbed(seed=72)
        cache = OutcomeCache(ttl=600.0)
        testbed.delay_ipv6_tcp(0.600)
        engine = make_engine(testbed, cache=cache)
        testbed.sim.run_until(engine.connect("www.he-test.example"))

        # Ten minutes later the cache entry has expired; IPv6 (now
        # healthy again) leads once more.
        testbed.clear_shaping()
        testbed.sim.run(until=testbed.sim.now + 601.0)
        capture = testbed.start_client_capture()
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        assert result.winning_family is Family.V6
        assert capture.connection_attempts()[0].packet.family is Family.V6

    def test_cache_records_trace_event(self):
        testbed = LocalTestbed(seed=73)
        engine = make_engine(testbed)
        testbed.sim.run_until(engine.connect("www.he-test.example"))
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        from repro.core.events import HEEventKind

        assert result.trace.first_of(HEEventKind.CACHE_HIT) is not None

    def test_distinct_hostnames_not_conflated(self):
        testbed = LocalTestbed(seed=74)
        engine = make_engine(testbed)
        testbed.sim.run_until(engine.connect("a.he-test.example"))
        assert engine.cache.lookup("b.he-test.example",
                                   testbed.sim.now) is None
