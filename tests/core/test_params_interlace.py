"""Tests for HE parameters, interlacing, sortlist, and the outcome cache."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.core import (HEParams, HEVersion, HistoryStore, InterlaceStrategy,
                        OutcomeCache, apply_interlace,
                        interlace_first_family_burst, interlace_rfc8305,
                        interlace_sequential, order_addresses,
                        rfc6555_params, rfc8305_params, hev3_draft_params)
from repro.simnet import Family, family_of


def v6(i):
    return ipaddress.IPv6Address(f"2001:db8::{i:x}")


def v4(i):
    return ipaddress.IPv4Address(f"192.0.2.{i}")


class TestParams:
    def test_rfc_presets_match_table1(self):
        v1, v2, v3 = rfc6555_params(), rfc8305_params(), hev3_draft_params()
        assert v1.version is HEVersion.V1
        assert v1.resolution_delay is None
        assert v1.connection_attempt_delay == pytest.approx(0.250)
        assert v2.resolution_delay == pytest.approx(0.050)
        assert v2.connection_attempt_delay == pytest.approx(0.250)
        assert (v2.minimum_cad, v2.recommended_cad, v2.maximum_cad) == (
            pytest.approx(0.010), pytest.approx(0.100), pytest.approx(2.0))
        assert v3.race_quic and v3.use_svcb
        assert v3.resolution_delay == pytest.approx(0.050)

    def test_invalid_cad_rejected(self):
        with pytest.raises(ValueError):
            HEParams(connection_attempt_delay=0.0)

    def test_invalid_dynamic_bounds_rejected(self):
        with pytest.raises(ValueError):
            HEParams(minimum_cad=0.5, recommended_cad=0.1)

    def test_invalid_fafc_rejected(self):
        with pytest.raises(ValueError):
            HEParams(first_address_family_count=0)

    def test_clamp_dynamic_cad(self):
        params = HEParams()
        assert params.clamp_dynamic_cad(0.001) == pytest.approx(0.010)
        assert params.clamp_dynamic_cad(5.0) == pytest.approx(2.0)
        assert params.clamp_dynamic_cad(0.3) == pytest.approx(0.3)

    def test_with_overrides(self):
        params = rfc8305_params().with_overrides(
            connection_attempt_delay=0.3)
        assert params.connection_attempt_delay == pytest.approx(0.3)
        assert params.resolution_delay == pytest.approx(0.050)


class TestInterlace:
    def test_rfc8305_fafc1_alternates(self):
        out = interlace_rfc8305([v6(1), v6(2), v4(1), v4(2)], Family.V6, 1)
        families = [family_of(a) for a in out]
        assert families == [Family.V6, Family.V4, Family.V6, Family.V4]

    def test_rfc8305_fafc2_leads_with_two(self):
        out = interlace_rfc8305(
            [v6(1), v6(2), v6(3), v4(1), v4(2)], Family.V6, 2)
        families = [family_of(a) for a in out]
        assert families[:3] == [Family.V6, Family.V6, Family.V4]

    def test_rfc8305_handles_uneven_lists(self):
        out = interlace_rfc8305([v6(1), v4(1), v4(2), v4(3)], Family.V6, 1)
        assert [family_of(a) for a in out] == [
            Family.V6, Family.V4, Family.V4, Family.V4]

    def test_safari_burst_pattern_matches_figure5(self):
        addrs = [v6(i) for i in range(1, 11)] + [v4(i) for i in range(1, 11)]
        out = interlace_first_family_burst(addrs, Family.V6, 2)
        families = [family_of(a) for a in out]
        # v6 x2, v4 x1, v6 x8, v4 x9 — 20 attempts total (App. D).
        expected = ([Family.V6] * 2 + [Family.V4] + [Family.V6] * 8
                    + [Family.V4] * 9)
        assert families == expected

    def test_sequential_no_interlace(self):
        out = interlace_sequential([v4(1), v6(1), v4(2), v6(2)], Family.V6)
        assert [family_of(a) for a in out] == [
            Family.V6, Family.V6, Family.V4, Family.V4]

    def test_apply_dispatches(self):
        addrs = [v6(1), v4(1)]
        assert apply_interlace(addrs, InterlaceStrategy.RFC8305)
        assert apply_interlace(addrs, InterlaceStrategy.FIRST_FAMILY_BURST)
        assert apply_interlace(addrs, InterlaceStrategy.SEQUENTIAL)

    def test_first_count_must_be_positive(self):
        with pytest.raises(ValueError):
            interlace_rfc8305([v6(1)], Family.V6, 0)


_addr_lists = st.tuples(
    st.integers(0, 8), st.integers(0, 8)).map(
        lambda counts: ([v6(i + 1) for i in range(counts[0])]
                        + [v4(i + 1) for i in range(counts[1])]))


class TestInterlaceProperties:
    @given(_addr_lists, st.integers(1, 4),
           st.sampled_from(list(InterlaceStrategy)))
    def test_interlace_preserves_all_addresses(self, addrs, fafc, strategy):
        out = apply_interlace(addrs, strategy, Family.V6, fafc)
        assert sorted(map(str, out)) == sorted(map(str, addrs))

    @given(_addr_lists, st.integers(1, 4))
    def test_rfc8305_prefix_is_preferred_family(self, addrs, fafc):
        out = interlace_rfc8305(addrs, Family.V6, fafc)
        v6_total = sum(1 for a in addrs if family_of(a) is Family.V6)
        prefix = min(fafc, v6_total)
        assert all(family_of(a) is Family.V6 for a in out[:prefix])

    @given(_addr_lists)
    def test_rfc8305_no_starvation(self, addrs):
        """No family waits more than FAFC+1 slots for its first attempt."""
        out = interlace_rfc8305(addrs, Family.V6, 1)
        v4_count = sum(1 for a in addrs if family_of(a) is Family.V4)
        if v4_count and len(out) >= 2:
            first_v4 = next(i for i, a in enumerate(out)
                            if family_of(a) is Family.V4)
            assert first_v4 <= 1

    @given(_addr_lists)
    def test_safari_burst_v4_position(self, addrs):
        out = interlace_first_family_burst(addrs, Family.V6, 2)
        v6_count = sum(1 for a in addrs if family_of(a) is Family.V6)
        v4_count = len(addrs) - v6_count
        if v4_count and v6_count >= 2:
            first_v4 = next(i for i, a in enumerate(out)
                            if family_of(a) is Family.V4)
            assert first_v4 == 2


class TestOrderAddresses:
    def test_preferred_family_first(self):
        out = order_addresses([v4(1), v6(1)], preferred_family=Family.V6)
        assert family_of(out[0]) is Family.V6

    def test_dns_order_is_tiebreaker(self):
        out = order_addresses([v6(3), v6(1), v6(2)])
        assert [str(a) for a in out] == [str(v6(3)), str(v6(1)), str(v6(2))]

    def test_history_promotes_fast_addresses(self):
        history = HistoryStore()
        history.record_success(v6(2), rtt=0.010, now=0.0)
        history.record_success(v6(1), rtt=0.200, now=0.0)
        out = order_addresses([v6(1), v6(2)], history=history, now=1.0)
        assert str(out[0]) == str(v6(2))

    def test_failed_addresses_demoted(self):
        history = HistoryStore()
        history.record_failure(v6(1), now=0.0)
        out = order_addresses([v6(1), v6(2)], history=history, now=1.0)
        assert str(out[0]) == str(v6(2))

    def test_stale_history_ignored(self):
        history = HistoryStore(max_age=10.0)
        history.record_failure(v6(1), now=0.0)
        out = order_addresses([v6(1), v6(2)], history=history, now=100.0)
        assert str(out[0]) == str(v6(1))

    def test_v4_preference_possible(self):
        out = order_addresses([v6(1), v4(1)], preferred_family=Family.V4)
        assert family_of(out[0]) is Family.V4


class TestHistoryStore:
    def test_srtt_smoothing(self):
        history = HistoryStore()
        history.record_success(v6(1), rtt=0.100, now=0.0)
        history.record_success(v6(1), rtt=0.200, now=1.0)
        srtt = history.srtt(v6(1), now=2.0)
        assert 0.100 < srtt < 0.200

    def test_expiry(self):
        history = HistoryStore(max_age=5.0)
        history.record_success(v6(1), rtt=0.1, now=0.0)
        assert history.srtt(v6(1), now=4.0) is not None
        assert history.srtt(v6(1), now=6.0) is None

    def test_clear(self):
        history = HistoryStore()
        history.record_success(v6(1), 0.1, 0.0)
        history.clear()
        assert len(history) == 0


class TestOutcomeCache:
    def test_record_and_lookup(self):
        cache = OutcomeCache(ttl=600.0)
        cache.record("example.com", v6(1), now=0.0)
        outcome = cache.lookup("example.com", now=100.0)
        assert outcome is not None
        assert outcome.family is Family.V6

    def test_expiry_after_ttl(self):
        cache = OutcomeCache(ttl=600.0)
        cache.record("example.com", v6(1), now=0.0)
        assert cache.lookup("example.com", now=601.0) is None

    def test_case_insensitive_hostnames(self):
        cache = OutcomeCache()
        cache.record("Example.COM", v4(1), now=0.0)
        assert cache.lookup("example.com", now=1.0) is not None

    def test_lru_eviction(self):
        cache = OutcomeCache(capacity=2)
        cache.record("a.example", v4(1), now=0.0)
        cache.record("b.example", v4(2), now=0.0)
        cache.record("c.example", v4(3), now=0.0)
        assert "a.example" not in cache
        assert "b.example" in cache

    def test_hit_miss_counters(self):
        cache = OutcomeCache()
        cache.lookup("missing.example", now=0.0)
        cache.record("hit.example", v4(1), now=0.0)
        cache.lookup("hit.example", now=1.0)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_invalidate(self):
        cache = OutcomeCache()
        cache.record("x.example", v4(1), now=0.0)
        cache.invalidate("x.example")
        assert cache.lookup("x.example", now=0.0) is None

    def test_purge_expired(self):
        cache = OutcomeCache(ttl=10.0)
        cache.record("old.example", v4(1), now=0.0)
        cache.record("new.example", v4(2), now=5.0)
        assert cache.purge_expired(now=12.0) == 1
        assert len(cache) == 1

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            OutcomeCache(ttl=0)
