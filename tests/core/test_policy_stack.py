"""The staged PolicyStack API and its HEParams compatibility contract."""

import dataclasses

import pytest

from repro.clients import (ClientProfile, all_profiles, chromium_params,
                           chromium_stack, get_profile, wget_stack)
from repro.core import (HEParams, HEVersion, HappyEyeballsEngine,
                        InterlaceStrategy, PolicyStack, RFC_PARAMETER_SETS,
                        RacingStage, ResolutionPolicy, ResolutionStage,
                        SortingStage, coerce_stack, hev3_draft_params,
                        rfc6555_params, rfc8305_params)
from repro.dns.stub import StubResolver
from repro.simnet.addr import Family
from repro.testbed.topology import LocalTestbed


class TestRoundTrip:
    """from_heparams(p).params() == p — what keeps goldens valid."""

    @pytest.mark.parametrize("params", [
        *RFC_PARAMETER_SETS,
        HEParams(connection_attempt_delay=0.123, dynamic_cad=True,
                 minimum_cad=0.02, recommended_cad=0.2, maximum_cad=1.5,
                 resolution_delay=None,
                 preferred_family=Family.V4,
                 interlace=InterlaceStrategy.FIRST_FAMILY_BURST,
                 resolution_policy=ResolutionPolicy.FIRST_USABLE,
                 outcome_cache_ttl=42.0, race_quic=True, use_svcb=True,
                 first_address_family_count=3,
                 max_attempts_per_family=2),
    ])
    def test_arbitrary_params_round_trip(self, params):
        assert PolicyStack.from_heparams(params).params() == params

    def test_every_registry_profile_view_is_consistent(self):
        for profile in all_profiles():
            assert profile.stack.params() == profile.params

    def test_legacy_param_helpers_are_stack_views(self):
        assert chromium_params() == chromium_stack().params()
        # The sortlist is stack-only: it never leaks into the view.
        assert chromium_stack(sortlist="windows").params() == \
            chromium_stack(sortlist=None).params()

    def test_version_survives(self):
        assert PolicyStack.from_heparams(
            hev3_draft_params()).version is HEVersion.V3
        assert PolicyStack.from_heparams(
            rfc6555_params()).version is HEVersion.V1


class TestProfileConsistency:
    def test_profile_from_params_derives_the_stack(self):
        profile = ClientProfile(
            name="x", version="1", released="01-2025",
            engine_family="curl", kind="cli", params=rfc8305_params())
        assert profile.stack == PolicyStack.from_heparams(rfc8305_params())

    def test_profile_from_stack_derives_the_params(self):
        profile = ClientProfile(
            name="x", version="1", released="01-2025",
            engine_family="curl", kind="cli", stack=wget_stack())
        assert profile.params == wget_stack().params()

    def test_profile_needs_one_form(self):
        with pytest.raises(ValueError, match="policy stack"):
            ClientProfile(name="x", version="1", released="01-2025",
                          engine_family="curl", kind="cli")

    def test_disagreeing_forms_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            ClientProfile(name="x", version="1", released="01-2025",
                          engine_family="curl", kind="cli",
                          params=rfc8305_params(), stack=wget_stack())

    def test_hev3_flag_keeps_the_sortlist(self):
        chrome = get_profile("Chrome", "130.0")
        flagged = chrome.with_hev3_flag()
        assert flagged.stack.resolution.mode is ResolutionPolicy.HE_V2
        assert flagged.stack.resolution.resolution_delay == 0.050
        assert flagged.stack.sorting.sortlist == \
            chrome.stack.sorting.sortlist
        assert flagged.params == flagged.stack.params()

    def test_unknown_sortlist_rejected_at_declaration(self):
        with pytest.raises(KeyError, match="policy table"):
            SortingStage(sortlist="beos")


class TestStageDeclarations:
    def test_stage_summaries_are_declarative(self):
        stack = get_profile("hev3-reference").stack
        summaries = dict(stack.stage_summaries())
        assert set(summaries) == {"resolution", "sorting", "racing"}
        assert "svcb" in summaries["resolution"]
        assert "sortlist=rfc6724" in summaries["sorting"]
        assert "quic" in summaries["racing"]
        assert "rd=50ms" in summaries["resolution"]

    def test_serial_marker_summarized(self):
        assert "serial" in wget_stack().racing.summary()
        assert wget_stack().racing.serial

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            RacingStage(connection_attempt_delay=0.0)
        with pytest.raises(ValueError):
            RacingStage(minimum_cad=0.5, recommended_cad=0.1)
        with pytest.raises(ValueError):
            ResolutionStage(resolution_delay=-1.0)
        with pytest.raises(ValueError):
            SortingStage(first_address_family_count=0)

    def test_with_stage_helpers(self):
        stack = chromium_stack()
        assert stack.with_racing(connection_attempt_delay=0.1) \
            .racing.connection_attempt_delay == 0.1
        assert stack.with_resolution(use_svcb=True).resolution.use_svcb
        assert stack.with_sorting(sortlist=None).sorting.sortlist is None
        # The original is untouched (frozen composition).
        assert stack.racing.connection_attempt_delay == 0.300


class TestEngineDriver:
    def connect(self, policy):
        testbed = LocalTestbed(seed=7)
        stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                            timeout=3600.0, retries=0)
        engine = HappyEyeballsEngine(testbed.client, stub, policy)
        result = testbed.sim.run_until(
            engine.connect("www.he-test.example"))
        return engine, result

    def test_engine_accepts_either_form(self):
        params = rfc8305_params()
        _, from_params = self.connect(params)
        _, from_stack = self.connect(PolicyStack.from_heparams(params))
        assert from_params.winning_family is from_stack.winning_family
        assert from_params.time_to_connect == from_stack.time_to_connect
        assert len(from_params.attempts) == len(from_stack.attempts)

    def test_params_property_is_the_stack_view(self):
        engine, _ = self.connect(rfc8305_params())
        assert engine.params == rfc8305_params()
        assert engine.stack == coerce_stack(rfc8305_params())
        engine.params = rfc6555_params()
        assert engine.stack.version is HEVersion.V1

    def test_trace_version_comes_from_the_stack(self):
        _, result = self.connect(hev3_draft_params())
        first = result.trace.events[0]
        assert first.detail["version"] == "HEv3"


class TestClientStackThreading:
    def test_client_engine_runs_the_profile_stack(self):
        from repro.clients import Client

        testbed = LocalTestbed(seed=3)
        chrome = get_profile("Chrome", "130.0")
        client = Client(testbed.client, chrome,
                        testbed.resolver_addresses[:1])
        assert client.engine.stack == chrome.stack
        assert client.engine.stack.sorting.sortlist == "linux"

    def test_outlier_wrapper_preserves_the_sortlist(self):
        from repro.clients import Client

        testbed = LocalTestbed(seed=3)
        firefox = get_profile("Firefox", "132.0")
        assert firefox.outlier_probability > 0
        client = Client(testbed.client, firefox,
                        testbed.resolver_addresses[:1])
        result = testbed.sim.run_until(
            client.connect("www.he-test.example"))
        assert result.success
        # After the (possibly perturbed) connect, the engine is back
        # on the declared stack, sortlist included.
        assert client.engine.stack == firefox.stack
        assert client.engine.stack.sorting.sortlist == "linux"
