"""The racing engine cancels superseded stagger/deadline timers.

Before cancellation, a resolved race left its deadline ``Timeout``
sitting in the wheel until it expired as a no-op — harmless for one
race, real scheduler drag for a campaign of millions.  These tests pin
the physical behavior: after a race resolves, draining the simulator
never advances the clock to the dead deadline.
"""

from repro.core import ConnectionRacer, HETrace, rfc8305_params
from repro.core.svcb import candidates_from_addresses
from repro.simnet import Network

LIVE_V6 = "2001:db8::10"
LIVE_V4 = "192.0.2.10"
DEAD_V6 = "2001:db8::dead"

FAR_DEADLINE = 30.0


def make_lab(seed=0):
    net = Network(seed=seed)
    segment = net.add_segment("lab", propagation_delay=0.0001)
    client = net.add_host("client")
    server = net.add_host("server")
    net.connect(client, segment, ["192.0.2.1", "2001:db8::1"])
    net.connect(server, segment, [LIVE_V4, LIVE_V6])
    server.tcp.listen(80)
    return net, client


def race(client, addresses, deadline=FAR_DEADLINE):
    racer = ConnectionRacer(client, rfc8305_params(), trace=HETrace())
    process = client.sim.process(
        racer.run(candidates_from_addresses(addresses, 80),
                  deadline=deadline))
    return client.sim.run_until(process)


class TestDeadlineCancellation:
    def test_resolved_race_frees_its_deadline_timer(self):
        net, client = make_lab()
        result = race(client, [LIVE_V6])
        assert result.success
        resolved_at = net.sim.now
        net.sim.run()  # drain: only connection-teardown residue left
        assert net.sim.now < resolved_at + 1.0
        assert net.sim.now < FAR_DEADLINE
        assert net.sim.pending_count == 0

    def test_staggered_race_frees_gate_and_deadline(self):
        """A race that exercised the stagger gate (first candidate
        dead, fallback wins) must also leave no timer behind."""
        net, client = make_lab()
        result = race(client, [DEAD_V6, LIVE_V4])
        assert result.success
        resolved_at = net.sim.now
        net.sim.run()
        assert net.sim.now < resolved_at + 1.0
        assert net.sim.pending_count == 0

    def test_deadline_still_fires_when_race_is_slow(self):
        """Cancellation must not lose live deadlines: with every
        candidate dead, the race still times out at the deadline."""
        import pytest
        from repro.core import RaceDeadlineExceeded
        net, client = make_lab()
        with pytest.raises(RaceDeadlineExceeded):
            race(client, [DEAD_V6], deadline=2.0)
        assert net.sim.now >= 2.0

    def test_many_races_do_not_accumulate_timers(self):
        """The campaign-scale motivation: serial races on one
        simulator leave zero pending timers between runs."""
        net, client = make_lab()
        for _ in range(10):
            result = race(client, [LIVE_V6, LIVE_V4])
            assert result.success
            net.sim.run()
            assert net.sim.pending_count == 0
