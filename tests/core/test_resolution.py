"""Unit tests for the resolution phase (RFC 8305 §3 state machine).

Uses hand-built answer events so each branch of the state machine can
be exercised with exact timing.
"""

import ipaddress

import pytest

from repro.core.events import HEEventKind, HETrace
from repro.core.params import ResolutionPolicy, rfc8305_params
from repro.core.resolution import resolve_addresses
from repro.dns.name import DNSName
from repro.dns.rdata import RdataType
from repro.dns.stub import StubAnswer
from repro.dns.errors import QueryTimeout
from repro.simnet import Simulator


class FakeDual:
    """A DualLookup stand-in with scriptable answer arrival times."""

    def __init__(self, sim):
        self.sim = sim
        self.aaaa = sim.event(name="fake-aaaa")
        self.a = sim.event(name="fake-a")
        self.started_at = sim.now

    def deliver(self, rtype, at, addresses=(), error=None):
        qname = DNSName.from_text("test.example")

        def fire():
            answer = StubAnswer(rtype=rtype, qname=qname,
                                asked_at=self.started_at,
                                answered_at=self.sim.now, error=error)
            if error is None:
                from repro.dns.message import DNSMessage

                answer.message = DNSMessage(id=1, qr=True)
                answer.addresses = [ipaddress.ip_address(a)
                                    for a in addresses]
            event = self.aaaa if rtype is RdataType.AAAA else self.a
            if not event.triggered:
                event.succeed(answer)

        self.sim.schedule(at, fire)


V6 = "2001:db8::1"
V4 = "192.0.2.1"


def run_machine(policy, script, params_overrides=None):
    """Run the machine against a scripted answer schedule."""
    sim = Simulator()
    dual = FakeDual(sim)
    for rtype, at, addresses, error in script:
        dual.deliver(rtype, at, addresses, error)
    params = rfc8305_params().with_overrides(
        resolution_policy=policy, **(params_overrides or {}))
    trace = HETrace()

    def body():
        outcome = yield from resolve_addresses(sim, dual, params, trace)
        return outcome

    process = sim.process(body())
    outcome = sim.run_until(process)
    return outcome, sim.now, trace


class TestHev2Machine:
    def test_aaaa_first_connects_immediately(self):
        outcome, now, _ = run_machine(ResolutionPolicy.HE_V2, [
            (RdataType.AAAA, 0.010, [V6], None),
            (RdataType.A, 0.030, [V4], None),
        ])
        assert outcome.trigger == "aaaa-first"
        assert now == pytest.approx(0.010)
        assert [str(a) for a in outcome.addresses] == [V6]

    def test_simultaneous_answers_prefer_aaaa(self):
        outcome, now, _ = run_machine(ResolutionPolicy.HE_V2, [
            (RdataType.AAAA, 0.010, [V6], None),
            (RdataType.A, 0.010, [V4], None),
        ])
        assert outcome.trigger == "aaaa-first"
        assert len(outcome.addresses) == 2
        # AAAA contribution leads the list.
        assert str(outcome.addresses[0]) == V6

    def test_a_first_waits_resolution_delay(self):
        outcome, now, trace = run_machine(ResolutionPolicy.HE_V2, [
            (RdataType.A, 0.010, [V4], None),
            (RdataType.AAAA, 0.500, [V6], None),
        ])
        assert outcome.trigger == "rd-expired"
        assert now == pytest.approx(0.060)  # A at 10 ms + RD 50 ms
        assert [str(a) for a in outcome.addresses] == [V4]
        kinds = [event.kind for event in trace]
        assert HEEventKind.RESOLUTION_DELAY_STARTED in kinds
        assert HEEventKind.RESOLUTION_DELAY_EXPIRED in kinds

    def test_aaaa_within_rd_cancels_the_wait(self):
        outcome, now, trace = run_machine(ResolutionPolicy.HE_V2, [
            (RdataType.A, 0.010, [V4], None),
            (RdataType.AAAA, 0.040, [V6], None),
        ])
        assert outcome.trigger == "aaaa-within-rd"
        assert now == pytest.approx(0.040)
        assert str(outcome.addresses[0]) == V6
        kinds = [event.kind for event in trace]
        assert HEEventKind.RESOLUTION_DELAY_CANCELLED in kinds

    def test_custom_rd_value(self):
        outcome, now, _ = run_machine(
            ResolutionPolicy.HE_V2,
            [(RdataType.A, 0.010, [V4], None),
             (RdataType.AAAA, 0.900, [V6], None)],
            params_overrides={"resolution_delay": 0.200})
        assert now == pytest.approx(0.210)

    def test_aaaa_empty_waits_for_a(self):
        outcome, now, _ = run_machine(ResolutionPolicy.HE_V2, [
            (RdataType.AAAA, 0.010, [], None),  # NODATA
            (RdataType.A, 0.050, [V4], None),
        ])
        assert outcome.trigger == "aaaa-unusable"
        assert now == pytest.approx(0.050)
        assert [str(a) for a in outcome.addresses] == [V4]

    def test_aaaa_error_falls_back_to_a(self):
        outcome, _, _ = run_machine(ResolutionPolicy.HE_V2, [
            (RdataType.AAAA, 0.010, [], QueryTimeout("t")),
            (RdataType.A, 0.020, [V4], None),
        ])
        assert outcome.trigger == "aaaa-unusable"
        assert outcome.has_addresses

    def test_a_unusable_waits_for_aaaa(self):
        outcome, now, _ = run_machine(ResolutionPolicy.HE_V2, [
            (RdataType.A, 0.010, [], None),
            (RdataType.AAAA, 0.300, [V6], None),
        ])
        assert outcome.trigger == "a-unusable"
        assert now == pytest.approx(0.300)
        assert [str(a) for a in outcome.addresses] == [V6]

    def test_both_unusable_yields_no_addresses(self):
        outcome, _, _ = run_machine(ResolutionPolicy.HE_V2, [
            (RdataType.A, 0.010, [], None),
            (RdataType.AAAA, 0.020, [], None),
        ])
        assert not outcome.has_addresses


class TestWaitBoth:
    def test_waits_for_the_slower_answer(self):
        outcome, now, _ = run_machine(ResolutionPolicy.WAIT_BOTH, [
            (RdataType.AAAA, 0.010, [V6], None),
            (RdataType.A, 0.750, [V4], None),
        ])
        assert outcome.trigger == "both-answers"
        assert now == pytest.approx(0.750)
        assert len(outcome.addresses) == 2

    def test_slow_aaaa_also_stalls(self):
        outcome, now, _ = run_machine(ResolutionPolicy.WAIT_BOTH, [
            (RdataType.A, 0.010, [V4], None),
            (RdataType.AAAA, 1.200, [V6], None),
        ])
        assert now == pytest.approx(1.200)

    def test_error_counts_as_answered(self):
        outcome, now, _ = run_machine(ResolutionPolicy.WAIT_BOTH, [
            (RdataType.A, 0.010, [V4], None),
            (RdataType.AAAA, 0.400, [], QueryTimeout("t")),
        ])
        assert now == pytest.approx(0.400)
        assert [str(a) for a in outcome.addresses] == [V4]


class TestFirstUsable:
    def test_first_usable_wins_even_if_a(self):
        outcome, now, _ = run_machine(ResolutionPolicy.FIRST_USABLE, [
            (RdataType.A, 0.010, [V4], None),
            (RdataType.AAAA, 0.500, [V6], None),
        ])
        assert outcome.trigger == "first-usable-a"
        assert now == pytest.approx(0.010)

    def test_unusable_first_answer_skipped(self):
        outcome, now, _ = run_machine(ResolutionPolicy.FIRST_USABLE, [
            (RdataType.A, 0.010, [], None),
            (RdataType.AAAA, 0.200, [V6], None),
        ])
        assert outcome.trigger == "first-usable-aaaa"
        assert now == pytest.approx(0.200)

    def test_no_usable_answer_at_all(self):
        outcome, _, _ = run_machine(ResolutionPolicy.FIRST_USABLE, [
            (RdataType.A, 0.010, [], None),
            (RdataType.AAAA, 0.020, [], None),
        ])
        assert outcome.trigger == "no-usable-answer"
        assert not outcome.has_addresses
