"""Unit tests for the staggered connection racing engine."""

import pytest

from repro.core import (AllAttemptsFailed, AttemptOutcome, ConnectionRacer,
                        HETrace, RaceDeadlineExceeded, rfc8305_params)
from repro.core.svcb import ServiceCandidate, candidates_from_addresses
from repro.simnet import Family, Network, Protocol


def make_lab(seed=0, server_addresses=("192.0.2.10", "2001:db8::10")):
    net = Network(seed=seed)
    segment = net.add_segment("lab", propagation_delay=0.0001)
    client = net.add_host("client")
    server = net.add_host("server")
    net.connect(client, segment, ["192.0.2.1", "2001:db8::1"])
    net.connect(server, segment, list(server_addresses))
    server.tcp.listen(80)
    return net, client, server


def run_race(client, candidates, params=None, deadline=None):
    racer = ConnectionRacer(client, params or rfc8305_params(),
                            trace=HETrace())
    process = client.sim.process(racer.run(candidates, deadline=deadline))
    return racer, process


LIVE_V6 = "2001:db8::10"
LIVE_V4 = "192.0.2.10"
DEAD_V6 = "2001:db8::dead"
DEAD_V4 = "203.0.113.99"


class TestStaggering:
    def test_single_candidate_wins_immediately(self):
        net, client, _ = make_lab()
        candidates = candidates_from_addresses([LIVE_V6], 80)
        _, process = run_race(client, candidates)
        result = net.sim.run_until(process)
        assert result.success
        assert result.winning_family is Family.V6
        assert len(result.attempts) == 1

    def test_second_attempt_starts_after_cad(self):
        net, client, _ = make_lab()
        candidates = candidates_from_addresses([DEAD_V6, LIVE_V4], 80)
        _, process = run_race(client, candidates)
        result = net.sim.run_until(process)
        assert result.winning_family is Family.V4
        gap = result.attempts[1].started_at - result.attempts[0].started_at
        assert gap == pytest.approx(0.250, abs=0.001)

    def test_fast_winner_prevents_second_attempt(self):
        net, client, _ = make_lab()
        candidates = candidates_from_addresses([LIVE_V6, LIVE_V4], 80)
        _, process = run_race(client, candidates)
        result = net.sim.run_until(process)
        assert len(result.attempts) == 1

    def test_loser_aborted_on_win(self):
        net, client, _ = make_lab()
        candidates = candidates_from_addresses([DEAD_V6, LIVE_V4], 80)
        _, process = run_race(client, candidates)
        result = net.sim.run_until(process)
        outcomes = {a.candidate.address: a.outcome
                    for a in result.attempts}
        assert outcomes[result.attempts[0].candidate.address] is \
            AttemptOutcome.ABORTED
        assert result.winning_attempt.outcome is AttemptOutcome.WON

    def test_refused_attempt_unblocks_next_immediately(self):
        # No listener on port 81: RST comes back in one RTT, and the
        # next attempt must start right away, not after the CAD.
        net, client, _ = make_lab()
        candidates = candidates_from_addresses([LIVE_V6, LIVE_V4], 81)
        _, process = run_race(client, candidates)
        process.defused = True
        net.sim.run()
        result = process.exception.race_result
        gap = result.attempts[1].started_at - result.attempts[0].started_at
        assert gap < 0.010  # far less than the 250 ms CAD

    def test_all_fail_raises_with_partial_result(self):
        net, client, _ = make_lab()
        candidates = candidates_from_addresses([DEAD_V6, DEAD_V4], 80)
        params = rfc8305_params()
        racer = ConnectionRacer(client, params, attempt_timeout=1.0)
        process = client.sim.process(racer.run(candidates))
        process.defused = True
        net.sim.run()
        assert isinstance(process.exception, AllAttemptsFailed)
        result = process.exception.race_result
        assert len(result.attempts) == 2
        assert all(a.outcome is AttemptOutcome.FAILED
                   for a in result.attempts)

    def test_deadline_aborts_everything(self):
        net, client, _ = make_lab()
        candidates = candidates_from_addresses([DEAD_V6, DEAD_V4], 80)
        _, process = run_race(client, candidates, deadline=0.700)
        process.defused = True
        net.sim.run(until=30.0)
        assert isinstance(process.exception, RaceDeadlineExceeded)
        result = process.exception.race_result
        assert all(a.outcome in (AttemptOutcome.ABORTED,
                                 AttemptOutcome.FAILED)
                   for a in result.attempts)


class TestLateCandidates:
    def test_added_candidates_join_the_race(self):
        net, client, _ = make_lab()
        candidates = candidates_from_addresses([DEAD_V6], 80)
        racer, process = run_race(client, candidates)
        net.sim.schedule(0.100, racer.add_candidates,
                         candidates_from_addresses([LIVE_V4], 80))
        result = net.sim.run_until(process)
        assert result.winning_family is Family.V4
        # The late candidate started once the CAD from attempt 0 passed.
        assert result.attempts[1].started_at == pytest.approx(0.250,
                                                              abs=0.002)

    def test_late_candidate_after_queue_drained(self):
        net, client, _ = make_lab()
        params = rfc8305_params()
        racer = ConnectionRacer(client, params, attempt_timeout=5.0)
        process = client.sim.process(
            racer.run(candidates_from_addresses([DEAD_V6], 80)))
        # Queue empty, one active blackholed attempt; add a live one.
        net.sim.schedule(1.0, racer.add_candidates,
                         candidates_from_addresses([LIVE_V4], 80))
        result = net.sim.run_until(process)
        assert result.winning_family is Family.V4


class TestDynamicCadProvider:
    def test_custom_provider_controls_stagger(self):
        net, client, _ = make_lab()
        params = rfc8305_params()
        racer = ConnectionRacer(
            client, params, cad_provider=lambda index, candidate: 0.050)
        process = client.sim.process(
            racer.run(candidates_from_addresses([DEAD_V6, LIVE_V4], 80)))
        result = net.sim.run_until(process)
        gap = result.attempts[1].started_at - result.attempts[0].started_at
        assert gap == pytest.approx(0.050, abs=0.001)

    def test_dynamic_cad_without_history_is_maximum(self):
        net, client, _ = make_lab()
        from repro.core import HistoryStore

        params = rfc8305_params().with_overrides(dynamic_cad=True,
                                                 maximum_cad=1.5)
        racer = ConnectionRacer(client, params, history=HistoryStore())
        process = client.sim.process(
            racer.run(candidates_from_addresses([DEAD_V6, LIVE_V4], 80)))
        result = net.sim.run_until(process)
        gap = result.attempts[1].started_at - result.attempts[0].started_at
        assert gap == pytest.approx(1.5, abs=0.001)


class TestQuicCandidates:
    def test_quic_candidate_uses_quic_stack(self):
        net, client, server = make_lab()
        server.quic.listen(443)
        candidates = [ServiceCandidate(
            address=__import__("ipaddress").ip_address(LIVE_V6),
            protocol=Protocol.QUIC, port=443)]
        _, process = run_race(client, candidates)
        result = net.sim.run_until(process)
        assert result.winning_attempt.protocol is Protocol.QUIC

    def test_history_updated_on_win_and_failure(self):
        net, client, _ = make_lab()
        from repro.core import HistoryStore

        history = HistoryStore()
        params = rfc8305_params()
        # Attempt timeout below the CAD: the dead IPv6 attempt fails
        # (and is recorded) before the IPv4 attempt wins.
        racer = ConnectionRacer(client, params, history=history,
                                attempt_timeout=0.2)
        process = client.sim.process(
            racer.run(candidates_from_addresses([DEAD_V6, LIVE_V4], 80)))
        result = net.sim.run_until(process)
        net.sim.run(until=net.sim.now + 1.0)
        import ipaddress

        assert history.srtt(ipaddress.ip_address(LIVE_V4),
                            net.sim.now) is not None
        entry = history.lookup(ipaddress.ip_address(DEAD_V6), net.sim.now)
        assert entry is not None and entry.failures >= 1
