"""Property-based tests for Happy Eyeballs racing invariants.

These run full races on generated scenarios (random IPv6 delay, random
CAD) and check the invariants the algorithm must uphold regardless of
parameters — the "shape" guarantees behind Figure 2.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import rfc8305_params
from repro.core.engine import HappyEyeballsEngine
from repro.core.racing import AttemptOutcome, ConnectionRacer
from repro.core.svcb import candidates_from_addresses
from repro.dns.stub import StubResolver
from repro.simnet import Family, Network
from repro.testbed.topology import LocalTestbed

# Keep hypothesis example counts moderate: each example is a full
# simulated connection establishment.
SCENARIOS = settings(max_examples=25, deadline=None)


def run_connect(v6_delay_ms: int, cad_ms: int, seed: int):
    testbed = LocalTestbed(seed=seed)
    testbed.delay_ipv6_tcp(v6_delay_ms / 1000.0)
    params = rfc8305_params().with_overrides(
        connection_attempt_delay=cad_ms / 1000.0)
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    engine = HappyEyeballsEngine(testbed.client, stub, params)
    capture = testbed.start_client_capture()
    result = testbed.sim.run_until(
        engine.connect("www.he-test.example"))
    return result, capture


class TestRaceInvariants:
    @given(st.integers(min_value=0, max_value=600),
           st.integers(min_value=50, max_value=500),
           st.integers(min_value=0, max_value=10))
    @SCENARIOS
    def test_connection_always_establishes(self, delay_ms, cad_ms, seed):
        result, _ = run_connect(delay_ms, cad_ms, seed)
        assert result.success

    @given(st.integers(min_value=0, max_value=600),
           st.integers(min_value=50, max_value=500),
           st.integers(min_value=0, max_value=10))
    @SCENARIOS
    def test_winner_family_matches_delay_vs_cad(self, delay_ms, cad_ms,
                                                seed):
        """IPv6 wins iff its handshake beats the CAD (±handshake time)."""
        result, _ = run_connect(delay_ms, cad_ms, seed)
        margin = 2  # ms; propagation + scheduling epsilon
        if delay_ms + margin < cad_ms:
            assert result.winning_family is Family.V6
        elif delay_ms > cad_ms + margin:
            assert result.winning_family is Family.V4

    @given(st.integers(min_value=0, max_value=600),
           st.integers(min_value=50, max_value=500),
           st.integers(min_value=0, max_value=10))
    @SCENARIOS
    def test_first_attempt_is_always_ipv6(self, delay_ms, cad_ms, seed):
        """The preferred family leads, no matter the outcome."""
        result, capture = run_connect(delay_ms, cad_ms, seed)
        attempts = capture.connection_attempts()
        assert attempts[0].packet.family is Family.V6

    @given(st.integers(min_value=0, max_value=600),
           st.integers(min_value=50, max_value=500),
           st.integers(min_value=0, max_value=10))
    @SCENARIOS
    def test_ipv4_never_attempted_before_cad(self, delay_ms, cad_ms,
                                             seed):
        """Monotonicity: the fallback never fires early."""
        _, capture = run_connect(delay_ms, cad_ms, seed)
        first_v6 = capture.first_connection_attempt(Family.V6)
        first_v4 = capture.first_connection_attempt(Family.V4)
        if first_v4 is not None:
            observed_cad = first_v4.timestamp - first_v6.timestamp
            assert observed_cad >= cad_ms / 1000.0 - 0.001

    @given(st.integers(min_value=0, max_value=600),
           st.integers(min_value=50, max_value=500),
           st.integers(min_value=0, max_value=10))
    @SCENARIOS
    def test_time_to_connect_bounded(self, delay_ms, cad_ms, seed):
        """TTC <= min(v6 handshake, CAD + v4 handshake) + epsilon."""
        result, _ = run_connect(delay_ms, cad_ms, seed)
        bound = min(delay_ms, cad_ms + 2) / 1000.0 + 0.005
        assert result.time_to_connect <= bound

    @given(st.integers(min_value=0, max_value=10))
    @SCENARIOS
    def test_exactly_one_winner(self, seed):
        net = Network(seed=seed)
        segment = net.add_segment("lab")
        client = net.add_host("client")
        server = net.add_host("server")
        net.connect(client, segment, ["192.0.2.1", "2001:db8::1"])
        net.connect(server, segment, ["192.0.2.10", "2001:db8::10"])
        server.tcp.listen(80)
        racer = ConnectionRacer(client, rfc8305_params())
        candidates = candidates_from_addresses(
            ["2001:db8::10", "192.0.2.10"], 80)
        process = client.sim.process(racer.run(candidates))
        result = net.sim.run_until(process)
        winners = [a for a in result.attempts
                   if a.outcome is AttemptOutcome.WON]
        assert len(winners) == 1
