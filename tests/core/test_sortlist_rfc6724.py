"""RFC 6724 sortlist machinery: tables, scopes, source selection.

The per-OS policy tables must yield exactly the orderings documented
in :mod:`repro.core.sortlist` — these are the regressions the sortlist
scenario battery rests on.
"""

import pytest

from repro.core.sortlist import (LINUX_TABLE, MACOS_TABLE, POLICY_TABLES,
                                 RFC3484_TABLE, RFC6724_TABLE,
                                 SCOPE_GLOBAL, SCOPE_LINK_LOCAL,
                                 SCOPE_SITE_LOCAL, WINDOWS_TABLE,
                                 HistoryStore, PolicyEntry, PolicyTable,
                                 common_prefix_len, order_addresses,
                                 policy_table, scope_of, select_source)
from repro.simnet.addr import Family, parse_address

#: The documented destination set, in DNS answer order.
ULA = "fd00:db8:cafe::10"
SITE_LOCAL = "fec0:db8::10"
TEREDO = "2001:0:db8::10"
SIX_TO_FOUR = "2002:c000:0204::10"
GLOBAL_V6 = "2001:db8:1::10"
V4 = "192.0.2.10"
DESTINATIONS = (ULA, SITE_LOCAL, TEREDO, SIX_TO_FOUR, GLOBAL_V6, V4)


def ordering(table):
    return list(order_addresses(DESTINATIONS, policy=table))


def parsed(addresses):
    return [parse_address(a) for a in addresses]


class TestPolicyTableLookup:
    def test_longest_prefix_match_wins(self):
        # ::ffff:0:0/96 (35) must beat the ::/0 catch-all (40).
        assert RFC6724_TABLE.precedence(V4) == 35
        assert RFC6724_TABLE.label(V4) == 4
        # Teredo 2001::/32 (5) must beat ::/0 — but 2001:db8:: is
        # outside 2001::/32 and falls through to the catch-all.
        assert RFC6724_TABLE.precedence(TEREDO) == 5
        assert RFC6724_TABLE.precedence(GLOBAL_V6) == 40

    def test_loopback_is_most_preferred(self):
        assert RFC6724_TABLE.precedence("::1") == 50

    def test_ula_and_site_local_rank_below_ipv4(self):
        assert RFC6724_TABLE.precedence(ULA) == 3
        assert RFC6724_TABLE.precedence(SITE_LOCAL) == 1
        assert RFC6724_TABLE.precedence(V4) > RFC6724_TABLE.precedence(ULA)

    def test_rfc3484_has_no_ula_row(self):
        # Legacy tables fall through to ::/0 — ULA above IPv4.
        assert RFC3484_TABLE.precedence(ULA) == 40
        assert RFC3484_TABLE.precedence(V4) == 10

    def test_table_overrides_replace_and_extend(self):
        custom = RFC6724_TABLE.with_overrides(
            "custom",
            PolicyEntry("fc00::/7", 45, 13),          # replace
            PolicyEntry("2001:db8:1::/48", 60, 7))    # extend
        assert custom.precedence(ULA) == 45
        assert custom.precedence(GLOBAL_V6) == 60  # longest prefix
        assert custom.precedence(V4) == 35  # untouched rows survive
        assert len(custom.entries) == len(RFC6724_TABLE.entries) + 1

    def test_registry_and_unknown_names(self):
        for name in ("rfc6724", "rfc3484", "linux", "windows", "macos"):
            assert policy_table(name).name == name
            assert name in POLICY_TABLES
        with pytest.raises(KeyError, match="rfc6724"):
            policy_table("solaris")


class TestScopeComparison:
    @pytest.mark.parametrize("address, scope", [
        ("fe80::1", SCOPE_LINK_LOCAL),
        ("::1", SCOPE_LINK_LOCAL),      # RFC 6724 §3.1
        ("fec0::1", SCOPE_SITE_LOCAL),
        (ULA, SCOPE_GLOBAL),            # ULAs are global scope
        (GLOBAL_V6, SCOPE_GLOBAL),
        ("169.254.9.9", SCOPE_LINK_LOCAL),
        ("127.0.0.1", SCOPE_LINK_LOCAL),
        (V4, SCOPE_GLOBAL),
        ("ff02::1", 0x2),               # multicast: scope nibble
        ("ff05::1", 0x5),
    ])
    def test_scope_of(self, address, scope):
        assert scope_of(address) == scope

    def test_common_prefix_len(self):
        assert common_prefix_len("2001:db8::1", "2001:db8::1") == 128
        assert common_prefix_len("2001:db8::", "2001:db9::") == 31
        assert common_prefix_len("192.0.2.1", "192.0.2.2") == 96 + 30


class TestSourceSelection:
    SOURCES = ("fd00:db8:cafe::1", "2001:db8:1::1")

    def test_ula_destination_selects_ula_source(self):
        # Rule 6: matching label keeps ULA talking to ULA.
        chosen = select_source(ULA, self.SOURCES)
        assert str(chosen) == "fd00:db8:cafe::1"

    def test_global_destination_selects_global_source(self):
        chosen = select_source(GLOBAL_V6, self.SOURCES)
        assert str(chosen) == "2001:db8:1::1"

    def test_destination_itself_wins(self):
        chosen = select_source(GLOBAL_V6, (ULA, GLOBAL_V6))
        assert chosen == parse_address(GLOBAL_V6)

    def test_scope_rule_prefers_matching_scope(self):
        # Link-local destination: the link-local source is the
        # smallest adequate scope (Rule 2).
        chosen = select_source("fe80::9", ("fe80::1", "2001:db8:1::1"))
        assert str(chosen) == "fe80::1"
        # Global destination: a link-local source is inadequate.
        chosen = select_source(GLOBAL_V6, ("fe80::1", "2001:db8:1::1"))
        assert str(chosen) == "2001:db8:1::1"

    def test_longest_prefix_breaks_remaining_ties(self):
        chosen = select_source("2001:db8:1::9",
                               ("2001:db8:2::1", "2001:db8:1::1"))
        assert str(chosen) == "2001:db8:1::1"

    def test_family_mismatch_yields_none(self):
        assert select_source(V4, self.SOURCES) is None
        assert select_source(V4, ("192.0.2.1", ULA)) == \
            parse_address("192.0.2.1")


class TestDocumentedPerOsOrderings:
    """Each per-OS table yields the module-documented ordering."""

    RFC6724_ORDER = [GLOBAL_V6, V4, SIX_TO_FOUR, TEREDO, ULA, SITE_LOCAL]

    def test_rfc6724(self):
        assert ordering(RFC6724_TABLE) == parsed(self.RFC6724_ORDER)

    def test_linux_matches_rfc6724(self):
        assert ordering(LINUX_TABLE) == parsed(self.RFC6724_ORDER)

    def test_windows_matches_rfc6724(self):
        assert ordering(WINDOWS_TABLE) == parsed(self.RFC6724_ORDER)

    def test_macos_demotes_transition_space(self):
        assert ordering(MACOS_TABLE) == parsed(
            [GLOBAL_V6, V4, ULA, SIX_TO_FOUR, TEREDO, SITE_LOCAL])

    def test_rfc3484_ranks_legacy_space_above_ipv4(self):
        assert ordering(RFC3484_TABLE) == parsed(
            [ULA, SITE_LOCAL, TEREDO, GLOBAL_V6, SIX_TO_FOUR, V4])


class TestOrderAddressesPolicyMode:
    def test_biased_family_outranks_the_table(self):
        # RFC 6555 §4.1 cache bias: IPv4 won last time, lead with it —
        # even under a table that would rank global v6 first.
        ordered = order_addresses((GLOBAL_V6, V4), policy=RFC6724_TABLE,
                                  biased_family=Family.V4)
        assert [str(a) for a in ordered] == [V4, GLOBAL_V6]

    def test_history_failures_demote_within_precedence(self):
        history = HistoryStore()
        history.record_failure("2001:db8:1::10", now=1.0)
        ordered = order_addresses(
            ("2001:db8:1::10", "2001:db8:1::20"), history=history,
            now=2.0, policy=RFC6724_TABLE)
        assert [str(a) for a in ordered] == \
            ["2001:db8:1::20", "2001:db8:1::10"]

    def test_dns_order_is_the_final_tiebreaker(self):
        ordered = order_addresses(
            ("2001:db8:1::b", "2001:db8:1::a"), policy=RFC6724_TABLE)
        assert [str(a) for a in ordered] == \
            ["2001:db8:1::b", "2001:db8:1::a"]

    def test_legacy_mode_is_untouched_by_policy_machinery(self):
        ordered = order_addresses((V4, GLOBAL_V6),
                                  preferred_family=Family.V6)
        assert [str(a) for a in ordered] == [GLOBAL_V6, V4]
        ordered = order_addresses((V4, GLOBAL_V6),
                                  preferred_family=Family.V4)
        assert [str(a) for a in ordered] == [V4, GLOBAL_V6]
