"""Tests for HEv3 SVCB-driven candidate building and ordering."""

import ipaddress

import pytest

from repro.core.params import hev3_draft_params, rfc8305_params
from repro.core.svcb import (ServiceCandidate, candidates_from_addresses,
                             candidates_from_svcb, order_candidates)
from repro.dns import DNSName, HTTPS, SVCB
from repro.simnet import Family, Protocol


def name(text):
    return DNSName.from_text(text)


def addr(text):
    return ipaddress.ip_address(text)


V6A, V6B = "2001:db8::1", "2001:db8::2"
V4A, V4B = "192.0.2.1", "192.0.2.2"


class TestCandidateBuilding:
    def test_plain_addresses_become_tcp_candidates(self):
        out = candidates_from_addresses([V6A, V4A], 443)
        assert len(out) == 2
        assert all(c.protocol is Protocol.TCP for c in out)
        assert all(c.port == 443 for c in out)

    def test_svcb_h3_alpn_yields_quic(self):
        record = HTTPS.service(1, name("svc.example"), alpn=("h3",))
        out = candidates_from_svcb([record], [V6A], 443)
        assert {c.protocol for c in out} == {Protocol.QUIC}

    def test_mixed_alpn_yields_both_protocols(self):
        record = HTTPS.service(1, name("svc.example"), alpn=("h3", "h2"))
        out = candidates_from_svcb([record], [V6A], 443)
        assert {c.protocol for c in out} == {Protocol.QUIC, Protocol.TCP}

    def test_no_alpn_defaults_to_tcp(self):
        record = HTTPS.service(1, name("svc.example"))
        out = candidates_from_svcb([record], [V6A], 443)
        assert {c.protocol for c in out} == {Protocol.TCP}

    def test_address_hints_override_resolved(self):
        record = HTTPS.service(1, name("svc.example"), alpn=("h2",),
                               ipv6_hints=(V6B,), ipv4_hints=(V4B,))
        out = candidates_from_svcb([record], [V6A, V4A], 443)
        addresses = {str(c.address) for c in out}
        assert addresses == {V6B, V4B}

    def test_svcb_port_parameter(self):
        record = HTTPS.service(1, name("svc.example"), alpn=("h2",),
                               port=8443)
        out = candidates_from_svcb([record], [V6A], 443)
        assert all(c.port == 8443 for c in out)

    def test_alias_mode_records_ignored(self):
        alias = SVCB(0, name("alias.example"))
        out = candidates_from_svcb([alias], [V6A], 443)
        assert out == []

    def test_priority_orders_records(self):
        low = HTTPS.service(2, name("b.example"), alpn=("h2",),
                            ipv6_hints=(V6B,))
        high = HTTPS.service(1, name("a.example"), alpn=("h2",),
                             ipv6_hints=(V6A,))
        out = candidates_from_svcb([low, high], [], 443)
        assert str(out[0].address) == V6A

    def test_ech_flag_carried(self):
        record = HTTPS.service(1, name("svc.example"), alpn=("h3",),
                               ech=True)
        out = candidates_from_svcb([record], [V6A], 443)
        assert all(c.ech for c in out)


class TestOrdering:
    def make(self, address, protocol, ech=False):
        return ServiceCandidate(address=addr(address), protocol=protocol,
                                port=443, ech=ech)

    def test_ech_beats_everything(self):
        plain_quic = self.make(V6A, Protocol.QUIC)
        ech_tcp = self.make(V6B, Protocol.TCP, ech=True)
        out = order_candidates([plain_quic, ech_tcp],
                               hev3_draft_params())
        assert out[0] is ech_tcp

    def test_quic_beats_tcp_within_same_ech_class(self):
        tcp = self.make(V6A, Protocol.TCP)
        quic = self.make(V6B, Protocol.QUIC)
        out = order_candidates([tcp, quic], hev3_draft_params())
        assert out[0] is quic

    def test_families_interlaced_within_bucket(self):
        candidates = [self.make(V6A, Protocol.TCP),
                      self.make(V6B, Protocol.TCP),
                      self.make(V4A, Protocol.TCP),
                      self.make(V4B, Protocol.TCP)]
        out = order_candidates(candidates, hev3_draft_params())
        families = [c.family for c in out]
        assert families[:2] == [Family.V6, Family.V4]

    def test_preference_rank(self):
        ech_quic = self.make(V6A, Protocol.QUIC, ech=True)
        plain_tcp = self.make(V4A, Protocol.TCP)
        assert ech_quic.preference_rank() < plain_tcp.preference_rank()

    def test_str_rendering(self):
        candidate = self.make(V6A, Protocol.QUIC, ech=True)
        assert "quic" in str(candidate)
        assert "+ech" in str(candidate)
