"""Edge-case tests: address allocation, host reconfiguration, captures."""

import pytest

from repro.simnet import (AddressAllocator, Direction, DualStackAllocator,
                          Family, Network, Packet, Protocol, family_of,
                          is_v6, parse_address, split_by_family)


class TestAddressHelpers:
    def test_family_of(self):
        assert family_of("192.0.2.1") is Family.V4
        assert family_of("2001:db8::1") is Family.V6

    def test_is_v6(self):
        assert is_v6("::1")
        assert not is_v6("127.0.0.1")

    def test_family_labels_and_other(self):
        assert Family.V4.label == "IPv4"
        assert Family.V6.other is Family.V4

    def test_split_by_family_preserves_order(self):
        v4, v6 = split_by_family(["192.0.2.2", "2001:db8::1",
                                  "192.0.2.1"])
        assert [str(a) for a in v4] == ["192.0.2.2", "192.0.2.1"]
        assert [str(a) for a in v6] == ["2001:db8::1"]

    def test_parse_address_idempotent(self):
        address = parse_address("192.0.2.1")
        assert parse_address(address) is address


class TestAllocators:
    def test_allocator_unique_addresses(self):
        allocator = AddressAllocator("192.0.2.0/29")
        addresses = allocator.allocate_many(6)
        assert len(set(addresses)) == 6

    def test_allocator_exhaustion(self):
        allocator = AddressAllocator("192.0.2.0/30")  # 2 host addrs
        allocator.allocate_many(2)
        with pytest.raises(RuntimeError, match="exhausted"):
            allocator.allocate()

    def test_allocator_skips_network_address(self):
        allocator = AddressAllocator("192.0.2.0/29")
        first = allocator.allocate()
        assert str(first) == "192.0.2.1"

    def test_dual_stack_pairs(self):
        allocator = DualStackAllocator("198.51.100.0/24",
                                       "2001:db8:50::/64")
        v4, v6 = allocator.allocate_pair()
        assert family_of(v4) is Family.V4
        assert family_of(v6) is Family.V6

    def test_dual_stack_rejects_swapped_prefixes(self):
        with pytest.raises(ValueError):
            DualStackAllocator("2001:db8::/64", "192.0.2.0/24")

    def test_handed_out_tracking(self):
        allocator = AddressAllocator("192.0.2.0/29")
        allocator.allocate_many(3)
        assert len(allocator.handed_out) == 3


class TestHostReconfiguration:
    def make_host(self):
        net = Network(seed=0)
        segment = net.add_segment("lab")
        host = net.add_host("box")
        iface = net.connect(host, segment, ["192.0.2.1", "2001:db8::1"])
        return net, host, iface

    def test_remove_address_updates_preferred_source(self):
        net, host, iface = self.make_host()
        iface.add_address("192.0.2.2")
        iface.remove_address("192.0.2.1")
        assert str(host.source_address_for("192.0.2.99")) == "192.0.2.2"

    def test_removing_last_family_address_breaks_routing(self):
        from repro.simnet import NoRouteError

        net, host, iface = self.make_host()
        iface.remove_address("2001:db8::1")
        with pytest.raises(NoRouteError):
            host.source_address_for("2001:db8::9")

    def test_removed_address_blackholes_on_segment(self):
        net, host, iface = self.make_host()
        peer = net.add_host("peer")
        net.connect(peer, net.segments["lab"], ["192.0.2.9"])
        iface.remove_address("192.0.2.1")
        peer.send(Packet(src="192.0.2.9", dst="192.0.2.1",
                         protocol=Protocol.UDP, sport=1, dport=2))
        net.sim.run()
        assert net.segments["lab"].dropped_unknown_destination == 1

    def test_duplicate_address_on_interface_rejected(self):
        net, host, iface = self.make_host()
        with pytest.raises(ValueError):
            iface.add_address("192.0.2.1")

    def test_duplicate_interface_name_rejected(self):
        net, host, _ = self.make_host()
        with pytest.raises(ValueError):
            host.add_interface("eth0")


class TestCaptureLifecycle:
    def test_capture_restart(self):
        net = Network(seed=0)
        segment = net.add_segment("lab")
        a = net.add_host("a")
        b = net.add_host("b")
        net.connect(a, segment, ["192.0.2.1"])
        net.connect(b, segment, ["192.0.2.2"])
        capture = a.start_capture()
        packet = Packet(src="192.0.2.1", dst="192.0.2.2",
                        protocol=Protocol.UDP, sport=1, dport=2)
        a.send(packet)
        net.sim.run()
        capture.stop()
        a.send(Packet(src="192.0.2.1", dst="192.0.2.2",
                      protocol=Protocol.UDP, sport=1, dport=2))
        net.sim.run()
        assert len(capture) == 1
        capture.start()
        a.send(Packet(src="192.0.2.1", dst="192.0.2.2",
                      protocol=Protocol.UDP, sport=1, dport=2))
        net.sim.run()
        assert len(capture) == 2

    def test_capture_clear_and_timespan(self):
        net = Network(seed=0)
        segment = net.add_segment("lab")
        a = net.add_host("a")
        net.connect(a, segment, ["192.0.2.1"])
        capture = a.start_capture()
        assert capture.timespan() is None
        net.sim.schedule(1.0, a.send, Packet(
            src="192.0.2.1", dst="192.0.2.9", protocol=Protocol.UDP,
            sport=1, dport=2))
        net.sim.run()
        start, end = capture.timespan()
        assert start == end == pytest.approx(1.0)
        capture.clear()
        assert len(capture) == 0

    def test_render_with_limit(self):
        net = Network(seed=0)
        segment = net.add_segment("lab")
        a = net.add_host("a")
        net.connect(a, segment, ["192.0.2.1"])
        capture = a.start_capture()
        for index in range(5):
            a.send(Packet(src="192.0.2.1", dst="192.0.2.9",
                          protocol=Protocol.UDP, sport=1, dport=2))
        net.sim.run()
        text = capture.render(limit=2)
        assert "3 more frames" in text
