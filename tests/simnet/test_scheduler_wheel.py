"""Differential tests for the timer-wheel scheduler.

The wheel replaced a plain ``heapq`` of ``(when, seq)`` tuples; its
observable contract is *identical* execution order.  These tests pin
that contract against a reference implementation under randomized
schedule/cancel/reschedule workloads, plus regression tests for the
bookkeeping surfaces (``peek``, ``pending_count``) and the bounded-run
edge cases the wheel's drain state makes subtle (stopping mid-bucket,
then receiving an *earlier* schedule before the next run).
"""

import heapq
import random

import pytest

from repro.simnet import Simulator


DELAYS = [0.0, 0.0, 1e-6, 0.001, 0.001, 0.0101, 0.25, 3.0]


def _spawns_child(tag) -> bool:
    """Pure function of the tag: does its callback schedule more work?

    Nested scheduling (timers arming timers) is the dominant real
    pattern; deriving the decision from the tag alone lets the wheel
    and the oracle apply it independently under their own clocks.
    """
    return random.Random(f"spawn:{tag}").random() < 0.4


def _child_delay(tag) -> float:
    return random.Random(f"delay:{tag}").choice(DELAYS)


class HeapOracle:
    """The old scheduler's semantics: a heap of (when, seq) entries."""

    def __init__(self) -> None:
        self._heap = []
        self._seq = 0
        self.now = 0.0
        self.trace = []

    def schedule(self, delay: float, tag) -> int:
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, [self.now + delay, seq, tag, True])
        return seq

    def cancel(self, seq: int) -> None:
        for entry in self._heap:
            if entry[1] == seq:
                entry[3] = False
                return

    def run(self, until=None) -> None:
        while self._heap:
            when, seq, tag, live = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            if not live:
                continue
            self.now = when
            self.trace.append((round(when, 9), tag))
            if _spawns_child(tag):
                self.schedule(_child_delay(tag), ("child", tag))
        if until is not None:
            self.now = max(self.now, until)


def _run_workload(seed: int, ops: int = 400):
    """Apply one random workload to both schedulers, return the traces."""
    rng = random.Random(seed)
    sim = Simulator(seed=0)
    oracle = HeapOracle()
    trace = []
    handles = {}  # top-level tag -> wheel handle
    oracle_seqs = {}  # top-level tag -> oracle sequence number

    def fire(tag):
        trace.append((round(sim.now, 9), tag))
        if _spawns_child(tag):
            sim.schedule(_child_delay(tag), fire, ("child", tag))

    live = []
    for tag in range(ops):
        action = rng.random()
        if action < 0.70 or not live:
            delay = rng.choice(DELAYS)
            handles[tag] = sim.schedule(delay, fire, tag)
            oracle_seqs[tag] = oracle.schedule(delay, tag)
            live.append(tag)
        elif action < 0.90:
            victim = live.pop(rng.randrange(len(live)))
            handles[victim].cancel()
            oracle.cancel(oracle_seqs[victim])
        else:
            # Bounded run to a random horizon: exercises mid-bucket
            # stops and the spill-on-reentry normalization.
            horizon = sim.now + rng.choice([0.0, 1e-4, 0.005, 0.5])
            sim.run(until=horizon)
            oracle.run(until=horizon)
            assert sim.now == pytest.approx(oracle.now)
    sim.run()
    oracle.run()
    return trace, oracle.trace


@pytest.mark.parametrize("seed", range(12))
def test_wheel_matches_heap_oracle(seed):
    """Same tags, same order, same timestamps as the heapq reference."""
    wheel_trace, heap_trace = _run_workload(seed)
    assert wheel_trace == heap_trace
    assert len(wheel_trace) > 0


def test_same_timestamp_fifo_across_wheel_boundaries():
    """Equal-time callbacks run in schedule order even when they land
    in different wheel structures (bucket vs. current due run)."""
    sim = Simulator()
    order = []
    sim.schedule(0.5, order.append, "a")
    sim.schedule(0.5, order.append, "b")

    def inject():
        # Scheduled *during* the t=0.5 drain: same timestamp, must run
        # after everything already queued for t=0.5.
        sim.schedule(0.0, order.append, "d")

    sim.schedule(0.5, lambda: (order.append("c"), inject()))
    sim.run()
    assert order == ["a", "b", "c", "d"]


class TestBookkeepingAfterCancel:
    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule(0.1 * i, lambda: None) for i in range(10)]
        assert sim.pending_count == 10
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending_count == 5
        sim.run()
        assert sim.pending_count == 0

    def test_peek_skips_cancelled_head(self):
        sim = Simulator()
        first = sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        assert sim.peek() == pytest.approx(0.1)
        first.cancel()
        assert sim.peek() == pytest.approx(0.2)

    def test_peek_empty_after_all_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        assert sim.peek() is None
        assert sim.pending_count == 0

    def test_cancel_is_idempotent_and_post_run_safe(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.1, fired.append, 1)
        sim.run()
        assert fired == [1]
        handle.cancel()  # executed call: must be a no-op
        handle.cancel()
        assert sim.pending_count == 0

    def test_cancel_during_callback_suppresses_same_time_peer(self):
        sim = Simulator()
        fired = []
        holder = []
        # Scheduled before its peer (lower sequence number), so at
        # t=0.5 the canceller runs first and unlinks the peer from the
        # *current* due run — the hardest cancel case.
        sim.schedule(0.5, lambda: holder[0].cancel())
        holder.append(sim.schedule(0.5, fired.append, "peer"))
        sim.schedule(0.4, fired.append, "early")
        sim.run()
        assert fired == ["early"]


class TestBoundedRunEdges:
    def test_stop_mid_bucket_then_resume(self):
        """A bounded run that stops inside a due bucket resumes exactly
        where it left off."""
        sim = Simulator()
        order = []
        sim.schedule(0.10, order.append, "a")
        sim.schedule(0.30, order.append, "b")
        sim.run(until=0.2)
        assert order == ["a"]
        assert sim.now == pytest.approx(0.2)
        sim.run()
        assert order == ["a", "b"]

    def test_earlier_schedule_between_bounded_runs(self):
        """External scheduling may introduce a tick *earlier* than the
        wheel's current due run; the next run must spill and reorder."""
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "late")
        sim.run(until=0.5)
        sim.schedule(0.1, order.append, "early")  # now+0.1 = 0.6 < 1.0
        sim.run()
        assert order == ["early", "late"]

    def test_drained_bounded_run_advances_clock(self):
        sim = Simulator()
        sim.run(until=2.5)
        assert sim.now == pytest.approx(2.5)
        sim.schedule(0.25, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(2.75)
