"""Property-based tests for the netem model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet import (Family, NetemFilter, NetemQdisc, NetemRule,
                          NetemSpec, Packet, Protocol, TrafficShaper)


def udp(src="192.0.2.1", dst="192.0.2.2", size=100):
    return Packet(src=src, dst=dst, protocol=Protocol.UDP,
                  sport=1000, dport=2000, payload=b"x" * size)


_delays = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
_times = st.lists(st.floats(min_value=0.0, max_value=10.0,
                            allow_nan=False), min_size=1, max_size=30)


class TestQdiscProperties:
    @given(_delays, _times)
    def test_no_jitter_preserves_order(self, delay, times):
        qdisc = NetemQdisc(NetemSpec(delay=delay), random.Random(0))
        departures = []
        for now in sorted(times):
            planned = qdisc.plan(udp(), now)
            assert planned is not None
            departures.append(planned)
        assert departures == sorted(departures)

    @given(_delays, st.floats(min_value=0.0, max_value=0.5,
                              allow_nan=False), _times)
    def test_delivery_never_before_base_delay(self, delay, jitter, times):
        spec = NetemSpec(delay=delay, jitter=min(jitter, delay) if delay
                         else 0.0)
        qdisc = NetemQdisc(spec, random.Random(1))
        for now in times:
            planned = qdisc.plan(udp(), now)
            assert planned is not None
            assert planned >= now  # never delivered into the past

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_loss_rate_within_statistical_bounds(self, loss):
        qdisc = NetemQdisc(NetemSpec(loss=loss), random.Random(2))
        total = 400
        dropped = sum(1 for _ in range(total)
                      if qdisc.plan(udp(), 0.0) is None)
        expected = loss * total
        assert abs(dropped - expected) < 4 * (total ** 0.5) + 1

    @given(st.integers(min_value=1, max_value=20))
    def test_rate_serialization_is_cumulative(self, count):
        rate = 80_000.0  # 10 kB/s
        qdisc = NetemQdisc(NetemSpec(rate_bps=rate), random.Random(3))
        packet = udp(size=100)
        serialization = packet.size * 8.0 / rate
        departures = [qdisc.plan(udp(size=100), 0.0)
                      for _ in range(count)]
        for index, departure in enumerate(departures):
            assert departure == pytest.approx(
                (index + 1) * serialization, rel=1e-6)

    def test_statistics_counters(self):
        qdisc = NetemQdisc(NetemSpec(loss=0.5), random.Random(4))
        for _ in range(100):
            qdisc.plan(udp(), 0.0)
        assert qdisc.packets_seen == 100
        assert 20 < qdisc.packets_dropped < 80


class TestFilters:
    def test_family_filter(self):
        v6_only = NetemFilter.for_family(Family.V6)
        assert v6_only.matches(udp("2001:db8::1", "2001:db8::2"))
        assert not v6_only.matches(udp())

    def test_address_filters(self):
        by_dst = NetemFilter(dst_addresses=["192.0.2.2"])
        assert by_dst.matches(udp())
        assert not by_dst.matches(udp(dst="192.0.2.3"))
        by_src = NetemFilter(src_addresses=["192.0.2.9"])
        assert not by_src.matches(udp())

    def test_protocol_filter(self):
        tcp_only = NetemFilter(protocol=Protocol.TCP)
        assert not tcp_only.matches(udp())

    def test_predicate_filter(self):
        big = NetemFilter(predicate=lambda p: p.size > 1000)
        assert not big.matches(udp(size=10))
        assert big.matches(udp(size=2000))

    def test_match_all(self):
        assert NetemFilter.match_all().matches(udp())

    def test_combined_criteria_all_required(self):
        combined = NetemFilter(family=Family.V4,
                               dst_addresses=["192.0.2.2"],
                               protocol=Protocol.UDP)
        assert combined.matches(udp())
        assert not combined.matches(udp(dst="192.0.2.7"))


class TestShaper:
    def test_unmatched_packets_pass_through(self):
        shaper = TrafficShaper(random.Random(5))
        shaper.add_rule(NetemRule(spec=NetemSpec(delay=1.0),
                                  filter=NetemFilter.for_family(Family.V6)))
        assert shaper.plan(udp(), now=5.0) == 5.0

    def test_rules_listable(self):
        shaper = TrafficShaper(random.Random(6))
        shaper.delay_family(Family.V6, 0.25, name="v6-delay")
        assert len(shaper.rules) == 1
        assert shaper.rules[0].name == "v6-delay"

    @given(st.lists(st.floats(min_value=0.001, max_value=1.0,
                              allow_nan=False), min_size=1, max_size=4))
    def test_first_match_wins_property(self, delays):
        shaper = TrafficShaper(random.Random(7))
        for delay in delays:
            shaper.add_rule(NetemRule(spec=NetemSpec(delay=delay)))
        planned = shaper.plan(udp(), now=0.0)
        assert planned == pytest.approx(delays[0])
