"""Tests for topology, forwarding, netem shaping, and captures."""

import pytest

from repro.simnet import (Direction, Family, NetemFilter, NetemRule,
                          NetemSpec, Network, NoRouteError, Packet,
                          Protocol, TCPFlags)


def make_pair(seed=0):
    """Two dual-stack hosts on one segment (the local testbed shape)."""
    net = Network(seed=seed)
    segment = net.add_segment("lab", propagation_delay=0.0001)
    client = net.add_host("client")
    server = net.add_host("server")
    net.connect(client, segment, ["192.0.2.1", "2001:db8::1"])
    net.connect(server, segment, ["192.0.2.2", "2001:db8::2"])
    return net, client, server


def udp_packet(src, dst, payload=b"x"):
    return Packet(src=src, dst=dst, protocol=Protocol.UDP,
                  sport=1111, dport=2222, payload=payload)


class TestTopology:
    def test_dual_stack_detection(self):
        _, client, server = make_pair()
        assert client.is_dual_stack()
        assert server.is_dual_stack()

    def test_route_picks_family_interface(self):
        _, client, _ = make_pair()
        iface = client.route("2001:db8::2")
        assert iface.addresses_of(Family.V6)

    def test_no_route_for_missing_family(self):
        net = Network()
        segment = net.add_segment("lab")
        v4only = net.add_host("v4only")
        net.connect(v4only, segment, ["192.0.2.7"])
        with pytest.raises(NoRouteError):
            v4only.route("2001:db8::2")

    def test_source_address_selection(self):
        _, client, _ = make_pair()
        assert str(client.source_address_for("192.0.2.2")) == "192.0.2.1"
        assert str(client.source_address_for("2001:db8::2")) == "2001:db8::1"

    def test_duplicate_address_on_segment_rejected(self):
        net = Network()
        segment = net.add_segment("lab")
        a = net.add_host("a")
        b = net.add_host("b")
        net.connect(a, segment, ["192.0.2.1"])
        with pytest.raises(ValueError):
            net.connect(b, segment, ["192.0.2.1"])

    def test_duplicate_host_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(ValueError):
            net.add_host("a")


class TestForwarding:
    def test_delivery_between_hosts(self):
        net, client, server = make_pair()
        received = []
        server.register_handler(
            Protocol.UDP, lambda pkt, iface: received.append(pkt))
        client.send(udp_packet("192.0.2.1", "192.0.2.2"))
        net.sim.run()
        assert len(received) == 1
        assert str(received[0].src) == "192.0.2.1"

    def test_unknown_destination_blackholes(self):
        net, client, _ = make_pair()
        segment = net.segments["lab"]
        client.send(udp_packet("192.0.2.1", "192.0.2.99"))
        net.sim.run()
        assert segment.dropped_unknown_destination == 1
        assert segment.forwarded == 0

    def test_propagation_delay_applied(self):
        net, client, server = make_pair()
        arrival = []
        server.register_handler(
            Protocol.UDP, lambda pkt, iface: arrival.append(net.sim.now))
        client.send(udp_packet("192.0.2.1", "192.0.2.2"))
        net.sim.run()
        assert arrival == [pytest.approx(0.0001)]

    def test_mixed_family_packet_rejected(self):
        with pytest.raises(ValueError):
            Packet(src="192.0.2.1", dst="2001:db8::2",
                   protocol=Protocol.UDP, sport=1, dport=2)


class TestNetemShaping:
    def test_family_delay_applies_only_to_that_family(self):
        net, client, server = make_pair()
        arrivals = {}
        server.register_handler(
            Protocol.UDP,
            lambda pkt, iface: arrivals.setdefault(pkt.family, net.sim.now))
        # Delay IPv6 on the *server* ingress, like netem on the server host.
        server_iface = server.interfaces["eth0"]
        server_iface.ingress.delay_family(Family.V6, 0.250)
        client.send(udp_packet("192.0.2.1", "192.0.2.2"))
        client.send(udp_packet("2001:db8::1", "2001:db8::2"))
        net.sim.run()
        assert arrivals[Family.V4] == pytest.approx(0.0001)
        assert arrivals[Family.V6] == pytest.approx(0.2501)

    def test_loss_drops_packets_deterministically_by_seed(self):
        net, client, server = make_pair(seed=1)
        got = []
        server.register_handler(
            Protocol.UDP, lambda pkt, iface: got.append(pkt))
        iface = client.interfaces["eth0"]
        iface.egress.add_rule(NetemRule(spec=NetemSpec(loss=0.5)))
        for _ in range(100):
            client.send(udp_packet("192.0.2.1", "192.0.2.2"))
        net.sim.run()
        assert 30 < len(got) < 70  # ~50 % with seed-determined draws

    def test_rate_limit_serializes(self):
        net, client, server = make_pair()
        arrivals = []
        server.register_handler(
            Protocol.UDP, lambda pkt, iface: arrivals.append(net.sim.now))
        iface = client.interfaces["eth0"]
        # 8 kbit/s: a 28-byte-header + 100-byte packet takes 128 ms.
        iface.egress.add_rule(NetemRule(spec=NetemSpec(rate_bps=8000)))
        client.send(udp_packet("192.0.2.1", "192.0.2.2", payload=b"a" * 100))
        client.send(udp_packet("192.0.2.1", "192.0.2.2", payload=b"a" * 100))
        net.sim.run()
        assert len(arrivals) == 2
        gap = arrivals[1] - arrivals[0]
        assert gap == pytest.approx(0.128, abs=1e-6)

    def test_first_matching_rule_wins(self):
        net, client, server = make_pair()
        arrivals = []
        server.register_handler(
            Protocol.UDP, lambda pkt, iface: arrivals.append(net.sim.now))
        iface = client.interfaces["eth0"]
        iface.egress.add_rule(NetemRule(
            spec=NetemSpec(delay=0.100),
            filter=NetemFilter.for_family(Family.V4)))
        iface.egress.add_rule(NetemRule(spec=NetemSpec(delay=0.500)))
        client.send(udp_packet("192.0.2.1", "192.0.2.2"))
        net.sim.run()
        assert arrivals[0] == pytest.approx(0.1001)

    def test_shaper_clear_removes_rules(self):
        net, client, server = make_pair()
        arrivals = []
        server.register_handler(
            Protocol.UDP, lambda pkt, iface: arrivals.append(net.sim.now))
        iface = client.interfaces["eth0"]
        iface.egress.delay_family(Family.V4, 1.0)
        iface.egress.clear()
        client.send(udp_packet("192.0.2.1", "192.0.2.2"))
        net.sim.run()
        assert arrivals[0] == pytest.approx(0.0001)

    def test_jitter_requires_valid_spec(self):
        with pytest.raises(ValueError):
            NetemSpec(delay=-1.0)
        with pytest.raises(ValueError):
            NetemSpec(loss=1.5)
        with pytest.raises(ValueError):
            NetemSpec(rate_bps=0)

    def test_delay_ms_constructor(self):
        assert NetemSpec.delay_ms(250).delay == pytest.approx(0.250)


class TestCapture:
    def test_capture_records_both_directions(self):
        net, client, server = make_pair()
        server.register_handler(Protocol.UDP, lambda pkt, iface: None)
        capture = client.start_capture()
        client.send(udp_packet("192.0.2.1", "192.0.2.2"))
        # Server replies.
        def reply(pkt, iface):
            server.send(Packet(payload=b"r", **pkt.reply_template()))
        server_capture = server.start_capture()
        net.sim.run()
        out = [f for f in capture if f.direction is Direction.OUT]
        assert len(out) == 1
        assert len(server_capture) == 1  # inbound at server

    def test_capture_timestamps_match_send_time(self):
        net, client, server = make_pair()
        capture = client.start_capture()
        net.sim.schedule(1.0, client.send,
                         udp_packet("192.0.2.1", "192.0.2.2"))
        net.sim.run()
        assert capture.frames[0].timestamp == pytest.approx(1.0)

    def test_stopped_capture_records_nothing(self):
        net, client, _ = make_pair()
        capture = client.start_capture()
        client.stop_capture(capture)
        client.send(udp_packet("192.0.2.1", "192.0.2.2"))
        net.sim.run()
        assert len(capture) == 0

    def test_connection_attempt_query(self):
        net, client, server = make_pair()
        capture = client.start_capture()
        syn = Packet(src="192.0.2.1", dst="192.0.2.2",
                     protocol=Protocol.TCP, sport=5555, dport=80,
                     flags=TCPFlags.SYN)
        client.send(syn)
        net.sim.run()
        attempts = capture.connection_attempts(family=Family.V4)
        assert len(attempts) == 1
        assert capture.first_connection_attempt(Family.V6) is None

    def test_render_produces_tcpdump_like_lines(self):
        net, client, _ = make_pair()
        capture = client.start_capture()
        client.send(udp_packet("192.0.2.1", "192.0.2.2"))
        net.sim.run()
        text = capture.render()
        assert "192.0.2.1.1111 > 192.0.2.2.2222" in text
