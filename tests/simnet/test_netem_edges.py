"""netem edge cases: reorder-gap boundary, jitter correlation,
rate-limit serialization, rule/filter family matching."""

import random

import pytest

from repro.simnet import (Family, NetemFilter, NetemQdisc, NetemRule,
                          NetemSpec, Packet, Protocol, TrafficShaper)


def tcp(src="192.0.2.1", dst="192.0.2.2", size=100):
    return Packet(src=src, dst=dst, protocol=Protocol.TCP,
                  sport=1000, dport=2000, payload=b"x" * size)


def tcp6(size=100):
    return tcp(src="2001:db8::1", dst="2001:db8::2", size=size)


class TestReorderGapBoundary:
    def reordering_qdisc(self, delay, gap):
        return NetemQdisc(NetemSpec(delay=delay, reorder_probability=1.0,
                                    reorder_gap=gap), random.Random(0))

    def test_reordered_packet_jumps_to_the_gap(self):
        qdisc = self.reordering_qdisc(delay=0.200, gap=0.001)
        assert qdisc.plan(tcp(), now=5.0) == pytest.approx(5.001)
        assert qdisc.packets_reordered == 1

    def test_gap_larger_than_delay_clamps_to_delay(self):
        # min(delay, gap): the "overtaking" packet can never leave
        # later than the queue it is overtaking.
        qdisc = self.reordering_qdisc(delay=0.0005, gap=0.010)
        assert qdisc.plan(tcp(), now=5.0) == pytest.approx(5.0005)

    def test_gap_equal_to_delay_is_the_boundary(self):
        qdisc = self.reordering_qdisc(delay=0.001, gap=0.001)
        assert qdisc.plan(tcp(), now=0.0) == pytest.approx(0.001)

    def test_later_traffic_never_departs_before_the_overtaker(self):
        spec = NetemSpec(delay=0.200, reorder_probability=0.5,
                         reorder_gap=0.001)
        qdisc = NetemQdisc(spec, random.Random(7))
        departures = [qdisc.plan(tcp(), now=0.01 * index)
                      for index in range(50)]
        assert qdisc.packets_reordered > 0
        # Non-reordered packets keep FIFO order among themselves:
        # each departs no earlier than the previous maximum minus the
        # explicitly overtaking ones.
        in_order = [d for index, d in enumerate(departures)
                    if d >= 0.01 * index + spec.delay]
        assert in_order == sorted(in_order)


class TestJitterCorrelation:
    def successive_jitter(self, correlation, samples=300):
        spec = NetemSpec(delay=0.100, jitter=0.050,
                         jitter_correlation=correlation)
        qdisc = NetemQdisc(spec, random.Random(42))
        return [qdisc.plan(tcp(), now=0.0) for _ in range(samples)]

    def test_correlation_smooths_successive_samples(self):
        uncorrelated = self.successive_jitter(0.0)
        correlated = self.successive_jitter(0.9)

        def mean_step(values):
            return sum(abs(b - a) for a, b in zip(values, values[1:])) \
                / (len(values) - 1)

        assert mean_step(correlated) < mean_step(uncorrelated) * 0.5

    def test_correlated_jitter_stays_within_bounds(self):
        spec = NetemSpec(delay=0.100, jitter=0.050,
                         jitter_correlation=0.8)
        qdisc = NetemQdisc(spec, random.Random(3))
        for _ in range(500):
            planned = qdisc.plan(tcp(), now=1.0)
            assert 1.0 + 0.050 <= planned <= 1.0 + 0.150

    def test_correlation_bounds_validated(self):
        with pytest.raises(ValueError):
            NetemSpec(jitter=0.01, jitter_correlation=1.0)
        with pytest.raises(ValueError):
            NetemSpec(jitter=0.01, jitter_correlation=-0.1)


class TestRateLimitSerialization:
    RATE = 8_000.0  # 1 kB/s

    def test_busy_horizon_resets_after_idle(self):
        qdisc = NetemQdisc(NetemSpec(rate_bps=self.RATE), random.Random(1))
        serialization = tcp(size=100).size * 8.0 / self.RATE
        first = qdisc.plan(tcp(size=100), now=0.0)
        assert first == pytest.approx(serialization)
        # Long idle gap: serialization restarts from `now`, it does
        # not accumulate from the stale horizon.
        later = qdisc.plan(tcp(size=100), now=10.0)
        assert later == pytest.approx(10.0 + serialization)

    def test_back_to_back_packets_queue_behind_each_other(self):
        qdisc = NetemQdisc(NetemSpec(rate_bps=self.RATE), random.Random(1))
        serialization = tcp(size=100).size * 8.0 / self.RATE
        departures = [qdisc.plan(tcp(size=100), now=0.0)
                      for _ in range(4)]
        for index, departure in enumerate(departures):
            assert departure == pytest.approx(
                (index + 1) * serialization)

    def test_size_scales_serialization_delay(self):
        qdisc = NetemQdisc(NetemSpec(rate_bps=self.RATE), random.Random(1))
        small = qdisc.plan(tcp(size=50), now=0.0)
        qdisc_big = NetemQdisc(NetemSpec(rate_bps=self.RATE),
                               random.Random(1))
        big = qdisc_big.plan(tcp(size=500), now=0.0)
        # Payload is only part of Packet.size (headers add on), but
        # 10x the payload must serialize strictly slower.
        assert big > small

    def test_rate_composes_with_fixed_delay(self):
        delay = 0.250
        qdisc = NetemQdisc(NetemSpec(delay=delay, rate_bps=self.RATE),
                           random.Random(1))
        serialization = tcp(size=100).size * 8.0 / self.RATE
        assert qdisc.plan(tcp(size=100), now=0.0) == pytest.approx(
            serialization + delay)


class TestRuleFamilyMatching:
    def test_family_scoped_rule_leaves_other_family_untouched(self):
        shaper = TrafficShaper(random.Random(5))
        shaper.add_rule(NetemRule(spec=NetemSpec(delay=0.4),
                                  filter=NetemFilter.for_family(Family.V6)))
        assert shaper.plan(tcp6(), now=1.0) == pytest.approx(1.4)
        assert shaper.plan(tcp(), now=1.0) == 1.0  # untouched IPv4

    def test_first_matching_family_rule_wins(self):
        shaper = TrafficShaper(random.Random(5))
        shaper.add_rule(NetemRule(spec=NetemSpec(delay=0.1),
                                  filter=NetemFilter.for_family(Family.V6)))
        shaper.add_rule(NetemRule(spec=NetemSpec(delay=0.9),
                                  filter=NetemFilter.match_all()))
        assert shaper.plan(tcp6(), now=0.0) == pytest.approx(0.1)
        assert shaper.plan(tcp(), now=0.0) == pytest.approx(0.9)

    def test_family_and_protocol_must_both_match(self):
        v6_tcp_only = NetemFilter(family=Family.V6, protocol=Protocol.TCP)
        assert v6_tcp_only.matches(tcp6())
        udp6 = Packet(src="2001:db8::1", dst="2001:db8::2",
                      protocol=Protocol.UDP, sport=1, dport=2)
        assert not v6_tcp_only.matches(udp6)
        assert not v6_tcp_only.matches(tcp())

    def test_address_filter_implies_family(self):
        by_v6_dst = NetemFilter(dst_addresses=["2001:db8::2"])
        assert by_v6_dst.matches(tcp6())
        assert not by_v6_dst.matches(tcp())  # IPv4 dst never equals it

    def test_blackhole_spec_drops_every_matching_packet(self):
        qdisc = NetemQdisc(NetemSpec(loss=1.0), random.Random(9))
        assert all(qdisc.plan(tcp6(), now=float(i)) is None
                   for i in range(50))
        assert qdisc.packets_dropped == 50

    def test_blackhole_does_not_consume_the_shared_rng(self):
        """Total loss is deterministic, so it must not perturb the
        random stream shared with the interface's other qdiscs."""
        rng = random.Random(9)
        qdisc = NetemQdisc(NetemSpec(loss=1.0), rng)
        for i in range(50):
            qdisc.plan(tcp6(), now=float(i))
        assert rng.random() == random.Random(9).random()
        # Probabilistic loss, by contrast, draws one sample per packet.
        rng = random.Random(9)
        NetemQdisc(NetemSpec(loss=0.5), rng).plan(tcp6(), now=0.0)
        assert rng.random() != random.Random(9).random()
