"""Tests for the discrete-event kernel: clock, scheduling, events, processes."""

import pytest

from repro.simnet import (AnyOf, Event, EventAlreadyTriggered, Interrupt,
                          SimulationError, Simulator)
from repro.simnet.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_forward(self):
        clock = SimClock()
        clock.advance_to(2.5)
        assert clock.now == 2.5

    def test_advance_backwards_rejected(self):
        clock = SimClock(3.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_callback_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        called = []
        handle = sim.schedule(1.0, called.append, "x")
        handle.cancel()
        sim.run()
        assert called == []

    def test_run_until_bound(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "early")
        sim.schedule(5.0, seen.append, "late")
        sim.run(until=2.0)
        assert seen == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert seen == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(1.0, inner)

        def inner():
            times.append(sim.now)

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 2.0]

    def test_derive_rng_is_stable_and_label_dependent(self):
        sim_a = Simulator(seed=7)
        sim_b = Simulator(seed=7)
        assert (sim_a.derive_rng("x").random()
                == sim_b.derive_rng("x").random())
        assert (sim_a.derive_rng("x").random()
                != sim_a.derive_rng("y").random())


class TestEvents:
    def test_succeed_carries_value(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(42)
        sim.run()
        assert event.ok
        assert event.value == 42

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(EventAlreadyTriggered):
            event.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_timeout_fires_at_delay(self):
        sim = Simulator()
        timeout = sim.timeout(0.25, value="done")
        sim.run()
        assert sim.now == 0.25
        assert timeout.value == "done"

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Simulator().timeout(-1.0)

    def test_late_callback_on_processed_event_still_runs(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("v")
        sim.run()
        got = []
        event.add_callback(lambda ev: got.append(ev.value))
        sim.run()
        assert got == ["v"]


class TestConditions:
    def test_any_of_first_wins(self):
        sim = Simulator()
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(2.0, value="slow")
        race = AnyOf(sim, [fast, slow])
        result = sim.run_until(race)
        assert fast in result
        assert slow not in result
        assert sim.now == 1.0

    def test_any_of_failure_propagates(self):
        sim = Simulator()
        bad = sim.event()
        race = AnyOf(sim, [bad, sim.timeout(5.0)])
        bad.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run_until(race)

    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        events = [sim.timeout(t) for t in (1.0, 3.0, 2.0)]
        gather = sim.all_of(events)
        result = sim.run_until(gather)
        assert len(result) == 3
        assert sim.now == 3.0

    def test_empty_condition_triggers_immediately(self):
        sim = Simulator()
        gather = sim.all_of([])
        sim.run()
        assert gather.triggered


class TestProcesses:
    def test_process_sequences_timeouts(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append(sim.now)
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(0.5)
            trace.append(sim.now)
            return "finished"

        proc = sim.process(body())
        result = sim.run_until(proc)
        assert result == "finished"
        assert trace == [0.0, 1.0, 1.5]

    def test_process_receives_event_value(self):
        sim = Simulator()
        box = sim.event()

        def body():
            value = yield box
            return value * 2

        proc = sim.process(body())
        sim.schedule(1.0, box.succeed, 21)
        assert sim.run_until(proc) == 42

    def test_event_failure_raises_inside_process(self):
        sim = Simulator()
        box = sim.event()

        def body():
            try:
                yield box
            except ValueError as exc:
                return f"caught {exc}"

        proc = sim.process(body())
        sim.schedule(1.0, box.fail, ValueError("bad"))
        assert sim.run_until(proc) == "caught bad"

    def test_unhandled_process_crash_surfaces_in_run(self):
        sim = Simulator()

        def body():
            yield sim.timeout(1.0)
            raise RuntimeError("crash")

        sim.process(body())
        with pytest.raises(RuntimeError, match="crash"):
            sim.run()

    def test_concurrent_unhandled_failures_all_chained(self):
        """The regression: only the first unhandled exception was
        raised, the rest silently cleared.  Concurrent failures must
        stay reachable through the __context__ chain."""
        sim = Simulator()
        first = RuntimeError("first crash")
        second = ValueError("second crash")
        third = KeyError("third crash")

        def explode():
            sim.report_unhandled(first)
            sim.report_unhandled(second)
            sim.report_unhandled(third)

        sim.schedule(1.0, explode)
        with pytest.raises(RuntimeError, match="first crash") as excinfo:
            sim.run()
        assert excinfo.value.__context__ is second
        assert excinfo.value.__context__.__context__ is third
        # The queue of unhandled failures was drained, not leaked.
        sim.schedule(1.0, lambda: None)
        assert sim.run() == 2.0

    def test_duplicate_unhandled_failures_not_cycled(self):
        sim = Simulator()
        boom = RuntimeError("boom")

        def explode():
            sim.report_unhandled(boom)
            sim.report_unhandled(boom)

        sim.schedule(1.0, explode)
        with pytest.raises(RuntimeError, match="boom") as excinfo:
            sim.run()
        assert excinfo.value.__context__ is None

    def test_reported_cause_of_reported_wrapper_no_cycle(self):
        """Reporting a wrapper and then its own cause must not splice
        the cause into a self-referential __context__ cycle."""
        sim = Simulator()
        cause = OSError("root cause")
        primary = RuntimeError("wrapper")
        primary.__context__ = cause

        def explode():
            sim.report_unhandled(primary)
            sim.report_unhandled(cause)

        sim.schedule(1.0, explode)
        with pytest.raises(RuntimeError, match="wrapper") as excinfo:
            sim.run()
        assert excinfo.value.__context__ is cause
        assert cause.__context__ is None  # no self-cycle

    def test_chain_appends_after_existing_context(self):
        """A primary exception that already carries a __context__ gets
        concurrent failures appended at the chain's end, not spliced
        over the original cause."""
        sim = Simulator()
        cause = OSError("root cause")
        primary = RuntimeError("wrapper")
        primary.__context__ = cause
        extra = ValueError("concurrent")

        def explode():
            sim.report_unhandled(primary)
            sim.report_unhandled(extra)

        sim.schedule(1.0, explode)
        with pytest.raises(RuntimeError, match="wrapper") as excinfo:
            sim.run()
        assert excinfo.value.__context__ is cause
        assert cause.__context__ is extra

    def test_process_waiting_on_process(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(2.0)
            return "payload"

        def boss():
            result = yield sim.process(worker())
            return f"got {result}"

        proc = sim.process(boss())
        assert sim.run_until(proc) == "got payload"
        assert sim.now == 2.0

    def test_yielding_non_event_fails_process(self):
        sim = Simulator()

        def body():
            yield "not an event"

        proc = sim.process(body())
        proc.defused = True
        sim.run()
        assert not proc.ok
        assert isinstance(proc.exception, SimulationError)

    def test_interrupt_raises_inside_process(self):
        sim = Simulator()

        def body():
            try:
                yield sim.timeout(10.0)
            except Interrupt as exc:
                return f"interrupted by {exc.cause}"

        proc = sim.process(body())
        sim.schedule(1.0, proc.interrupt, "winner")
        assert sim.run_until(proc) == "interrupted by winner"
        assert sim.now == 1.0

    def test_uncaught_interrupt_is_clean_cancellation(self):
        sim = Simulator()

        def body():
            yield sim.timeout(10.0)

        proc = sim.process(body())
        sim.schedule(1.0, proc.interrupt)
        sim.run()
        assert proc.triggered
        assert not proc.ok
        assert isinstance(proc.exception, Interrupt)

    def test_interrupt_after_completion_is_noop(self):
        sim = Simulator()

        def body():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(body())
        sim.run()
        proc.interrupt()
        sim.run()
        assert proc.value == "done"

    def test_run_until_detects_dry_queue(self):
        sim = Simulator()
        never = sim.event()
        with pytest.raises(SimulationError, match="ran dry"):
            sim.run_until(never)
