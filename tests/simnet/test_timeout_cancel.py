"""Timeout.cancel: physical removal from the timer wheel."""

from repro.simnet import Simulator


class TestTimeoutCancel:
    def test_cancel_removes_pending_expiry(self):
        sim = Simulator()
        timer = sim.timeout(5.0)
        assert sim.pending_count == 1
        assert timer.cancel() is True
        assert sim.pending_count == 0
        sim.run()
        assert sim.now == 0.0  # nothing left to advance the clock
        assert not timer.triggered

    def test_cancelled_timeout_never_fires_callbacks(self):
        sim = Simulator()
        fired = []
        timer = sim.timeout(1.0)
        timer.add_callback(fired.append)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_expiry_is_a_noop(self):
        sim = Simulator()
        timer = sim.timeout(1.0)
        sim.run()
        assert timer.triggered
        assert timer.cancel() is False

    def test_double_cancel_reports_false(self):
        sim = Simulator()
        timer = sim.timeout(1.0)
        assert timer.cancel() is True
        assert timer.cancel() is False

    def test_cancel_leaves_other_timers_alone(self):
        sim = Simulator()
        keep = sim.timeout(2.0)
        drop = sim.timeout(1.0)
        drop.cancel()
        sim.run()
        assert sim.now == 2.0
        assert keep.triggered
        assert not drop.triggered
