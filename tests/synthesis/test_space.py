"""ScenarioSpace: quantization, identity, candidate compilation."""

import pytest

from repro.conformance import SYNTH_PREFIX, RFC8305Parameter
from repro.simnet.addr import Family
from repro.simnet.packet import Protocol
from repro.synthesis import Candidate, Dimension, ScenarioSpace
from repro.testbed.config import TestCaseKind


def neutral(space):
    return Candidate(tuple((d.name, d.values[0]) for d in space))


def with_value(space, **overrides):
    return Candidate(tuple(
        (d.name, overrides.get(d.name, d.values[0])) for d in space))


class TestDimension:
    def test_needs_values(self):
        with pytest.raises(ValueError, match="needs values"):
            Dimension("empty", ())

    def test_rejects_duplicate_values(self):
        with pytest.raises(ValueError, match="repeats values"):
            Dimension("dup", (0, 25, 25))

    def test_index_of_unknown_value_names_the_quantization(self):
        dim = Dimension("v6_delay_ms", (0, 25, 50))
        with pytest.raises(ValueError, match="quantized"):
            dim.index_of(30)


class TestCandidateIdentity:
    def test_digest_stable_across_declaration_order(self):
        a = Candidate((("x", 1), ("y", 2)))
        b = Candidate((("y", 2), ("x", 1)))
        assert a.digest == b.digest

    def test_digest_distinguishes_coordinates(self):
        a = Candidate((("x", 1), ("y", 2)))
        b = Candidate((("x", 1), ("y", 3)))
        assert a.digest != b.digest

    def test_name_carries_the_synth_prefix(self):
        space = ScenarioSpace.default()
        candidate = space.sample(0, 0)
        assert candidate.name.startswith(SYNTH_PREFIX)

    def test_label_lists_only_non_neutral_axes(self):
        space = ScenarioSpace.default()
        assert neutral(space).label(space) == "pristine"
        candidate = with_value(space, v6_delay_ms=100, service="h3")
        assert candidate.label(space) == "v6_delay_ms=100,service=h3"


class TestSampling:
    def test_sample_is_deterministic(self):
        space = ScenarioSpace.default()
        assert space.sample(7, 3) == space.sample(7, 3)

    def test_sample_prefix_stable_across_budgets(self):
        """Candidate i is identical under any budget reaching i — the
        denser-budget cache-replay guarantee."""
        space = ScenarioSpace.default()
        first = [space.sample(5, i) for i in range(4)]
        denser = [space.sample(5, i) for i in range(16)]
        assert denser[:4] == first

    def test_seed_changes_the_candidates(self):
        space = ScenarioSpace.default()
        a = [space.sample(0, i) for i in range(8)]
        b = [space.sample(1, i) for i in range(8)]
        assert a != b


class TestNeighbors:
    def test_one_step_moves_in_dimension_order(self):
        space = ScenarioSpace.default()
        candidate = neutral(space)
        moves = space.neighbors(candidate)
        # Every neutral coordinate sits at index 0: one +1 move per
        # dimension, nothing below the bound.
        assert len(moves) == len(space.dimensions)
        for dimension, move in zip(space.dimensions, moves):
            assert move.value(dimension.name) == dimension.values[1]

    def test_interior_point_moves_both_ways(self):
        space = ScenarioSpace.default()
        candidate = with_value(space, v6_delay_ms=100)
        moves = space.neighbors(candidate)
        delays = [m.value("v6_delay_ms") for m in moves
                  if m.value("v6_delay_ms") != 100]
        assert 50 in delays and 150 in delays


class TestCaseCompilation:
    def test_neutral_candidate_is_pristine(self):
        space = ScenarioSpace.default()
        case = space.case_for(neutral(space))
        assert case.kind is TestCaseKind.IMPAIRMENT
        assert case.impairments == ()
        assert case.service is None
        assert case.name.startswith(SYNTH_PREFIX)

    def test_v6_path_shaping_compiles_to_one_spec(self):
        space = ScenarioSpace.default()
        case = space.case_for(with_value(
            space, v6_delay_ms=100, v6_loss_pct=20, v6_rate_kbps=8))
        (spec,) = case.impairments
        assert spec.family is Family.V6
        assert spec.protocol is Protocol.TCP
        assert spec.delay_s == pytest.approx(0.100)
        assert spec.loss == pytest.approx(0.20)
        assert spec.rate_bps == pytest.approx(8000.0)

    def test_dns_dimensions_compile_to_rtype_holds(self):
        space = ScenarioSpace.default()
        case = space.case_for(with_value(
            space, aaaa_delay_ms=1000, a_delay_ms=500, dns_delay_ms=100))
        names = {spec.name for spec in case.impairments}
        assert names == {"synth-slow-resolver", "synth-aaaa-hold",
                         "synth-a-hold"}

    def test_dual_stage_candidate_composes_service_and_sortlist(self):
        """The combination no hand-written scenario has: an SVCB/h3
        service *and* a sortlist-demoted destination set."""
        space = ScenarioSpace.default()
        case = space.case_for(with_value(
            space, service="h3", sortlist_dest="ula"))
        assert case.service is not None
        assert "h3" in case.service.https_alpn
        assert case.service.quic_listener
        assert len(case.service.addresses) == 2
        assert case.service.addresses[0].startswith("fd00:")

    def test_blackhole_service_adds_quic_loss(self):
        space = ScenarioSpace.default()
        case = space.case_for(with_value(space, service="h3-blackhole"))
        (spec,) = case.impairments
        assert spec.protocol is Protocol.QUIC
        assert spec.loss == 1.0

    def test_every_sampled_candidate_compiles(self):
        """case_for is total over the space: every seeded sample
        yields a valid (validated) case."""
        space = ScenarioSpace.default()
        for index in range(64):
            candidate = space.sample(11, index)
            case = space.case_for(candidate)
            assert case.name == candidate.name


class TestParameterAttribution:
    def test_dominant_dimension_priority(self):
        space = ScenarioSpace.default()
        assert (space.parameter_for(with_value(space, sortlist_dest="ula"))
                is RFC8305Parameter.DESTINATION_SORTING)
        assert (space.parameter_for(with_value(space, service="h3"))
                is RFC8305Parameter.PROTOCOL_RACING)
        assert (space.parameter_for(with_value(space, service="https"))
                is RFC8305Parameter.SVCB_DISCOVERY)
        assert (space.parameter_for(with_value(space, a_delay_ms=500))
                is RFC8305Parameter.RESOLUTION_POLICY)
        assert (space.parameter_for(with_value(space, aaaa_delay_ms=500))
                is RFC8305Parameter.RESOLUTION_DELAY)
        assert (space.parameter_for(with_value(space, v6_loss_pct=30))
                is RFC8305Parameter.RETRY_ROBUSTNESS)
        assert (space.parameter_for(neutral(space))
                is RFC8305Parameter.CONNECTION_ATTEMPT_DELAY)

    def test_scenario_for_carries_provenance_description(self):
        space = ScenarioSpace.default()
        candidate = with_value(space, v6_delay_ms=100)
        scenario = space.scenario_for(candidate, "from seed 3")
        assert scenario.name == candidate.name
        assert scenario.description == "from seed 3"
        assert not scenario.adaptive
        assert scenario.case == space.case_for(candidate)
