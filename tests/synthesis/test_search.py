"""The synthesis loop: determinism, cache replay, promotion.

Pins the PR's acceptance criteria: byte-identical artifacts across
runs and across serial/parallel, zero-miss warm replay, a denser
refinement budget replaying overlapping probe keys from cache, and a
search that discovers ≥3 novel scenarios on which ≥2 registered
clients disagree.
"""

import pytest

from repro.clients.registry import resolve_profiles
from repro.experiments import Session, get_experiment
from repro.synthesis import (CandidateScore, Promoter, ScenarioSpace,
                             Scorer, SearchBudget, SearchStrategy,
                             SynthesisSearch, ablation_variants, rank)
from repro.testbed import CampaignStore

CLIENTS = "curl,wget,Chrome 130.0,Firefox 132.0,hev3-reference"
SMALL = {"synthesis_seeds": 5, "synthesis_rounds": 1,
         "synthesis_top": 2, "synthesis_neighbors": 2,
         "promote": 4, "clients": CLIENTS}


def session(store=None, seed=3, workers=None, **overrides):
    experiment = get_experiment("synthesize-scenarios")
    knobs = experiment.default_knobs()
    knobs.update(SMALL)
    knobs.update(overrides)
    return Session(seed=seed, workers=workers, store=store, knobs=knobs)


def build_search(profiles=("curl", "wget", "hev3-reference"), seed=3,
                 store=None, budget=None, limit=4):
    space = ScenarioSpace.default()
    resolved = [resolve_profiles(p)[0] for p in profiles]
    base = resolve_profiles("hev3-reference")[0]
    budget = budget or SearchBudget(seeds=4, rounds=1, top=2, neighbors=2)
    scorer = Scorer(space, resolved, seed=seed, store=store,
                    ablation_base=base)
    return SynthesisSearch(space, SearchStrategy(space, seed, budget),
                           scorer, Promoter(space, limit=limit))


class TestBudget:
    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError, match="seeds"):
            SearchBudget(seeds=0)
        with pytest.raises(ValueError, match="rounds"):
            SearchBudget(rounds=-1)
        with pytest.raises(ValueError, match="top"):
            SearchBudget(top=0)
        with pytest.raises(ValueError, match="neighbors"):
            SearchBudget(neighbors=0)


class TestStrategy:
    def test_seed_round_is_deduped_and_prefix_stable(self):
        space = ScenarioSpace.default()
        small = SearchStrategy(space, 3, SearchBudget(seeds=4))
        large = SearchStrategy(space, 3, SearchBudget(seeds=12))
        small_round = small.seed_round()
        large_round = large.seed_round()
        digests = [c.digest for c in large_round]
        assert len(set(digests)) == len(digests)
        assert large_round[: len(small_round)] == small_round

    def test_refine_proposes_unseen_neighbors_of_top_scorers(self):
        space = ScenarioSpace.default()
        strategy = SearchStrategy(
            space, 0, SearchBudget(seeds=4, top=1, neighbors=3))
        candidate = space.sample(0, 0)
        score = CandidateScore(candidate=candidate, signatures=(),
                               ablation_drift=(), disagreement=2,
                               failures=0)
        proposals = strategy.refine({candidate.digest: score})
        assert 0 < len(proposals) <= 3
        neighbor_digests = {n.digest
                            for n in space.neighbors(candidate)}
        for proposal in proposals:
            assert proposal.digest in neighbor_digests
            assert proposal.digest != candidate.digest


class TestRanking:
    def test_equal_totals_tie_break_by_digest(self):
        space = ScenarioSpace.default()
        a, b = space.sample(0, 0), space.sample(0, 1)
        assert a.digest != b.digest
        score_a = CandidateScore(candidate=a, signatures=(),
                                 ablation_drift=(), disagreement=2,
                                 failures=0)
        score_b = CandidateScore(candidate=b, signatures=(),
                                 ablation_drift=(), disagreement=2,
                                 failures=0)
        assert score_a.total == score_b.total
        expected = sorted((score_a, score_b),
                          key=lambda s: s.candidate.digest)
        assert rank([score_a, score_b]) == expected
        assert rank([score_b, score_a]) == expected

    def test_disagreement_dominates_the_score(self):
        space = ScenarioSpace.default()
        loud = CandidateScore(candidate=space.sample(0, 0),
                              signatures=(), ablation_drift=(),
                              disagreement=3, failures=0)
        subtle = CandidateScore(
            candidate=space.sample(0, 1), signatures=(),
            ablation_drift=("resolution", "sorting", "racing"),
            disagreement=2, failures=9)
        assert rank([subtle, loud])[0] is loud


class TestAblations:
    def test_three_single_stage_variants(self):
        base = resolve_profiles("hev3-reference")[0]
        variants = ablation_variants(base)
        stages = [stage for stage, _ in variants]
        assert stages == ["resolution", "sorting", "racing"]
        by_stage = dict(variants)
        assert (by_stage["resolution"].stack.resolution.use_svcb
                is not base.stack.resolution.use_svcb)
        assert (by_stage["sorting"].stack.sorting.sortlist
                != base.stack.sorting.sortlist)
        assert (by_stage["racing"].stack.racing.race_quic
                is not base.stack.racing.race_quic)
        # Distinct full names → distinct store keys and records.
        names = {v.full_name for _, v in variants} | {base.full_name}
        assert len(names) == 4


class TestScorer:
    def test_score_is_a_pure_function_of_records(self):
        search = build_search()
        candidates = search.strategy.seed_round()
        scorer = search.scorer
        runner = scorer.runner_for(candidates)
        records = list(runner.stream())
        once = scorer.score_records(candidates, records)
        twice = scorer.score_records(candidates, records)
        assert once == twice
        assert once == scorer.score_candidates(candidates)

    def test_record_count_mismatch_raises(self):
        search = build_search()
        candidates = search.strategy.seed_round()
        with pytest.raises(ValueError, match="expected"):
            search.scorer.score_records(candidates, [])

    def test_signatures_cover_registered_clients_in_order(self):
        search = build_search()
        (score,) = search.scorer.score_candidates(
            search.strategy.seed_round()[:1])
        clients = [client for client, _ in score.signatures]
        assert clients == [p.full_name for p in search.scorer.profiles]


class TestSearchExecution:
    def test_search_is_deterministic(self):
        a = build_search().execute()
        b = build_search().execute()
        assert a == b

    def test_serial_equals_parallel(self, tmp_path):
        serial = build_search(store=CampaignStore(tmp_path / "s"))
        parallel = build_search(store=CampaignStore(tmp_path / "p"))
        assert serial.execute() == parallel.execute(workers=2)

    def test_warm_store_replays_with_zero_misses(self, tmp_path):
        cold_store = CampaignStore(tmp_path)
        cold = build_search(store=cold_store).execute()
        assert cold_store.stats.stores > 0
        warm_store = CampaignStore(tmp_path)
        warm = build_search(store=warm_store).execute()
        assert warm == cold
        assert warm_store.stats.misses == 0
        assert warm_store.stats.hits > 0

    def test_denser_budget_replays_overlapping_keys(self, tmp_path):
        """The acceptance pin: a repeat run with a denser refinement
        budget replays every overlapping probe key from cache."""
        small = SearchBudget(seeds=4, rounds=1, top=2, neighbors=2)
        dense = SearchBudget(seeds=8, rounds=2, top=3, neighbors=3)
        build_search(store=CampaignStore(tmp_path),
                     budget=small).execute()
        dense_store = CampaignStore(tmp_path)
        build_search(store=dense_store, budget=dense).execute()
        assert dense_store.stats.hits > 0
        assert dense_store.stats.misses > 0  # and genuinely denser

    def test_discovers_three_novel_discriminators(self, tmp_path):
        """The acceptance pin: ≥3 promoted scenarios outside the
        hand-written battery on which ≥2 registered clients disagree."""
        search = build_search(
            profiles=("curl", "wget", "Chrome 130.0", "Firefox 132.0",
                      "hev3-reference"),
            store=CampaignStore(tmp_path),
            budget=SearchBudget(seeds=6, rounds=1, top=2, neighbors=2),
            limit=6)
        result = search.execute()
        assert len(result.promotions) >= 3
        hand_written = search.promoter.known
        for promotion in result.promotions:
            assert promotion.score.disagreement >= 2
            from repro.synthesis.promote import _case_identity

            assert _case_identity(promotion.scenario.case) \
                not in hand_written


class TestPlan:
    def test_plan_is_pure_on_a_cold_store(self, tmp_path):
        store = CampaignStore(tmp_path)
        keys = list(build_search(store=store).plan())
        assert keys
        assert store.stats.stores == 0
        assert list(store.entries()) == []

    def test_cold_plan_is_the_seed_round(self, tmp_path):
        search = build_search(store=CampaignStore(tmp_path))
        seed_keys = list(search.scorer.runner_for(
            search.strategy.seed_round()).store_keys())
        assert list(search.plan()) == seed_keys

    def test_warm_plan_covers_the_whole_execution(self, tmp_path):
        cold_store = CampaignStore(tmp_path)
        build_search(store=cold_store).execute()
        on_disk = {key for key, _ in cold_store.entries()}
        warm_plan = set(build_search(
            store=CampaignStore(tmp_path)).plan())
        assert on_disk == warm_plan

    def test_gc_against_warm_plan_keeps_everything(self, tmp_path):
        store = CampaignStore(tmp_path)
        build_search(store=store).execute()
        live = set(build_search(store=CampaignStore(tmp_path)).plan())
        stats = CampaignStore(tmp_path).gc(live)
        assert stats.removed == 0
        assert stats.kept == len(live)
        replay_store = CampaignStore(tmp_path)
        build_search(store=replay_store).execute()
        assert replay_store.stats.misses == 0


class TestExperimentArtifacts:
    def test_rendered_artifact_is_byte_identical_and_summarized(
            self, tmp_path):
        experiment = get_experiment("synthesize-scenarios")
        a = experiment.run(session(store=CampaignStore(tmp_path / "a")))
        b = experiment.run(session(store=CampaignStore(tmp_path / "b"),
                                   workers=2))
        assert a.text == b.text
        assert "synthesis: evaluated=" in a.text
        assert "promoted_discriminating=" in a.text
        assert a.data["promotions"]
        for promotion in a.data["promotions"]:
            assert promotion["provenance"]["source"] == "synthesis"
            assert promotion["provenance"]["seed"] == 3
            assert promotion["score"]["disagreement"] >= 2

    def test_report_renders_battery_verdicts(self, tmp_path):
        experiment = get_experiment("synthesize-report")
        store = CampaignStore(tmp_path)
        knobs = {**SMALL, "clients": "curl,wget,hev3-reference"}
        artifact = experiment.run(session(store=store, **knobs))
        assert "synthesized scenario battery" in artifact.text
        assert artifact.data["fingerprints"]

    def test_bad_budget_knob_exits_with_a_named_error(self):
        experiment = get_experiment("synthesize-scenarios")
        with pytest.raises(SystemExit, match="seeds"):
            list(experiment.plan(session(synthesis_seeds=0)))
