"""Tests for client profiles, the registry, and iCPR egress models."""

import pytest

from repro.clients import (AKAMAI_EGRESS, CLOUDFLARE_EGRESS, Client,
                           ClientProfile, ICPREgressNode, all_profiles,
                           figure2_clients, get_profile,
                           local_testbed_clients, table2_clients)
from repro.clients.icpr import (measure_egress_cad,
                                measure_egress_dns_timeout)
from repro.core.params import ResolutionPolicy
from repro.dns import RdataType
from repro.simnet import Family
from repro.testbed.topology import LocalTestbed


class TestRegistry:
    def test_figure2_has_17_rows(self):
        assert len(figure2_clients()) == 17

    def test_table2_has_nine_clients(self):
        assert len(table2_clients()) == 9

    def test_lookup_by_name_and_version(self):
        profile = get_profile("Chrome", "88.0")
        assert profile.released == "01-2021"

    def test_lookup_latest_by_name(self):
        profile = get_profile("Firefox")
        assert profile.version == "132.0"

    def test_unknown_client_raises(self):
        with pytest.raises(KeyError):
            get_profile("NetPositive")
        with pytest.raises(KeyError):
            get_profile("Chrome", "999")

    def test_chromium_family_shares_behaviour(self):
        cads = {get_profile(n, v).params.connection_attempt_delay
                for n, v in (("Chrome", "88.0"), ("Chrome", "130.0"),
                             ("Edge", "90.0"), ("Chromium", "130.0"))}
        assert cads == {0.300}

    def test_labels_match_figure2_format(self):
        assert get_profile("Chrome", "130.0").label == \
            "Chrome (130.0 10-2024)"

    def test_mobile_profiles_excluded_from_local_tests(self):
        locals_ = {p.full_name for p in local_testbed_clients()}
        assert "Mobile Safari 17.6" not in locals_
        assert "Chrome Mobile 130.0" not in locals_
        assert "Safari 17.6" in locals_

    def test_profile_validation(self):
        from repro.core.params import HEParams

        with pytest.raises(ValueError):
            ClientProfile(name="X", version="1", released="01-2020",
                          engine_family="netscape", kind="browser",
                          params=HEParams())

    def test_safari_profile_is_full_hev2(self):
        safari = get_profile("Safari", "17.6")
        assert safari.params.dynamic_cad
        assert safari.params.resolution_delay == pytest.approx(0.050)
        assert safari.params.first_address_family_count == 2
        assert safari.implements_resolution_delay
        assert safari.nominal_cad is None  # dynamic

    def test_mobile_safari_caps_cad_at_1s(self):
        assert get_profile("Mobile Safari", "17.6").params.maximum_cad \
            == pytest.approx(1.0)

    def test_wget_has_no_he(self):
        wget = get_profile("wget", "1.21.3")
        assert not wget.implements_happy_eyeballs
        assert wget.nominal_cad is None

    def test_hev3_flag_changes_policy(self):
        chrome = get_profile("Chrome", "130.0")
        assert chrome.params.resolution_policy is ResolutionPolicy.WAIT_BOTH
        flagged = chrome.with_hev3_flag()
        assert flagged.params.resolution_policy is ResolutionPolicy.HE_V2
        assert flagged.params.resolution_delay == pytest.approx(0.050)

    def test_all_profiles_have_unique_keys(self):
        keys = [p.full_name for p in all_profiles()]
        assert len(keys) == len(set(keys))


class TestClientFetch:
    def test_fetch_returns_echoed_address(self):
        testbed = LocalTestbed(seed=51)
        client = Client(testbed.client, get_profile("curl", "7.88.1"),
                        testbed.resolver_addresses[:1])
        result = testbed.sim.run_until(
            client.fetch("www.he-test.example"))
        assert result.success
        assert result.used_family is Family.V6
        assert str(result.reported_address) == "2001:db8:1::1"

    def test_fetch_failure_carries_he_result(self):
        testbed = LocalTestbed(seed=52)
        hostname = testbed.add_domain("alldead", ["2001:db8:dead::1",
                                                  "203.0.113.7"])
        client = Client(testbed.client, get_profile("curl", "7.88.1"),
                        testbed.resolver_addresses[:1],
                        attempt_timeout=1.0)
        process = client.fetch(hostname)
        process.defused = True
        testbed.sim.run(until=20.0)
        result = process.value
        assert not result.success
        assert result.error is not None
        assert result.he.race is not None

    def test_firefox_outliers_are_rare_and_bounded(self):
        profile = get_profile("Firefox", "132.0")
        outliers = 0
        runs = 30
        for seed in range(runs):
            testbed = LocalTestbed(seed=1000 + seed)
            testbed.delay_ipv6_tcp(0.400)
            capture = testbed.start_client_capture()
            client = Client(testbed.client, profile,
                            testbed.resolver_addresses[:1])
            testbed.sim.run_until(client.fetch("www.he-test.example"))
            from repro.testbed.inference import infer_cad

            cad = infer_cad(capture)
            if cad > 0.260:
                outliers += 1
                assert cad <= 0.460  # bounded by outlier_extra_cad
        assert 0 < outliers < runs / 2  # rare but present


class TestICPR:
    def test_akamai_cad_crossover(self):
        outcomes = measure_egress_cad(AKAMAI_EGRESS, [100, 200], seed=1)
        assert outcomes[100] == "IPv6"
        assert outcomes[200] == "IPv4"

    def test_cloudflare_cad_crossover(self):
        outcomes = measure_egress_cad(CLOUDFLARE_EGRESS, [150, 250],
                                      seed=2)
        assert outcomes[150] == "IPv6"
        assert outcomes[250] == "IPv4"

    def test_operator_dns_timeouts(self):
        akamai = measure_egress_dns_timeout(AKAMAI_EGRESS,
                                            RdataType.AAAA)
        cloudflare = measure_egress_dns_timeout(CLOUDFLARE_EGRESS,
                                                RdataType.AAAA)
        assert akamai == pytest.approx(0.400, abs=0.020)
        assert cloudflare == pytest.approx(1.750, abs=0.050)

    def test_egress_hides_safari_features(self):
        """No RD, no address selection: HEv1-style via the relay."""
        assert AKAMAI_EGRESS.params().resolution_policy is \
            ResolutionPolicy.WAIT_BOTH
        assert AKAMAI_EGRESS.params().max_attempts_per_family == 1

    def test_proxied_fetch_returns_payload(self):
        testbed = LocalTestbed(seed=53)
        egress = ICPREgressNode(testbed.client, AKAMAI_EGRESS,
                                testbed.resolver_addresses[:1])
        result, reply = testbed.sim.run_until(
            egress.proxied_fetch("www.he-test.example"))
        assert result.success
        assert b"200 OK" in reply
        assert egress.connections_proxied == 1
