"""Tests for the iCPR relay hop (client -> egress -> target)."""

import pytest

from repro.clients import (AKAMAI_EGRESS, ICPREgressNode, ICPRRelayClient,
                           ICPRRelayService)
from repro.simnet import Family
from repro.testbed.topology import LocalTestbed


def build_relay_world(seed=0, v6_delay_ms=0):
    """Relay client and egress node both live on the lab segment."""
    testbed = LocalTestbed(seed=seed)
    if v6_delay_ms:
        testbed.delay_ipv6_tcp(v6_delay_ms / 1000.0)
    # The egress node is a separate host on the segment.
    egress_host = testbed.network.add_host("egress")
    testbed.network.connect(egress_host, testbed.segment,
                            ["192.0.2.200", "2001:db8:1::200"])
    egress = ICPREgressNode(egress_host, AKAMAI_EGRESS,
                            testbed.resolver_addresses[:1])
    relay = ICPRRelayService(egress).start()
    # The user's device only knows the relay.
    user_host = testbed.network.add_host("user-device")
    testbed.network.connect(user_host, testbed.segment,
                            ["192.0.2.201", "2001:db8:1::201"])
    client = ICPRRelayClient(user_host, "192.0.2.200")
    return testbed, client, egress, user_host


class TestRelay:
    def test_fetch_through_relay(self):
        testbed, client, egress, _ = build_relay_world(seed=1)
        ok, body = testbed.sim.run_until(
            client.fetch("www.he-test.example"))
        assert ok
        assert egress.connections_proxied == 1
        # The echoed address is the *egress node's*, not the user's:
        # the server never sees the relay client.
        assert b"192.0.2.200" in body or b"2001:db8:1::200" in body

    def test_user_never_contacts_target_directly(self):
        testbed, client, _, user_host = build_relay_world(seed=2)
        capture = user_host.start_capture()
        testbed.sim.run_until(client.fetch("www.he-test.example"))
        contacted = {str(frame.packet.dst) for frame in capture
                     if frame.direction.value == "out"}
        assert "192.0.2.10" not in contacted  # the web server's v4
        assert "2001:db8:1::10" not in contacted

    def test_relay_exposes_egress_cad_not_safaris(self):
        """Via iCPR the HE behaviour is Akamai's 150 ms CAD."""
        # 200 ms v6 delay: Safari (dynamic CAD 2 s) would stay on IPv6;
        # the Akamai egress (150 ms CAD) switches to IPv4.
        testbed, client, egress, _ = build_relay_world(seed=3,
                                                       v6_delay_ms=200)
        ok, _ = testbed.sim.run_until(client.fetch("www.he-test.example"))
        assert ok
        winning = egress.trace.of_kind(
            __import__("repro.core.events",
                       fromlist=["HEEventKind"]).HEEventKind.CONNECTION_WON)
        assert winning[-1].detail["family"] == "IPv4"

    def test_bad_request_aborted(self):
        testbed, client, _, user_host = build_relay_world(seed=4)

        def bad_client():
            attempt = user_host.tcp.connect("192.0.2.200", 4443)
            connection = yield attempt.established
            connection.send(b"GET / HTTP/1.1\r\n")
            from repro.transport.errors import ConnectionAborted

            try:
                yield connection.recv()
            except ConnectionAborted:
                return "aborted"
            return "answered"

        process = testbed.sim.process(bad_client())
        assert testbed.sim.run_until(process) == "aborted"
