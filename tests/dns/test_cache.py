"""Tests for the DNS cache (positive + negative caching)."""

import pytest
from hypothesis import given, strategies as st

from repro.dns import (A, DNSCache, DNSMessage, DNSName, Rcode, RdataType,
                       ResourceRecord, SOA, Zone)
from repro.dns.auth import AuthoritativeServer
from repro.dns.recursive import ForwardingResolver
from repro.dns.stub import StubResolver
from repro.simnet import Network


def name(text):
    return DNSName.from_text(text)


def positive_response(qname="www.example.com", ttl=300, query_id=1):
    query = DNSMessage.make_query(name(qname), RdataType.A, query_id)
    response = query.make_response(aa=True)
    response.answers.append(ResourceRecord(
        name(qname), RdataType.A, ttl, A("192.0.2.1")))
    return response


def negative_response(qname="missing.example.com", soa_minimum=60,
                      rcode=Rcode.NXDOMAIN, query_id=2):
    query = DNSMessage.make_query(name(qname), RdataType.A, query_id)
    response = query.make_response(rcode=rcode, aa=True)
    response.authorities.append(ResourceRecord(
        name("example.com"), RdataType.SOA, 300,
        SOA(name("ns1.example.com"), name("admin.example.com"),
            minimum=soa_minimum)))
    return response


class TestPositiveCaching:
    def test_store_and_hit(self):
        cache = DNSCache()
        cache.store_response(positive_response(), now=0.0)
        entry = cache.lookup(name("www.example.com"), RdataType.A,
                             now=100.0)
        assert entry is not None
        assert not entry.negative
        assert cache.hits == 1

    def test_expiry_honors_ttl(self):
        cache = DNSCache()
        cache.store_response(positive_response(ttl=300), now=0.0)
        assert cache.lookup(name("www.example.com"), RdataType.A,
                            now=301.0) is None

    def test_synthesized_answer_decrements_ttl(self):
        cache = DNSCache()
        cache.store_response(positive_response(ttl=300), now=0.0)
        query = DNSMessage.make_query(name("www.example.com"),
                                      RdataType.A, query_id=9)
        answer = cache.answer_from_cache(query, now=100.0)
        assert answer is not None
        assert answer.id == 9
        assert answer.answers[0].ttl == 200

    def test_case_insensitive_names(self):
        cache = DNSCache()
        cache.store_response(positive_response("WWW.Example.COM"),
                             now=0.0)
        assert cache.lookup(name("www.example.com"), RdataType.A,
                            now=1.0) is not None

    def test_different_rtype_misses(self):
        cache = DNSCache()
        cache.store_response(positive_response(), now=0.0)
        assert cache.lookup(name("www.example.com"), RdataType.AAAA,
                            now=1.0) is None

    def test_servfail_not_cached(self):
        cache = DNSCache()
        query = DNSMessage.make_query(name("x.example"), RdataType.A, 3)
        response = query.make_response(rcode=Rcode.SERVFAIL)
        assert cache.store_response(response, now=0.0) is None

    def test_eviction_caps_size(self):
        cache = DNSCache(max_entries=5)
        for index in range(10):
            cache.store_response(
                positive_response(f"host{index}.example.com",
                                  query_id=index), now=float(index))
        assert len(cache) <= 5
        # The most recent entries survive.
        assert cache.lookup(name("host9.example.com"), RdataType.A,
                            now=10.0) is not None


class TestNegativeCaching:
    def test_nxdomain_cached_with_soa_minimum(self):
        cache = DNSCache()
        cache.store_response(negative_response(soa_minimum=60), now=0.0)
        entry = cache.lookup(name("missing.example.com"), RdataType.A,
                             now=30.0)
        assert entry is not None
        assert entry.negative
        assert entry.rcode is Rcode.NXDOMAIN
        assert cache.lookup(name("missing.example.com"), RdataType.A,
                            now=61.0) is None

    def test_nodata_cached(self):
        cache = DNSCache()
        cache.store_response(
            negative_response(rcode=Rcode.NOERROR), now=0.0)
        entry = cache.lookup(name("missing.example.com"), RdataType.A,
                             now=10.0)
        assert entry is not None
        assert entry.rcode is Rcode.NOERROR

    def test_negative_ttl_capped(self):
        cache = DNSCache(negative_ttl_cap=120)
        cache.store_response(negative_response(soa_minimum=9999),
                             now=0.0)
        entry = cache.lookup(name("missing.example.com"), RdataType.A,
                             now=0.0)
        assert entry.ttl == 120.0

    def test_synthesized_negative_answer(self):
        cache = DNSCache()
        cache.store_response(negative_response(), now=0.0)
        query = DNSMessage.make_query(name("missing.example.com"),
                                      RdataType.A, query_id=4)
        answer = cache.answer_from_cache(query, now=1.0)
        assert answer is not None
        assert answer.rcode is Rcode.NXDOMAIN
        assert not answer.answers


class TestCacheProperties:
    @given(st.integers(min_value=1, max_value=86400),
           st.floats(min_value=0.0, max_value=200000.0,
                     allow_nan=False))
    def test_entry_never_served_beyond_ttl(self, ttl, when):
        cache = DNSCache()
        cache.store_response(positive_response(ttl=ttl), now=0.0)
        entry = cache.lookup(name("www.example.com"), RdataType.A,
                             now=when)
        if when >= ttl:
            assert entry is None
        else:
            assert entry is not None
            assert entry.remaining_ttl(when) <= ttl


class TestForwarderIntegration:
    def make_lab(self):
        net = Network(seed=9)
        segment = net.add_segment("lab")
        client = net.add_host("client")
        server = net.add_host("server")
        net.connect(client, segment, ["192.0.2.1"])
        net.connect(server, segment, ["192.0.2.53"])
        zone = Zone("example.com")
        zone.add_address("www", "192.0.2.80")
        zone.add_address("*", "192.0.2.81")
        AuthoritativeServer(server, [zone], port=5353).start()
        cache = DNSCache()
        ForwardingResolver(server, upstream="192.0.2.53",
                           upstream_port=5353, cache=cache).start()
        return net, client, cache

    def test_repeated_query_served_from_cache(self):
        net, client, cache = self.make_lab()
        stub = StubResolver(client, ["192.0.2.53"])
        net.sim.run_until(stub.query("www.example.com", RdataType.A))
        net.sim.run_until(stub.query("www.example.com", RdataType.A))
        assert cache.hits == 1

    def test_nonce_labels_defeat_the_cache(self):
        """The paper's anti-caching design works: fresh nonce, fresh miss."""
        net, client, cache = self.make_lab()
        stub = StubResolver(client, ["192.0.2.53"])
        net.sim.run_until(stub.query("n1.example.com", RdataType.A))
        net.sim.run_until(stub.query("n2.example.com", RdataType.A))
        assert cache.hits == 0
        assert len(cache) == 2
