"""Tests for DNS truncation and the TCP fallback path."""

import pytest

from repro.dns import DNSMessage, DNSName, RdataType, Zone
from repro.dns.auth import AuthoritativeServer, MAX_UDP_PAYLOAD
from repro.dns.stub import StubResolver
from repro.simnet import Network


def make_lab(seed=0, **auth_kwargs):
    net = Network(seed=seed)
    segment = net.add_segment("lab")
    client = net.add_host("client")
    server = net.add_host("server")
    net.connect(client, segment, ["192.0.2.1"])
    net.connect(server, segment, ["192.0.2.53"])
    zone = Zone("big.example")
    # 40 A records ≈ 40 × (name-pointer 2 + fixed 14) > 512 bytes.
    for index in range(40):
        zone.add_address("many", f"192.0.2.{index + 1}")
    zone.add_address("small", "192.0.2.250")
    auth = AuthoritativeServer(server, [zone], **auth_kwargs).start()
    return net, client, auth


class TestTruncation:
    def test_large_response_truncated_on_udp(self):
        net, client, auth = make_lab()
        # Raw UDP exchange (no TCP retry): send a query, read the reply.
        sock = client.udp.socket()
        query = DNSMessage.make_query(DNSName.from_text("many.big.example"),
                                      RdataType.A, query_id=7)
        sock.sendto(query.encode(), "192.0.2.53", 53)

        def read():
            datagram = yield sock.recv()
            return DNSMessage.decode(datagram.payload)

        response = net.sim.run_until(net.sim.process(read()))
        assert response.tc
        assert not response.answers
        assert auth.truncated_responses == 1

    def test_small_response_not_truncated(self):
        net, client, auth = make_lab()
        stub = StubResolver(client, ["192.0.2.53"])
        response = net.sim.run_until(
            stub.query("small.big.example", RdataType.A))
        assert not response.tc
        assert auth.truncated_responses == 0
        assert auth.tcp_queries == 0

    def test_stub_retries_over_tcp_transparently(self):
        net, client, auth = make_lab()
        stub = StubResolver(client, ["192.0.2.53"])
        response = net.sim.run_until(
            stub.query("many.big.example", RdataType.A))
        assert not response.tc
        assert len(response.addresses()) == 40
        assert auth.truncated_responses == 1
        assert auth.tcp_queries == 1

    def test_tcp_queries_logged_like_udp_ones(self):
        net, client, auth = make_lab()
        stub = StubResolver(client, ["192.0.2.53"])
        net.sim.run_until(stub.query("many.big.example", RdataType.A))
        qname = DNSName.from_text("many.big.example")
        entries = [e for e in auth.query_log if e.qname == qname]
        assert len(entries) == 2  # the UDP attempt + the TCP retry

    def test_custom_udp_payload_limit(self):
        net, client, auth = make_lab(max_udp_payload=4096)
        stub = StubResolver(client, ["192.0.2.53"])
        response = net.sim.run_until(
            stub.query("many.big.example", RdataType.A))
        assert len(response.addresses()) == 40
        assert auth.truncated_responses == 0  # fits in the larger limit

    def test_tcp_disabled_leads_to_timeout(self):
        net, client, auth = make_lab(serve_tcp=False)
        from repro.dns.errors import QueryTimeout

        stub = StubResolver(client, ["192.0.2.53"], timeout=0.5,
                            retries=0)
        process = stub.query("many.big.example", RdataType.A)
        process.defused = True
        net.sim.run(until=10.0)
        assert isinstance(process.exception, QueryTimeout)

    def test_delay_applies_on_tcp_too(self):
        net, client, auth = make_lab()
        auth.static_delays[RdataType.A] = 0.200
        stub = StubResolver(client, ["192.0.2.53"])
        started = net.sim.now
        net.sim.run_until(stub.query("many.big.example", RdataType.A))
        # Both the (truncated) UDP reply and the TCP reply are delayed.
        assert net.sim.now - started >= 0.400
