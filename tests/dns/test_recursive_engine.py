"""Tests for the iterative resolver engine's corner cases."""

import pytest

from repro.dns import (DNSName, RdataType, Zone)
from repro.dns.auth import AuthoritativeServer
from repro.dns.errors import (NoAnswerError, NxDomainError, ServFailError)
from repro.dns.nsselect import GluePlan, ResolverBehavior
from repro.dns.rdata import CNAME, TXT
from repro.dns.recursive import RecursiveResolver
from repro.simnet import Family, Network


def build_world(seed=0, child_glue=True):
    """Root zone delegating example. -> child zone on its own server."""
    net = Network(seed=seed)
    segment = net.add_segment("world")
    resolver_host = net.add_host("resolver")
    net.connect(resolver_host, segment, ["192.0.2.100", "2001:db8::100"])

    root_host = net.add_host("root")
    net.connect(root_host, segment, ["192.0.2.53"])
    child_host = net.add_host("child-ns")
    net.connect(child_host, segment, ["192.0.2.54", "2001:db8::54"])

    root_zone = Zone(".")
    glue = ({"ns1.example.": ["192.0.2.54", "2001:db8::54"]}
            if child_glue else None)
    root_zone.delegate(DNSName.from_text("example."),
                       [DNSName.from_text("ns1.example.")], glue=glue)

    child_zone = Zone("example.")
    child_zone.add_address("ns1", "192.0.2.54")
    child_zone.add_address("ns1", "2001:db8::54")
    child_zone.add_address("www", "192.0.2.80")
    child_zone.add_address("www", "2001:db8::80")
    child_zone.add("probe", TXT.from_text("hello"))
    child_zone.add("link", CNAME(DNSName.from_text("www.example.")))

    AuthoritativeServer(root_host, [root_zone]).start()
    auth = AuthoritativeServer(child_host, [child_zone]).start()
    return net, resolver_host, auth, child_zone


def make_resolver(host, behavior=None):
    return RecursiveResolver(
        host, root_hints={"a.root.": ["192.0.2.53"]},
        behavior=behavior or ResolverBehavior(name="test",
                                              v6_preference=0.0))


class TestDelegationWalk:
    def test_resolves_through_delegation(self):
        net, host, _, _ = build_world()
        resolver = make_resolver(host)
        result = net.sim.run_until(
            resolver.resolve("www.example.", RdataType.A))
        assert [str(a) for a in result.addresses] == ["192.0.2.80"]

    def test_upstream_log_has_both_levels(self):
        net, host, _, _ = build_world()
        resolver = make_resolver(host)
        net.sim.run_until(resolver.resolve("www.example.", RdataType.A))
        servers = {str(q.server) for q in resolver.upstream_log}
        assert "192.0.2.53" in servers  # root
        assert "192.0.2.54" in servers  # child NS

    def test_cname_chase(self):
        net, host, _, _ = build_world()
        resolver = make_resolver(host)
        result = net.sim.run_until(
            resolver.resolve("link.example.", RdataType.A))
        rtypes = [rr.rtype for rr in result.records]
        assert RdataType.CNAME in rtypes
        assert "192.0.2.80" in [str(a) for a in result.addresses]

    def test_nxdomain_raises(self):
        net, host, _, _ = build_world()
        resolver = make_resolver(host)
        process = resolver.resolve("missing.example.", RdataType.A)
        with pytest.raises(NxDomainError):
            net.sim.run_until(process)

    def test_nodata_raises_no_answer(self):
        net, host, _, _ = build_world()
        resolver = make_resolver(host)
        process = resolver.resolve("probe.example.", RdataType.A)
        with pytest.raises(NoAnswerError):
            net.sim.run_until(process)

    def test_txt_answer(self):
        net, host, _, _ = build_world()
        resolver = make_resolver(host)
        result = net.sim.run_until(
            resolver.resolve("probe.example.", RdataType.TXT))
        assert result.records[0].rdata.strings == (b"hello",)

    def test_all_roots_dead_servfails(self):
        net = Network(seed=1)
        segment = net.add_segment("void")
        host = net.add_host("resolver")
        net.connect(host, segment, ["192.0.2.100"])
        resolver = RecursiveResolver(
            host, root_hints={"a.root.": ["192.0.2.53"]},  # unattached
            behavior=ResolverBehavior(name="t", v6_preference=0.0,
                                      attempt_timeout=0.2,
                                      max_total_attempts=2))
        process = resolver.resolve("www.example.", RdataType.A)
        with pytest.raises(ServFailError):
            net.sim.run_until(process)


class TestGluePlans:
    def ns_query_types(self, behavior, seed=0):
        net, host, auth, _ = build_world(seed=seed)
        resolver = make_resolver(host, behavior)
        net.sim.run_until(resolver.resolve("www.example.", RdataType.A))
        ns_name = DNSName.from_text("ns1.example.")
        return [(entry.qtype, entry.timestamp)
                for entry in auth.query_log if entry.qname == ns_name]

    def test_aaaa_first_plan(self):
        queries = self.ns_query_types(ResolverBehavior(
            name="t", glue_plan=GluePlan.AAAA_FIRST, v6_preference=0.0))
        assert [q[0] for q in queries][:2] == [RdataType.AAAA, RdataType.A]

    def test_a_first_plan(self):
        queries = self.ns_query_types(ResolverBehavior(
            name="t", glue_plan=GluePlan.A_FIRST, v6_preference=0.0))
        assert [q[0] for q in queries][:2] == [RdataType.A, RdataType.AAAA]

    def test_single_plan_sends_exactly_one(self):
        queries = self.ns_query_types(ResolverBehavior(
            name="t", glue_plan=GluePlan.SINGLE, v6_preference=0.0))
        assert len(queries) == 1

    def test_aaaa_after_use_plan(self):
        net, host, auth, _ = build_world(seed=3)
        behavior = ResolverBehavior(
            name="t", glue_plan=GluePlan.AAAA_AFTER_USE, v6_preference=0.0)
        resolver = make_resolver(host, behavior)
        net.sim.run_until(resolver.resolve("www.example.", RdataType.A))
        net.sim.run(until=net.sim.now + 1.0)  # let the late probe land
        ns_name = DNSName.from_text("ns1.example.")
        www = DNSName.from_text("www.example.")
        aaaa_times = [e.timestamp for e in auth.query_log
                      if e.qname == ns_name
                      and e.qtype is RdataType.AAAA]
        main_times = [e.timestamp for e in auth.query_log
                      if e.qname == www]
        assert aaaa_times, "AAAA probe was never sent"
        assert min(main_times) < min(aaaa_times)  # main query first

    def test_trusting_resolver_uses_glue_without_queries(self):
        queries = self.ns_query_types(ResolverBehavior(
            name="t", v6_preference=0.0,
            queries_ns_addresses_despite_glue=False))
        assert queries == []


class TestServing:
    def test_serves_clients_over_udp(self):
        net, host, _, _ = build_world(seed=4)
        resolver = make_resolver(host)
        resolver.serve(port=53)
        # A client on the same segment queries the resolver.
        client = net.add_host("client")
        net.connect(client, net.segments["world"], ["192.0.2.7"])
        from repro.dns.stub import StubResolver

        stub = StubResolver(client, ["192.0.2.100"])
        response = net.sim.run_until(
            stub.query("www.example.", RdataType.A))
        assert [str(a) for a in response.addresses()] == ["192.0.2.80"]
        assert response.ra

    def test_servfail_to_clients_on_failure(self):
        net, host, _, _ = build_world(seed=5)
        resolver = RecursiveResolver(
            host, root_hints={"a.root.": ["203.0.113.1"]},  # dead root
            behavior=ResolverBehavior(name="t", attempt_timeout=0.2,
                                      max_total_attempts=1))
        resolver.serve(port=53)
        client = net.add_host("client")
        net.connect(client, net.segments["world"], ["192.0.2.7"])
        from repro.dns import Rcode
        from repro.dns.stub import StubResolver

        stub = StubResolver(client, ["192.0.2.100"])
        response = net.sim.run_until(
            stub.query("www.example.", RdataType.A))
        assert response.rcode is Rcode.SERVFAIL
