"""Tests for DNS name handling and wire encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.dns import DNSName
from repro.dns.errors import CompressionLoopError, MessageError, NameError_


class TestNameBasics:
    def test_from_text_roundtrip(self):
        name = DNSName.from_text("www.example.com")
        assert name.to_text() == "www.example.com."

    def test_trailing_dot_equivalent(self):
        assert (DNSName.from_text("example.com.")
                == DNSName.from_text("example.com"))

    def test_root(self):
        root = DNSName.root()
        assert root.is_root
        assert root.to_text() == "."
        assert DNSName.from_text(".") == root

    def test_case_insensitive_equality(self):
        assert (DNSName.from_text("WWW.Example.COM")
                == DNSName.from_text("www.example.com"))

    def test_case_insensitive_hash(self):
        names = {DNSName.from_text("Example.COM")}
        assert DNSName.from_text("example.com") in names

    def test_parent(self):
        name = DNSName.from_text("a.b.c")
        assert name.parent() == DNSName.from_text("b.c")

    def test_root_has_no_parent(self):
        with pytest.raises(NameError_):
            DNSName.root().parent()

    def test_prepend(self):
        base = DNSName.from_text("example.com")
        assert base.prepend("www") == DNSName.from_text("www.example.com")

    def test_concatenate(self):
        www = DNSName.from_text("www")
        com = DNSName.from_text("example.com")
        assert www.concatenate(com) == DNSName.from_text("www.example.com")

    def test_subdomain_relation(self):
        child = DNSName.from_text("a.b.example.com")
        zone = DNSName.from_text("example.com")
        assert child.is_subdomain_of(zone)
        assert child.is_subdomain_of(child)
        assert not zone.is_subdomain_of(child)
        assert child.is_subdomain_of(DNSName.root())

    def test_subdomain_respects_label_boundaries(self):
        assert not DNSName.from_text("notexample.com").is_subdomain_of(
            DNSName.from_text("example.com"))

    def test_relativize(self):
        child = DNSName.from_text("a.b.example.com")
        zone = DNSName.from_text("example.com")
        assert child.relativize(zone) == (b"a", b"b")

    def test_relativize_outside_zone_rejected(self):
        with pytest.raises(NameError_):
            DNSName.from_text("other.org").relativize(
                DNSName.from_text("example.com"))

    def test_label_too_long_rejected(self):
        with pytest.raises(NameError_):
            DNSName([b"a" * 64])

    def test_name_too_long_rejected(self):
        with pytest.raises(NameError_):
            DNSName([b"a" * 63] * 4)

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            DNSName([b""])

    def test_empty_label_in_text_rejected(self):
        with pytest.raises(NameError_):
            DNSName.from_text("a..b")

    def test_canonical_ordering(self):
        a = DNSName.from_text("a.example.com")
        z = DNSName.from_text("z.example.com")
        other = DNSName.from_text("example.org")
        assert a < z
        assert a < other  # com < org at the rightmost label


class TestWireCodec:
    def test_simple_encode(self):
        wire = DNSName.from_text("ab.c").encode()
        assert wire == b"\x02ab\x01c\x00"

    def test_root_encode(self):
        assert DNSName.root().encode() == b"\x00"

    def test_decode_roundtrip(self):
        original = DNSName.from_text("www.example.com")
        wire = original.encode()
        decoded, offset = DNSName.decode(wire, 0)
        assert decoded == original
        assert offset == len(wire)

    def test_compression_shares_suffix(self):
        table = {}
        first = DNSName.from_text("www.example.com").encode(table, 0)
        second = DNSName.from_text("mail.example.com").encode(
            table, len(first))
        # Second name should use a pointer into the first.
        assert len(second) < len(DNSName.from_text("mail.example.com").encode())
        buffer = first + second
        decoded, _ = DNSName.decode(buffer, len(first))
        assert decoded == DNSName.from_text("mail.example.com")

    def test_identical_name_becomes_pure_pointer(self):
        table = {}
        first = DNSName.from_text("example.com").encode(table, 0)
        second = DNSName.from_text("example.com").encode(table, len(first))
        assert len(second) == 2  # just a pointer

    def test_decode_rejects_truncated(self):
        wire = DNSName.from_text("example.com").encode()
        with pytest.raises(MessageError):
            DNSName.decode(wire[:-2], 0)

    def test_decode_rejects_forward_pointer(self):
        # Pointer at offset 0 pointing to itself.
        with pytest.raises(CompressionLoopError):
            DNSName.decode(b"\xc0\x00", 0)

    def test_decode_rejects_pointer_loop(self):
        # Two pointers referencing each other.
        wire = b"\xc0\x02\xc0\x00"
        with pytest.raises(CompressionLoopError):
            DNSName.decode(wire, 2)


_labels = st.lists(
    st.binary(min_size=1, max_size=20).filter(lambda b: len(b) <= 63),
    min_size=0, max_size=6)


class TestNameProperties:
    @given(_labels)
    def test_wire_roundtrip(self, labels):
        name = DNSName(labels)
        decoded, offset = DNSName.decode(name.encode(), 0)
        assert decoded == name

    @given(_labels)
    def test_text_roundtrip_for_ascii(self, labels):
        try:
            text = DNSName(labels).to_text()
            reparsed = DNSName.from_text(text)
        except (NameError_, UnicodeEncodeError, UnicodeDecodeError):
            return  # non-ASCII labels are out of scope for text parsing
        if all(b"." not in l and l.isascii() for l in labels):
            assert reparsed == DNSName(labels)

    @given(_labels, _labels)
    def test_compressed_roundtrip_two_names(self, labels_a, labels_b):
        name_a, name_b = DNSName(labels_a), DNSName(labels_b)
        table = {}
        wire_a = name_a.encode(table, 0)
        wire_b = name_b.encode(table, len(wire_a))
        buffer = wire_a + wire_b
        decoded_a, _ = DNSName.decode(buffer, 0)
        decoded_b, _ = DNSName.decode(buffer, len(wire_a))
        assert decoded_a == name_a
        assert decoded_b == name_b

    @given(_labels)
    def test_subdomain_of_parent(self, labels):
        name = DNSName(labels)
        if not name.is_root:
            assert name.is_subdomain_of(name.parent())
