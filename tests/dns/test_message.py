"""Tests for rdata types and the message wire codec."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.dns import (A, AAAA, CNAME, DNSMessage, DNSName, HTTPS, NS,
                       Opcode, Question, Rcode, RdataType, ResourceRecord,
                       SOA, SVCB, TXT, address_rdata)
from repro.dns.errors import MessageError
from repro.dns.rdata import GenericRdata, SvcParamKey, decode_rdata


def name(text):
    return DNSName.from_text(text)


class TestRdata:
    def test_a_roundtrip(self):
        rdata = A(ipaddress.IPv4Address("192.0.2.1"))
        assert A.from_wire(rdata.to_wire(), 0, 4) == rdata

    def test_a_accepts_string(self):
        assert str(A("192.0.2.1").address) == "192.0.2.1"

    def test_a_wrong_length_rejected(self):
        with pytest.raises(MessageError):
            A.from_wire(b"\x01\x02\x03", 0, 3)

    def test_aaaa_roundtrip(self):
        rdata = AAAA(ipaddress.IPv6Address("2001:db8::1"))
        assert AAAA.from_wire(rdata.to_wire(), 0, 16) == rdata

    def test_ns_roundtrip(self):
        rdata = NS(name("ns1.example.com"))
        wire = rdata.to_wire(None, 0)
        assert NS.from_wire(wire, 0, len(wire)) == rdata

    def test_soa_roundtrip(self):
        rdata = SOA(name("ns1.example.com"), name("admin.example.com"),
                    serial=42, refresh=1, retry=2, expire=3, minimum=4)
        wire = rdata.to_wire(None, 0)
        decoded = SOA.from_wire(wire, 0, len(wire))
        assert decoded == rdata

    def test_txt_roundtrip(self):
        rdata = TXT.from_text("hello", "world")
        wire = rdata.to_wire()
        assert TXT.from_wire(wire, 0, len(wire)) == rdata

    def test_txt_string_too_long_rejected(self):
        with pytest.raises(MessageError):
            TXT((b"a" * 256,))

    def test_address_rdata_dispatches_by_family(self):
        assert isinstance(address_rdata("192.0.2.1"), A)
        assert isinstance(address_rdata("2001:db8::1"), AAAA)

    def test_unknown_type_decodes_as_generic(self):
        rdata = decode_rdata(9999, b"\xde\xad", 0, 2)
        assert isinstance(rdata, GenericRdata)
        assert rdata.data == b"\xde\xad"


class TestSVCB:
    def test_service_constructor_and_accessors(self):
        rdata = SVCB.service(1, name("svc.example.com"),
                             alpn=("h3", "h2"), port=8443, ech=True,
                             ipv4_hints=("192.0.2.1",),
                             ipv6_hints=("2001:db8::1",))
        assert rdata.alpn == ("h3", "h2")
        assert rdata.port == 8443
        assert rdata.has_ech
        assert str(rdata.ipv4_hints[0]) == "192.0.2.1"
        assert str(rdata.ipv6_hints[0]) == "2001:db8::1"

    def test_wire_roundtrip(self):
        rdata = SVCB.service(2, name("alt.example.com"),
                             alpn=("h2",), ech=True)
        wire = rdata.to_wire(None, 0)
        decoded = SVCB.from_wire(wire, 0, len(wire))
        assert decoded.priority == 2
        assert decoded.target == name("alt.example.com")
        assert decoded.alpn == ("h2",)
        assert decoded.has_ech

    def test_https_is_distinct_type(self):
        rdata = HTTPS.service(1, name("example.com"), alpn=("h3",))
        assert rdata.rtype is RdataType.HTTPS

    def test_params_must_be_ascending_on_decode(self):
        bad = (b"\x00\x01" + name("x").encode()
               + b"\x00\x03\x00\x02\x01\xbb"   # port
               + b"\x00\x01\x00\x00")           # alpn after port: bad order
        with pytest.raises(MessageError):
            SVCB.from_wire(bad, 0, len(bad))

    def test_alias_mode_priority_zero(self):
        rdata = SVCB(0, name("alias.example.com"))
        wire = rdata.to_wire(None, 0)
        assert SVCB.from_wire(wire, 0, len(wire)).priority == 0


class TestMessageCodec:
    def test_query_roundtrip(self):
        query = DNSMessage.make_query(name("www.example.com"),
                                      RdataType.AAAA, query_id=0x1234)
        decoded = DNSMessage.decode(query.encode())
        assert decoded.id == 0x1234
        assert not decoded.qr
        assert decoded.rd
        assert decoded.question.name == name("www.example.com")
        assert decoded.question.rtype is RdataType.AAAA

    def test_response_roundtrip_with_all_sections(self):
        query = DNSMessage.make_query(name("www.example.com"),
                                      RdataType.A, query_id=7)
        response = query.make_response(aa=True, ra=True)
        response.answers.append(ResourceRecord(
            name("www.example.com"), RdataType.A, 300, A("192.0.2.1")))
        response.authorities.append(ResourceRecord(
            name("example.com"), RdataType.NS, 300,
            NS(name("ns1.example.com"))))
        response.additionals.append(ResourceRecord(
            name("ns1.example.com"), RdataType.AAAA, 300,
            AAAA("2001:db8::53")))
        decoded = DNSMessage.decode(response.encode())
        assert decoded.qr and decoded.aa and decoded.ra
        assert decoded.rcode is Rcode.NOERROR
        assert len(decoded.answers) == 1
        assert len(decoded.authorities) == 1
        assert len(decoded.additionals) == 1
        assert str(decoded.answers[0].rdata) == "192.0.2.1"

    def test_compression_reduces_size(self):
        response = DNSMessage(id=1, qr=True)
        owner = name("a-rather-long-label.example.com")
        for i in range(10):
            response.answers.append(ResourceRecord(
                owner, RdataType.A, 60, A(f"192.0.2.{i + 1}")))
        wire = response.encode()
        # Without compression each record would repeat the 33-byte name.
        assert len(wire) < 12 + 10 * (33 + 14)

    def test_rcode_and_flags_roundtrip(self):
        message = DNSMessage(id=9, qr=True, aa=True, tc=True, rd=False,
                             ra=True, rcode=Rcode.NXDOMAIN)
        decoded = DNSMessage.decode(message.encode())
        assert decoded.aa and decoded.tc and decoded.ra and not decoded.rd
        assert decoded.rcode is Rcode.NXDOMAIN

    def test_addresses_accessor(self):
        message = DNSMessage(id=1, qr=True)
        message.answers.append(ResourceRecord(
            name("x.example"), RdataType.A, 60, A("192.0.2.1")))
        message.answers.append(ResourceRecord(
            name("x.example"), RdataType.AAAA, 60, AAAA("2001:db8::1")))
        assert [str(a) for a in message.addresses()] == [
            "192.0.2.1", "2001:db8::1"]

    def test_truncated_message_rejected(self):
        with pytest.raises(MessageError):
            DNSMessage.decode(b"\x00\x01\x00")

    def test_bad_id_rejected(self):
        with pytest.raises(MessageError):
            DNSMessage(id=0x10000)

    def test_question_without_entries_raises(self):
        with pytest.raises(MessageError):
            _ = DNSMessage(id=1).question

    def test_bad_ttl_rejected(self):
        with pytest.raises(MessageError):
            ResourceRecord(name("x"), RdataType.A, -1, A("192.0.2.1"))


_hostname_label = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1, max_size=12).filter(
        lambda s: not s.startswith("-") and not s.endswith("-"))
_hostnames = st.lists(_hostname_label, min_size=1, max_size=4).map(
    lambda parts: DNSName.from_text(".".join(parts)))


def _v4():
    return st.integers(0, 2**32 - 1).map(ipaddress.IPv4Address)


def _v6():
    return st.integers(0, 2**128 - 1).map(ipaddress.IPv6Address)


_rdatas = st.one_of(
    _v4().map(A),
    _v6().map(AAAA),
    _hostnames.map(NS),
    _hostnames.map(CNAME),
    st.lists(st.binary(min_size=0, max_size=40), min_size=0,
             max_size=3).map(lambda chunks: TXT(tuple(chunks))),
)


def _record(owner, rdata):
    return ResourceRecord(owner, RdataType(rdata.rtype), 300, rdata)


class TestMessageProperties:
    @given(st.integers(0, 0xFFFF), _hostnames,
           st.sampled_from([RdataType.A, RdataType.AAAA, RdataType.NS,
                            RdataType.TXT, RdataType.HTTPS]))
    def test_query_roundtrip(self, query_id, qname, rtype):
        query = DNSMessage.make_query(qname, rtype, query_id)
        decoded = DNSMessage.decode(query.encode())
        assert decoded.id == query_id
        assert decoded.question.name == qname
        assert decoded.question.rtype == rtype

    @given(_hostnames,
           st.lists(st.tuples(_hostnames, _rdatas), min_size=0, max_size=6))
    def test_full_message_roundtrip(self, qname, pairs):
        message = DNSMessage(id=1, qr=True,
                             questions=[Question(qname, RdataType.A)])
        for owner, rdata in pairs:
            message.answers.append(_record(owner, rdata))
        decoded = DNSMessage.decode(message.encode())
        assert len(decoded.answers) == len(pairs)
        for (owner, rdata), decoded_rr in zip(pairs, decoded.answers):
            assert decoded_rr.name == owner
            assert decoded_rr.rdata == rdata

    @given(st.lists(st.tuples(_hostnames, _rdatas), min_size=1, max_size=8))
    def test_compression_never_corrupts(self, pairs):
        message = DNSMessage(id=2, qr=True)
        for owner, rdata in pairs:
            message.answers.append(_record(owner, rdata))
        decoded = DNSMessage.decode(message.encode())
        assert [rr.rdata for rr in decoded.answers] == [p[1] for p in pairs]
