"""Tests for zones (delegation, wildcards) and the authoritative server."""

import pytest

from repro.dns import (AuthoritativeServer, DNSMessage, DNSName, LookupKind,
                       NS, Rcode, RdataType, TestParams, Zone)
from repro.dns.zone import NotInZoneError
from repro.simnet import Family, Network


def name(text):
    return DNSName.from_text(text)


class TestZoneLookup:
    def make_zone(self):
        zone = Zone("example.com")
        zone.add_address("www", "192.0.2.1")
        zone.add_address("www", "2001:db8::1")
        zone.add("alias", __import__(
            "repro.dns.rdata", fromlist=["CNAME"]).CNAME(
            name("www.example.com")))
        zone.delegate("sub", ["ns1.sub"],
                      glue={"ns1.sub": ["192.0.2.53", "2001:db8::53"]})
        zone.add_addresses("multi", [f"192.0.2.{i}" for i in range(10, 13)])
        return zone

    def test_answer(self):
        result = self.make_zone().lookup(name("www.example.com"),
                                         RdataType.A)
        assert result.kind is LookupKind.ANSWER
        assert len(result.answers[0]) == 1

    def test_answer_aaaa(self):
        result = self.make_zone().lookup(name("www.example.com"),
                                         RdataType.AAAA)
        assert result.kind is LookupKind.ANSWER

    def test_multiple_rdatas_in_one_rrset(self):
        result = self.make_zone().lookup(name("multi.example.com"),
                                         RdataType.A)
        assert len(result.answers[0]) == 3

    def test_nodata_for_missing_type(self):
        result = self.make_zone().lookup(name("www.example.com"),
                                         RdataType.TXT)
        assert result.kind is LookupKind.NODATA
        assert result.authority[0].rtype is RdataType.SOA

    def test_nxdomain(self):
        result = self.make_zone().lookup(name("missing.example.com"),
                                         RdataType.A)
        assert result.kind is LookupKind.NXDOMAIN

    def test_empty_non_terminal_is_nodata(self):
        zone = Zone("example.com")
        zone.add_address("a.b.c", "192.0.2.1")
        result = zone.lookup(name("b.c.example.com"), RdataType.A)
        assert result.kind is LookupKind.NODATA

    def test_cname(self):
        result = self.make_zone().lookup(name("alias.example.com"),
                                         RdataType.A)
        assert result.kind is LookupKind.CNAME

    def test_referral_with_glue(self):
        result = self.make_zone().lookup(name("deep.sub.example.com"),
                                         RdataType.A)
        assert result.kind is LookupKind.REFERRAL
        assert result.authority[0].rtype is RdataType.NS
        glue_types = {rrset.rtype for rrset in result.glue}
        assert glue_types == {RdataType.A, RdataType.AAAA}

    def test_referral_at_cut_itself(self):
        result = self.make_zone().lookup(name("sub.example.com"),
                                         RdataType.A)
        assert result.kind is LookupKind.REFERRAL

    def test_ns_query_at_cut_is_referral_exception(self):
        # Asking for NS at the cut returns the delegation NS set.
        result = self.make_zone().lookup(name("sub.example.com"),
                                         RdataType.NS)
        assert result.kind is LookupKind.ANSWER

    def test_out_of_zone_rejected(self):
        with pytest.raises(NotInZoneError):
            self.make_zone().lookup(name("other.org"), RdataType.A)

    def test_relative_names_resolve_against_origin(self):
        zone = Zone("example.com")
        zone.add_address("www", "192.0.2.1")
        assert zone.rrset("www.example.com", RdataType.A) is not None


class TestWildcards:
    def make_zone(self):
        zone = Zone("he-test.example")
        zone.add_address("*", "192.0.2.10")
        zone.add_address("*", "2001:db8::10")
        return zone

    def test_wildcard_synthesizes_any_label(self):
        result = self.make_zone().lookup(
            name("d250-aaaa-k3xq7.he-test.example"), RdataType.A)
        assert result.kind is LookupKind.ANSWER
        assert result.answers[0].name == name(
            "d250-aaaa-k3xq7.he-test.example")

    def test_wildcard_not_used_for_existing_node(self):
        zone = self.make_zone()
        zone.add_address("fixed", "192.0.2.99")
        result = zone.lookup(name("fixed.he-test.example"), RdataType.A)
        assert str(result.answers[0].rdatas[0]) == "192.0.2.99"

    def test_wildcard_nodata_for_missing_type(self):
        result = self.make_zone().lookup(
            name("whatever.he-test.example"), RdataType.TXT)
        assert result.kind is LookupKind.NODATA


class TestTestParams:
    def test_label_roundtrip(self):
        params = TestParams(delay_ms=250, delayed_rtype="aaaa", nonce="k3xq7")
        assert params.to_label() == "d250-aaaa-k3xq7"
        assert TestParams.parse_label(b"d250-aaaa-k3xq7") == params

    def test_parse_rejects_noise(self):
        assert TestParams.parse_label(b"www") is None
        assert TestParams.parse_label(b"d-aaaa-x") is None
        assert TestParams.parse_label(b"d100-mx-x") is None

    def test_applies_to(self):
        aaaa = TestParams(100, "aaaa", "n")
        assert aaaa.applies_to(RdataType.AAAA)
        assert not aaaa.applies_to(RdataType.A)
        both = TestParams(100, "both", "n")
        assert both.applies_to(RdataType.A)
        assert both.applies_to(RdataType.AAAA)
        none = TestParams(100, "none", "n")
        assert not none.applies_to(RdataType.A)

    def test_query_name(self):
        params = TestParams(50, "a", "zz")
        assert params.query_name("he-test.example") == name(
            "d50-a-zz.he-test.example")

    def test_invalid_rtype_rejected(self):
        with pytest.raises(ValueError):
            TestParams(100, "mx", "n")


@pytest.fixture
def dns_lab():
    net = Network(seed=3)
    segment = net.add_segment("lab")
    client = net.add_host("client")
    server = net.add_host("server")
    net.connect(client, segment, ["192.0.2.1", "2001:db8::1"])
    net.connect(server, segment, ["192.0.2.53", "2001:db8::53"])
    zone = Zone("he-test.example")
    zone.add_address("*", "192.0.2.80")
    zone.add_address("*", "2001:db8::80")
    zone.add_address("www", "192.0.2.99")
    auth = AuthoritativeServer(server, [zone]).start()
    return net, client, server, auth


def run_query(net, client, qname, rtype, server="192.0.2.53"):
    """Send one query and return (response, elapsed)."""
    from repro.dns.stub import StubResolver

    stub = StubResolver(client, [server], timeout=10.0, retries=0)
    started = net.sim.now
    process = stub.query(qname, rtype)
    response = net.sim.run_until(process)
    return response, net.sim.now - started


class TestAuthoritativeServer:
    def test_answers_wildcard_query(self, dns_lab):
        net, client, _, _ = dns_lab
        response, _ = run_query(net, client, "abc.he-test.example",
                                RdataType.A)
        assert response.rcode is Rcode.NOERROR
        assert response.aa
        assert [str(a) for a in response.addresses()] == ["192.0.2.80"]

    def test_refuses_foreign_zone(self, dns_lab):
        net, client, _, _ = dns_lab
        response, _ = run_query(net, client, "other.example", RdataType.A)
        assert response.rcode is Rcode.REFUSED

    def test_delay_encoded_in_qname_applies_to_matching_type(self, dns_lab):
        net, client, _, _ = dns_lab
        qname = "d200-aaaa-n1.he-test.example"
        _, elapsed_aaaa = run_query(net, client, qname, RdataType.AAAA)
        assert elapsed_aaaa == pytest.approx(0.200, abs=0.002)

    def test_delay_does_not_apply_to_other_type(self, dns_lab):
        net, client, _, _ = dns_lab
        qname = "d200-aaaa-n2.he-test.example"
        _, elapsed_a = run_query(net, client, qname, RdataType.A)
        assert elapsed_a < 0.010

    def test_both_delays_both_types(self, dns_lab):
        net, client, _, _ = dns_lab
        qname = "d150-both-n3.he-test.example"
        _, elapsed_a = run_query(net, client, qname, RdataType.A)
        _, elapsed_aaaa = run_query(net, client, qname, RdataType.AAAA)
        assert elapsed_a == pytest.approx(0.150, abs=0.002)
        assert elapsed_aaaa == pytest.approx(0.150, abs=0.002)

    def test_static_delay_configuration(self, dns_lab):
        net, client, _, auth = dns_lab
        auth.static_delays[RdataType.A] = 0.123
        _, elapsed = run_query(net, client, "www.he-test.example",
                               RdataType.A)
        assert elapsed == pytest.approx(0.123, abs=0.002)

    def test_query_log_records_family_and_qtype(self, dns_lab):
        net, client, _, auth = dns_lab
        run_query(net, client, "abc.he-test.example", RdataType.A,
                  server="2001:db8::53")
        assert len(auth.query_log) == 1
        entry = auth.query_log[0]
        assert entry.transport_family is Family.V6
        assert entry.qtype is RdataType.A

    def test_queries_for_filters_by_suffix(self, dns_lab):
        net, client, _, auth = dns_lab
        run_query(net, client, "x.he-test.example", RdataType.A)
        assert len(auth.queries_for("he-test.example")) == 1
        assert len(auth.queries_for("other.example")) == 0

    def test_nxdomain_when_no_wildcard_matches(self):
        net = Network(seed=4)
        segment = net.add_segment("lab")
        client = net.add_host("client")
        server = net.add_host("server")
        net.connect(client, segment, ["192.0.2.1"])
        net.connect(server, segment, ["192.0.2.53"])
        zone = Zone("plain.example")
        zone.add_address("www", "192.0.2.9")
        AuthoritativeServer(server, [zone]).start()
        response, _ = run_query(net, client, "nope.plain.example",
                                RdataType.A)
        assert response.rcode is Rcode.NXDOMAIN

    def test_referral_response_includes_glue(self):
        net = Network(seed=5)
        segment = net.add_segment("lab")
        client = net.add_host("client")
        server = net.add_host("server")
        net.connect(client, segment, ["192.0.2.1"])
        net.connect(server, segment, ["192.0.2.53"])
        zone = Zone("example.com")
        zone.delegate("child", ["ns1.child"],
                      glue={"ns1.child": ["192.0.2.54"]})
        AuthoritativeServer(server, [zone]).start()
        response, _ = run_query(net, client, "www.child.example.com",
                                RdataType.A)
        assert not response.aa
        assert response.authorities[0].rtype is RdataType.NS
        assert str(response.additionals[0].rdata) == "192.0.2.54"
