"""Tests for the stub resolver, dual lookup, and resolver details."""

import pytest

from repro.dns import (DNSName, ForwardingResolver, Rcode, RdataType, Zone)
from repro.dns.auth import AuthoritativeServer
from repro.dns.errors import QueryTimeout
from repro.dns.rdata import CNAME
from repro.dns.stub import StubResolver
from repro.simnet import Family, Network


def make_lab(seed=0):
    net = Network(seed=seed)
    segment = net.add_segment("lab")
    client = net.add_host("client")
    server = net.add_host("server")
    net.connect(client, segment, ["192.0.2.1", "2001:db8::1"])
    net.connect(server, segment, ["192.0.2.53", "2001:db8::53"])
    return net, client, server


def standard_zone():
    zone = Zone("example.com")
    zone.add_address("www", "192.0.2.80")
    zone.add_address("www", "2001:db8::80")
    zone.add("alias", CNAME(DNSName.from_text("www.example.com")))
    zone.add_address("v4only", "192.0.2.81")
    return zone


class TestStubResolver:
    def test_basic_query(self):
        net, client, server = make_lab()
        AuthoritativeServer(server, [standard_zone()]).start()
        stub = StubResolver(client, ["192.0.2.53"])
        response = net.sim.run_until(
            stub.query("www.example.com", RdataType.A))
        assert response.rcode is Rcode.NOERROR
        assert [str(a) for a in response.addresses()] == ["192.0.2.80"]

    def test_timeout_then_retry_succeeds(self):
        net, client, server = make_lab()
        zone = standard_zone()
        auth = AuthoritativeServer(server, [zone]).start()
        # First attempt times out (answer delayed past stub timeout);
        # the stub's retry also sees the same delay, then gives up.
        auth.static_delays[RdataType.A] = 10.0
        stub = StubResolver(client, ["192.0.2.53"], timeout=1.0, retries=1)
        process = stub.query("www.example.com", RdataType.A)
        process.defused = True
        net.sim.run(until=30.0)
        assert isinstance(process.exception, QueryTimeout)
        # One initial try + one retry were sent.
        assert stub.queries_sent == 2

    def test_second_nameserver_used_after_timeout(self):
        net, client, server = make_lab()
        AuthoritativeServer(server, [standard_zone()]).start()
        # First nameserver address does not exist (blackhole).
        stub = StubResolver(client, ["192.0.2.99", "192.0.2.53"],
                            timeout=0.5, retries=0)
        response = net.sim.run_until(
            stub.query("www.example.com", RdataType.A))
        assert response.rcode is Rcode.NOERROR
        assert net.sim.now >= 0.5  # waited out the dead server first

    def test_requires_nameserver(self):
        net, client, _ = make_lab()
        with pytest.raises(ValueError):
            StubResolver(client, [])

    def test_cname_answer_passes_through(self):
        net, client, server = make_lab()
        AuthoritativeServer(server, [standard_zone()]).start()
        stub = StubResolver(client, ["192.0.2.53"])
        response = net.sim.run_until(
            stub.query("alias.example.com", RdataType.A))
        rtypes = [rr.rtype for rr in response.answers]
        assert RdataType.CNAME in rtypes
        assert RdataType.A in rtypes


class TestDualLookup:
    def test_aaaa_first_order_observed_on_wire(self):
        net, client, server = make_lab()
        AuthoritativeServer(server, [standard_zone()]).start()
        capture = client.start_capture()
        stub = StubResolver(client, ["192.0.2.53"])
        dual = stub.lookup_dual("www.example.com",
                                first=RdataType.AAAA)
        net.sim.run_until(net.sim.all_of([dual.aaaa, dual.a]))
        from repro.testbed.inference import query_order

        order = query_order(capture)
        assert order == [RdataType.AAAA, RdataType.A]

    def test_a_first_order(self):
        net, client, server = make_lab()
        AuthoritativeServer(server, [standard_zone()]).start()
        capture = client.start_capture()
        stub = StubResolver(client, ["192.0.2.53"])
        dual = stub.lookup_dual("www.example.com", first=RdataType.A)
        net.sim.run_until(net.sim.all_of([dual.aaaa, dual.a]))
        from repro.testbed.inference import query_order

        assert query_order(capture) == [RdataType.A, RdataType.AAAA]

    def test_gap_delays_second_query(self):
        net, client, server = make_lab()
        AuthoritativeServer(server, [standard_zone()]).start()
        stub = StubResolver(client, ["192.0.2.53"])
        dual = stub.lookup_dual("www.example.com",
                                first=RdataType.AAAA, gap=0.030)
        net.sim.run_until(net.sim.all_of([dual.aaaa, dual.a]))
        aaaa, a = dual.aaaa.value, dual.a.value
        assert a.asked_at - aaaa.asked_at == pytest.approx(0.030)

    def test_nodata_answer_is_unusable(self):
        net, client, server = make_lab()
        AuthoritativeServer(server, [standard_zone()]).start()
        stub = StubResolver(client, ["192.0.2.53"])
        dual = stub.lookup_dual("v4only.example.com")
        net.sim.run_until(net.sim.all_of([dual.aaaa, dual.a]))
        assert not dual.aaaa.value.usable
        assert dual.a.value.usable

    def test_invalid_first_type_rejected(self):
        net, client, server = make_lab()
        stub = StubResolver(client, ["192.0.2.53"])
        with pytest.raises(ValueError):
            stub.lookup_dual("www.example.com", first=RdataType.TXT)

    def test_latency_recorded(self):
        net, client, server = make_lab()
        auth = AuthoritativeServer(server, [standard_zone()]).start()
        auth.static_delays[RdataType.AAAA] = 0.120
        stub = StubResolver(client, ["192.0.2.53"])
        dual = stub.lookup_dual("www.example.com")
        net.sim.run_until(net.sim.all_of([dual.aaaa, dual.a]))
        assert dual.aaaa.value.latency == pytest.approx(0.120, abs=0.005)
        assert dual.a.value.latency < 0.010


class TestForwardingResolver:
    def test_forwards_and_answers(self):
        net, client, server = make_lab()
        AuthoritativeServer(server, [standard_zone()],
                            port=5353).start()
        forwarder = ForwardingResolver(server, upstream="192.0.2.53",
                                       upstream_port=5353).start()
        stub = StubResolver(client, ["192.0.2.53"])
        response = net.sim.run_until(
            stub.query("www.example.com", RdataType.A))
        assert response.rcode is Rcode.NOERROR
        assert forwarder.forwarded == 1

    def test_upstream_timeout_yields_servfail(self):
        net, client, server = make_lab()
        auth = AuthoritativeServer(server, [standard_zone()],
                                   port=5353).start()
        auth.static_delays[RdataType.AAAA] = 10.0
        forwarder = ForwardingResolver(server, upstream="192.0.2.53",
                                       upstream_port=5353,
                                       upstream_timeout=1.0).start()
        stub = StubResolver(client, ["192.0.2.53"])
        response = net.sim.run_until(
            stub.query("www.example.com", RdataType.AAAA))
        assert response.rcode is Rcode.SERVFAIL
        assert net.sim.now == pytest.approx(1.0, abs=0.010)
        assert forwarder.servfails == 1

    def test_stop_closes_socket(self):
        net, client, server = make_lab()
        AuthoritativeServer(server, [standard_zone()], port=5353).start()
        forwarder = ForwardingResolver(server, upstream="192.0.2.53",
                                       upstream_port=5353).start()
        forwarder.stop()
        stub = StubResolver(client, ["192.0.2.53"], timeout=0.5,
                            retries=0)
        process = stub.query("www.example.com", RdataType.A)
        process.defused = True
        net.sim.run(until=5.0)
        assert isinstance(process.exception, QueryTimeout)
