"""The Experiment API registry contract.

Every registered experiment must plan deterministically, plan purely
(no execution, no writes), key-space itself disjointly from the others
(or overlap *intentionally*, asserted below), and — for store-backed
experiments — cover every key its execution stores, so a warm store
replays with zero misses and ``repro cache gc`` can never collect a
registered experiment's entries.
"""

import itertools

import pytest

from repro.experiments import (Artifact, Experiment, Knob, Session,
                               all_experiments, get_experiment, register)
from repro.testbed import CampaignStore

#: Cheap knob overrides so contract tests execute in seconds; shapes
#: (key structure, case names, store usage) are unchanged by these.
FAST_KNOBS = {
    "table2": {"repetitions": 1},
    "table3": {"repetitions": 2},
    "table5": {"repetitions": 1},
    "figure2": {"step": 200},
    "fingerprint": {"client": "curl 7.88.1", "stop": 100},
    "conformance": {"stop": 100},
    "fingerprint-diff": {"client_a": "curl 7.88.1",
                         "client_b": "wget 1.21.3", "stop": 100},
    "population-latency": {"samples": 6, "degrade_step": 200},
    "population-family-share": {"samples": 6, "degrade_step": 200},
    "synthesize-scenarios": {"synthesis_seeds": 4, "synthesis_rounds": 1,
                             "synthesis_top": 2, "synthesis_neighbors": 2,
                             "promote": 3,
                             "clients": "curl,wget,hev3-reference"},
    "synthesize-report": {"synthesis_seeds": 4, "synthesis_rounds": 1,
                          "synthesis_top": 2, "synthesis_neighbors": 2,
                          "promote": 3,
                          "clients": "curl,wget,hev3-reference"},
}

#: Experiments whose campaigns go through the store.
STORE_BACKED = ("table2", "table3", "table5", "figure2", "figure5",
                "fingerprint", "conformance", "fingerprint-diff",
                "conformance-hev3", "conformance-svcb",
                "conformance-sortlist", "population-latency",
                "population-family-share", "synthesize-scenarios",
                "synthesize-report")

#: Pairs whose plans may intentionally share keys: fingerprint
#: defaults to 'all' local clients — exactly the conformance battery —
#: and fingerprint-diff probes two of those clients with the same
#: scenario cases.  The two population experiments aggregate the same
#: sampled campaign, so their plans are identical by construction.
#: Every other pair must be disjoint.
ALLOWED_OVERLAPS = {
    frozenset({"fingerprint", "conformance"}),
    frozenset({"fingerprint", "fingerprint-diff"}),
    frozenset({"conformance", "fingerprint-diff"}),
    frozenset({"population-latency", "population-family-share"}),
    # The report fingerprint-probes the same search the scenario
    # experiment scores, so their key spaces coincide by construction.
    frozenset({"synthesize-scenarios", "synthesize-report"}),
}


def session_for(experiment, store=None, seed=0, fast=True):
    knobs = experiment.default_knobs()
    if fast:
        knobs.update(FAST_KNOBS.get(experiment.name, {}))
    return Session(seed=seed, store=store, knobs=knobs)


class TestCatalogue:
    def test_catalogue_is_complete(self):
        names = [experiment.name for experiment in all_experiments()]
        assert len(names) >= 12
        for expected in ("table1", "table2", "table3", "table4",
                         "table5", "figure2", "figure4", "figure5",
                         "delayed-a", "trace", "fingerprint",
                         "conformance", "fingerprint-diff"):
            assert expected in names

    def test_metadata_declared(self):
        for experiment in all_experiments():
            assert experiment.name
            assert experiment.title
            assert experiment.paper

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(get_experiment("table1"))

    def test_unnamed_registration_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register(Experiment())

    def test_unknown_name_lists_the_catalogue(self):
        with pytest.raises(KeyError, match="table1"):
            get_experiment("figure9")


class TestPlanning:
    def test_plans_are_deterministic(self):
        for experiment in all_experiments():
            session = session_for(experiment)
            assert (list(experiment.plan(session))
                    == list(experiment.plan(session))), experiment.name

    def test_plan_is_pure(self, tmp_path):
        """Planning executes nothing: no entries appear, no counters
        move past lookups, and an attached store stays empty."""
        store = CampaignStore(tmp_path)
        for experiment in all_experiments():
            list(experiment.plan(session_for(experiment, store=store)))
        assert store.stats.stores == 0
        assert list(store.entries()) == []

    def test_key_spaces_disjoint_except_declared(self):
        """Key collisions across experiments would make gc liveness
        and warm-run attribution ambiguous — every overlap must be
        intentional and asserted here."""
        plans = {}
        for experiment in all_experiments():
            plans[experiment.name] = set(
                experiment.plan(session_for(experiment, fast=False)))
        for left, right in itertools.combinations(sorted(plans), 2):
            if frozenset({left, right}) not in ALLOWED_OVERLAPS:
                shared = plans[left] & plans[right]
                assert not shared, (left, right, len(shared))
        # The default fingerprint plan ('all' clients, same battery)
        # is exactly the conformance plan.
        assert plans["fingerprint"] == plans["conformance"]
        # fingerprint-diff probes two 'all' clients over the same
        # scenario cases: a shrunken sweep plans a key subset.
        diff = get_experiment("fingerprint-diff")
        diff_plan = set(diff.plan(session_for(diff)))
        assert diff_plan and diff_plan <= plans["fingerprint"]
        # The two population experiments render different aggregations
        # of one sampled campaign — identical key spaces, and both are
        # disjoint from every fixed-configuration experiment (checked
        # by the generic loop above).
        assert (plans["population-latency"]
                == plans["population-family-share"])
        assert plans["population-latency"]
        # The two synthesis experiments drive one search: identical
        # plans, disjoint from everything hand-written (the generic
        # loop above checks the disjointness half).
        assert (plans["synthesize-scenarios"]
                == plans["synthesize-report"])
        assert plans["synthesize-scenarios"]

    def test_default_fingerprint_diff_plans_nothing(self):
        experiment = get_experiment("fingerprint-diff")
        assert list(experiment.plan(
            session_for(experiment, fast=False))) == []


class TestExecutionContract:
    @pytest.mark.parametrize("name", STORE_BACKED)
    def test_plan_covers_execution_and_warm_run_hits(self, tmp_path,
                                                     name):
        """The gc-safety contract, per experiment: a cold execution
        stores only planned keys, and a warm re-execution resolves
        entirely from the store (zero misses, byte-identical)."""
        experiment = get_experiment(name)
        cold_store = CampaignStore(tmp_path)
        cold = experiment.run(session_for(experiment, store=cold_store))
        assert cold_store.stats.stores > 0
        on_disk = {key for key, _ in cold_store.entries()}
        planned = set(experiment.plan(
            session_for(experiment, store=CampaignStore(tmp_path))))
        assert on_disk <= planned
        warm_store = CampaignStore(tmp_path)
        warm = experiment.run(session_for(experiment, store=warm_store))
        assert warm_store.stats.misses == 0
        assert warm_store.stats.hits > 0
        assert warm.text == cold.text

    def test_renders_are_artifacts(self, tmp_path):
        for name in ("table1", "table4", "trace", "delayed-a"):
            experiment = get_experiment(name)
            artifact = experiment.run(session_for(experiment))
            assert isinstance(artifact, Artifact)
            assert artifact.text

    def test_json_capable_experiments_carry_data(self, tmp_path):
        store = CampaignStore(tmp_path)
        experiment = get_experiment("fingerprint")
        artifact = experiment.run(session_for(experiment, store=store))
        assert artifact.data is not None
        assert artifact.json_text().startswith("[")


class TestSession:
    def test_knob_fallback(self):
        session = Session(knobs={"step": 5, "flagged": False})
        assert session.knob("step", 25) == 5
        assert session.knob("missing", 25) == 25
        assert session.knob("flagged", True) is False

    def test_with_knobs_shares_context(self, tmp_path):
        store = CampaignStore(tmp_path)
        base = Session(seed=7, workers=2, store=store)
        derived = base.with_knobs(step=5)
        assert derived.seed == 7
        assert derived.workers == 2
        assert derived.store is store
        assert derived.knobs == {"step": 5}

    def test_cache_line_only_after_activity(self, tmp_path):
        session = Session(store=CampaignStore(tmp_path))
        assert session.cache_line() is None
        session.store.get_record(CampaignStore.key("x"))
        line = session.cache_line()
        assert line is not None and line.startswith("[cache] ")
        assert Session().cache_line() is None

    def test_knob_declarations_drive_cli_options(self):
        knob = Knob("delay_ms", type=int, default=400)
        assert knob.option == "--delay-ms"
