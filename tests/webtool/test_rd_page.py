"""Tests for the RD web test page (Figure 4b)."""

import pytest

from repro.clients import get_profile
from repro.simnet import Family
from repro.webtool import (RDWebSession, WebToolDeployment,
                           render_rd_session)


@pytest.fixture(scope="module")
def sessions():
    deployment = WebToolDeployment(seed=45)
    safari = RDWebSession(deployment, get_profile("Safari", "17.6"),
                          delays_ms=(0, 25, 100, 500, 1000)).run()
    chrome = RDWebSession(deployment, get_profile("Chrome", "130.0"),
                          delays_ms=(0, 25, 100, 500, 1000)).run()
    return safari, chrome


class TestRDPage:
    def test_safari_flips_to_ipv4_beyond_rd(self, sessions):
        safari, _ = sessions
        flip = safari.flip_delay_ms()
        assert flip is not None
        assert flip <= 100  # RD is 50 ms; first probed step beyond it

    def test_safari_never_stalls(self, sessions):
        safari, _ = sessions
        assert safari.max_stall_s() < 0.300

    def test_safari_classified_as_rd_implementer(self, sessions):
        safari, _ = sessions
        assert safari.implements_rd()

    def test_chrome_stays_ipv6_but_stalls(self, sessions):
        _, chrome = sessions
        assert chrome.flip_delay_ms() is None  # never leaves IPv6
        for outcome in chrome.outcomes:
            assert outcome.used_family is Family.V6
            # Fetch time tracks the injected AAAA delay.
            assert outcome.fetch_time_s >= outcome.aaaa_delay_ms / 1000.0

    def test_chrome_not_classified_as_rd_implementer(self, sessions):
        _, chrome = sessions
        assert not chrome.implements_rd()

    def test_render_mentions_verdict(self, sessions):
        safari, chrome = sessions
        safari_text = render_rd_session(safari)
        chrome_text = render_rd_session(chrome)
        assert "resolution delay implemented" in safari_text
        assert "no resolution delay" in chrome_text

    def test_low_delays_stay_ipv6_for_everyone(self, sessions):
        for session in sessions:
            zero = [o for o in session.outcomes
                    if o.aaaa_delay_ms == 0][0]
            assert zero.used_family is Family.V6
