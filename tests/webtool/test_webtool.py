"""Tests for the web-based testing tool."""

import pytest

from repro.clients import get_profile
from repro.simnet import Family
from repro.webtool import (DELAY_LADDER_MS, NetworkConditions, UAEntry,
                           WebCampaign, WebToolDeployment, WebToolSession,
                           build_ladder, cad_interval_from_outcomes,
                           classify_consistency, format_cad_interval,
                           profile_for_entry, render_session_ladder)
from repro.webtool.campaign import TABLE5_MATRIX
from repro.webtool.report import ConsistencyMark


class TestLadder:
    def test_eighteen_delays(self):
        assert len(DELAY_LADDER_MS) == 18
        assert DELAY_LADDER_MS[0] == 0
        assert DELAY_LADDER_MS[-1] == 5000

    def test_dedicated_pairs_and_domains(self):
        ladder = build_ladder()
        v4 = {step.v4_address for step in ladder}
        v6 = {step.v6_address for step in ladder}
        domains = {step.domain for step in ladder}
        assert len(v4) == len(ladder)
        assert len(v6) == len(ladder)
        assert len(domains) == len(ladder)

    def test_nonce_hostnames(self):
        step = build_ladder()[3]
        assert step.hostname("abc123").startswith("nabc123.")

    def test_cad_interval_inference(self):
        outcomes = [(0, True), (100, True), (200, True), (250, False),
                    (300, False)]
        assert cad_interval_from_outcomes(outcomes) == (200, 250)

    def test_cad_interval_always_v6(self):
        assert cad_interval_from_outcomes([(0, True), (5000, True)]) == \
            (5000, None)

    def test_format_interval(self):
        assert format_cad_interval((200, 250)) == "CAD in (200, 250] ms"
        assert "IPv6 on every step" in format_cad_interval((5000, None))


class TestSessions:
    def test_chrome_session_flips_at_300(self):
        deployment = WebToolDeployment(seed=31)
        session = WebToolSession(deployment,
                                 get_profile("Chrome", "130.0"),
                                 conditions=NetworkConditions.lab_like())
        result = session.run()
        low, high = result.cad_interval()
        # CAD 300 ms: last IPv6 at 250/300, first IPv4 at 300/350.
        assert low in (250, 300)
        assert high in (300, 350)
        assert result.is_monotonic()

    def test_session_uses_client_side_family_detection(self):
        deployment = WebToolDeployment(seed=32)
        session = WebToolSession(deployment,
                                 get_profile("curl", "7.88.1"),
                                 conditions=NetworkConditions.lab_like())
        result = session.run()
        zero_step = [o for o in result.outcomes if o.delay_ms == 0][0]
        assert zero_step.used_family is Family.V6
        top_step = [o for o in result.outcomes if o.delay_ms == 5000][0]
        assert top_step.used_family is Family.V4

    def test_safari_sessions_vary(self):
        deployment = WebToolDeployment(seed=33)
        intervals = set()
        for repetition in range(6):
            session = WebToolSession(deployment,
                                     get_profile("Safari", "17.6"),
                                     repetition=repetition)
            intervals.add(session.run().cad_interval())
        # Dynamic CAD: the interval moves between sessions.
        assert len(intervals) >= 3

    def test_render_ladder_output(self):
        deployment = WebToolDeployment(seed=34)
        session = WebToolSession(deployment,
                                 get_profile("Chrome", "130.0"),
                                 conditions=NetworkConditions.lab_like())
        text = render_session_ladder(session.run())
        assert "IPv6" in text and "IPv4" in text
        assert "CAD in" in text


class TestCampaign:
    def test_table5_matrix_shape(self):
        assert len(TABLE5_MATRIX) == 33
        browsers = {entry.browser for entry in TABLE5_MATRIX}
        assert len(browsers) == 9  # nine browsers, as the paper states
        os_names = {entry.os_name for entry in TABLE5_MATRIX}
        assert len(os_names) == 7  # seven operating systems

    def test_profile_synthesis_for_unlisted_versions(self):
        profile = profile_for_entry(UAEntry("Mac OS X", "10.15.7",
                                            "Opera", "114.0.0"))
        assert profile.name == "Opera"
        assert profile.engine_family == "chromium"

    def test_mobile_safari_maps_to_webkit(self):
        profile = profile_for_entry(UAEntry("iOS", "18.1",
                                            "Mobile Safari", "18.1"))
        assert profile.engine_family == "webkit"
        assert profile.params.maximum_cad == pytest.approx(1.0)

    def test_small_campaign_aggregates(self):
        campaign = WebCampaign(seed=35, repetitions=3)
        entries = (UAEntry("Linux", "", "Chrome", "130.0.0"),
                   UAEntry("Mac OS X", "10.15.7", "Safari", "17.6"))
        result = campaign.run(entries=entries)
        assert len(result) == 6
        by_browser = result.by_browser()
        assert set(by_browser) == {"Chrome", "Safari"}
        chrome = by_browser["Chrome"]
        safari = by_browser["Safari"]
        # Safari shows more inconsistent (non-monotonic) sessions.
        assert safari.inconsistent_sessions >= chrome.inconsistent_sessions

    def test_consistency_classification(self):
        campaign = WebCampaign(seed=36, repetitions=5)
        entries = (UAEntry("Linux", "", "Chrome", "130.0.0"),
                   UAEntry("Mac OS X", "10.15.7", "Safari", "17.6"))
        result = campaign.run(entries=entries)
        by_browser = result.by_browser()
        chrome_mark = classify_consistency(by_browser["Chrome"],
                                           local_cad_ms=300.0)
        safari_mark = classify_consistency(by_browser["Safari"],
                                           local_cad_ms=2000.0)
        assert chrome_mark in (ConsistencyMark.CONSISTENT,
                               ConsistencyMark.DEVIATION)
        assert safari_mark is ConsistencyMark.INCONSISTENT
