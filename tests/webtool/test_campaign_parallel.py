"""Parallel web campaigns: identity with serial, determinism, guards."""

import pytest

from repro.webtool import UAEntry, WebCampaign

ENTRIES = (UAEntry("Linux", "", "Chrome", "130.0.0"),
           UAEntry("Mac OS X", "10.15.7", "Safari", "17.6"),
           UAEntry("Linux", "", "Firefox", "132.0"))


class TestParallelWebCampaign:
    def test_serial_and_parallel_sessions_identical(self):
        campaign = WebCampaign(seed=7, repetitions=3)
        serial = campaign.run(entries=ENTRIES)
        parallel = campaign.run(entries=ENTRIES, workers=2)
        assert serial.sessions == parallel.sessions

    def test_independent_of_process_history(self):
        """Re-running the same campaign in one process must not drift."""
        campaign = WebCampaign(seed=8, repetitions=2)
        first = campaign.run(entries=ENTRIES)
        second = campaign.run(entries=ENTRIES)
        assert first.sessions == second.sessions

    def test_rejects_bad_worker_count(self):
        campaign = WebCampaign(seed=9, repetitions=1)
        with pytest.raises(ValueError):
            campaign.run(entries=ENTRIES, workers=0)


class TestWebCampaignStore:
    def test_warm_rerun_identical_and_all_hits(self, tmp_path):
        from repro.testbed import CampaignStore

        campaign = WebCampaign(seed=11, repetitions=2)
        cold_store = CampaignStore(tmp_path)
        cold = campaign.run(entries=ENTRIES, store=cold_store)
        assert cold_store.stats.hits == 0
        assert cold_store.stats.stores == len(ENTRIES)

        warm_store = CampaignStore(tmp_path)
        warm = campaign.run(entries=ENTRIES, store=warm_store)
        assert warm_store.stats.hits == len(ENTRIES)
        assert warm_store.stats.misses == 0
        assert warm.sessions == cold.sessions

    def test_cached_equals_uncached(self, tmp_path):
        from repro.testbed import CampaignStore

        campaign = WebCampaign(seed=12, repetitions=2)
        fresh = campaign.run(entries=ENTRIES)
        campaign.run(entries=ENTRIES, store=CampaignStore(tmp_path))
        cached = campaign.run(entries=ENTRIES,
                              store=CampaignStore(tmp_path))
        assert cached.sessions == fresh.sessions

    def test_seed_or_repetition_change_misses(self, tmp_path):
        from repro.testbed import CampaignStore

        WebCampaign(seed=13, repetitions=2).run(
            entries=ENTRIES, store=CampaignStore(tmp_path))
        reseeded_store = CampaignStore(tmp_path)
        WebCampaign(seed=14, repetitions=2).run(
            entries=ENTRIES, store=reseeded_store)
        assert reseeded_store.stats.hits == 0
        more_reps_store = CampaignStore(tmp_path)
        WebCampaign(seed=13, repetitions=3).run(
            entries=ENTRIES, store=more_reps_store)
        assert more_reps_store.stats.hits == 0


class TestWorkersValidation:
    def test_table2_rejects_zero_workers(self):
        from repro.analysis import table2_features

        with pytest.raises(ValueError):
            table2_features(workers=0)

    def test_table3_rejects_zero_workers(self):
        from repro.analysis import table3_resolvers

        with pytest.raises(ValueError):
            table3_resolvers(workers=-1)
