"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "HEv1 (2012)" in out
        assert "250 ms" in out

    def test_trace(self, capsys):
        assert main(["trace", "--delay-ms", "400"]) == 0
        out = capsys.readouterr().out
        assert "connect-requested" in out
        assert "winner: IPv4" in out

    def test_trace_fast_ipv6(self, capsys):
        assert main(["trace", "--delay-ms", "0"]) == 0
        assert "winner: IPv6" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure5"]) == 0
        out = capsys.readouterr().out
        assert "n-th connection attempt" in out
        assert "Safari" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Hurricane Electric" in out
        assert "no" in out

    def test_delayed_a(self, capsys):
        assert main(["delayed-a"]) == 0
        out = capsys.readouterr().out
        assert "+HEv3 flag" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_no_web(self, capsys):
        assert main(["table2", "--no-web"]) == 0
        out = capsys.readouterr().out
        assert "Safari 17.6" in out


class TestCliCache:
    def figure2(self, capsys, *argv):
        assert main([*argv, "figure2", "--step", "400"]) == 0
        return capsys.readouterr().out

    def test_cache_dir_warm_rerun_identical(self, capsys, tmp_path):
        cold = self.figure2(capsys, "--cache-dir", str(tmp_path))
        assert "[cache] hits=0 misses=34 stores=34" in cold
        warm = self.figure2(capsys, "--cache-dir", str(tmp_path))
        assert "[cache] hits=34 misses=0 stores=0" in warm

        def figure_only(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[cache]")]

        assert figure_only(cold) == figure_only(warm)

    def test_no_cache_overrides_cache_dir(self, capsys, tmp_path):
        out = self.figure2(capsys, "--cache-dir", str(tmp_path),
                           "--no-cache")
        assert "[cache]" not in out
        assert not list(tmp_path.iterdir())

    def test_cache_dir_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.cli import build_parser

        out = self.figure2(capsys)
        assert "[cache]" in out
        assert list(tmp_path.iterdir())
        args = build_parser().parse_args(["--no-cache", "table1"])
        assert args.cache_dir == str(tmp_path)
        assert args.no_cache
