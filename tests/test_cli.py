"""Smoke tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main

GOLDENS = pathlib.Path(__file__).resolve().parent / "goldens"


class TestGoldenArtifacts:
    """The registry-dispatched CLI reproduces the pre-registry output
    byte for byte (goldens captured from the hand-wired commands)."""

    @pytest.mark.parametrize("argv, golden", [
        (["table1"], "table1.txt"),
        (["table4"], "table4.txt"),
        (["figure2", "--step", "400"], "figure2_step400.txt"),
        (["figure4"], "figure4.txt"),
        (["figure5"], "figure5.txt"),
        (["delayed-a"], "delayed_a.txt"),
        (["trace", "--delay-ms", "400"], "trace_400.txt"),
        (["conformance", "--list"], "conformance_list.txt"),
        (["fingerprint", "curl 7.88.1"], "fingerprint_curl.txt"),
    ])
    def test_byte_identical_to_golden(self, capsys, argv, golden):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out == (GOLDENS / golden).read_text(encoding="utf-8")


class TestCliRegistry:
    def test_ls_enumerates_the_catalogue(self, capsys):
        assert main(["ls"]) == 0
        out = capsys.readouterr().out
        assert "Registered experiments" in out
        for name in ("table1", "table5", "figure2", "delayed-a",
                     "fingerprint", "conformance", "fingerprint-diff"):
            assert name in out
        count = int(out.strip().splitlines()[-1].split()[0])
        assert count >= 12

    def test_ls_registers_the_stage_batteries(self, capsys):
        assert main(["ls"]) == 0
        out = capsys.readouterr().out
        for name in ("conformance-hev3", "conformance-svcb",
                     "conformance-sortlist"):
            assert name in out

    def test_ls_clients_lists_policy_stacks(self, capsys):
        assert main(["ls", "--clients"]) == 0
        out = capsys.readouterr().out
        assert "Client registry: policy stacks per profile" in out
        # Per-stage summaries come straight from the declarations.
        assert "sortlist=linux" in out
        assert "sortlist=rfc3484" in out
        assert "sortlist=macos" in out
        assert "cad=dyn(10/100/2000ms)" in out
        assert "serial" in out
        assert "hev3-reference draft-07" in out
        assert "rd=50ms svcb" in out
        count = int(out.strip().splitlines()[-1].split()[0])
        from repro.clients import all_profiles
        assert count == len(all_profiles())

    def test_ls_plans_key_counts(self, capsys):
        assert main(["ls"]) == 0
        out = capsys.readouterr().out
        figure2_row = [line for line in out.splitlines()
                       if line.startswith("figure2 ")][0]
        assert "289" in figure2_row  # 17 clients x 17 sweep values

    @pytest.mark.parametrize("argv", [
        ["table1"],
        ["figure2", "--step", "400"],
        ["trace", "--delay-ms", "400"],
        ["conformance", "--list"],
    ])
    def test_run_verb_matches_legacy_alias(self, capsys, argv):
        assert main(argv) == 0
        legacy = capsys.readouterr().out
        assert main(["run", *argv]) == 0
        assert capsys.readouterr().out == legacy

    def test_run_verb_matches_alias_warm_cached(self, capsys, tmp_path):
        argv = ["--cache-dir", str(tmp_path), "figure2", "--step", "400"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        legacy = capsys.readouterr().out
        assert main(["--cache-dir", str(tmp_path), "run", "figure2",
                     "--step", "400"]) == 0
        assert capsys.readouterr().out == legacy

    def test_run_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "figure9"])

    def test_run_json_falls_back_to_text_without_data(self, capsys):
        assert main(["run", "table4", "--json"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_cache_line_printed_exactly_once(self, capsys, tmp_path):
        assert main(["--cache-dir", str(tmp_path), "figure2",
                     "--step", "400"]) == 0
        out = capsys.readouterr().out
        cache_lines = [line for line in out.splitlines()
                       if line.startswith("[cache]")]
        assert len(cache_lines) == 1

    def test_pure_commands_print_no_cache_line(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["table1"]) == 0
        assert "[cache]" not in capsys.readouterr().out
        assert main(["conformance", "--list"]) == 0
        assert "[cache]" not in capsys.readouterr().out


class TestCliResilience:
    def strip_runtime_lines(self, text: str) -> str:
        return "\n".join(line for line in text.splitlines()
                         if not line.startswith(("[cache]", "[faults]")))

    def test_resume_requires_cache_dir(self):
        with pytest.raises(SystemExit, match="--resume needs"):
            main(["--resume", "figure2", "--step", "400"])

    def test_bad_fault_plan_errors(self):
        with pytest.raises(SystemExit, match="unknown fault kind"):
            main(["--fault-plan", "meteor:0.5", "figure2",
                  "--step", "400"])

    def test_negative_retries_errors(self):
        with pytest.raises(SystemExit, match="retries"):
            main(["--retries", "-1", "figure2", "--step", "400"])

    def test_chaos_run_is_byte_identical(self, capsys, tmp_path):
        """The headline invariant, end to end through the CLI: a
        figure rendered under an injected crash+corruption plan with
        retries matches the fault-free rendering byte for byte."""
        assert main(["figure2", "--step", "400"]) == 0
        clean = capsys.readouterr().out
        assert main(["--cache-dir", str(tmp_path), "--workers", "2",
                     "--retries", "2", "--fault-plan",
                     "crash:0.3,corrupt:0.5", "figure2",
                     "--step", "400"]) == 0
        chaos = capsys.readouterr().out
        assert (self.strip_runtime_lines(chaos)
                == self.strip_runtime_lines(clean))
        assert any(line.startswith("[faults]")
                   for line in chaos.splitlines())
        # Warm rerun quarantines the torn entries and still matches.
        assert main(["--cache-dir", str(tmp_path), "--retries", "2",
                     "figure2", "--step", "400"]) == 0
        warm = capsys.readouterr().out
        assert (self.strip_runtime_lines(warm)
                == self.strip_runtime_lines(clean))
        assert "quarantined=" in warm

    def test_resumed_campaign_is_byte_identical(self, capsys, tmp_path):
        assert main(["figure2", "--step", "400"]) == 0
        clean = capsys.readouterr().out
        argv = ["--cache-dir", str(tmp_path), "--retries", "1",
                "figure2", "--step", "400"]
        assert main(argv) == 0
        capsys.readouterr()
        journal = tmp_path / ".journal" / "figure2.log"
        assert journal.is_file()
        assert main(["--resume", *argv]) == 0
        resumed = capsys.readouterr().out
        assert (self.strip_runtime_lines(resumed)
                == self.strip_runtime_lines(clean))
        assert "resumed=" in resumed
        assert "misses=0" in resumed

    def test_plain_cached_run_prints_no_faults_line(self, capsys,
                                                    tmp_path):
        """Resilience flags opt into the ``[faults]`` line; a plain
        cached invocation stays byte-identical to its pre-resilience
        output (the store-only journal is silent)."""
        argv = ["--cache-dir", str(tmp_path), "figure2", "--step", "400"]
        assert main(argv) == 0
        assert "[faults]" not in capsys.readouterr().out
        assert main(argv) == 0
        assert "[faults]" not in capsys.readouterr().out


class TestCliFingerprintDiff:
    def test_diff_renders_drift_table(self, capsys, tmp_path):
        assert main(["--cache-dir", str(tmp_path), "fingerprint",
                     "--diff", "curl 7.88.1", "wget 1.21.3"]) == 0
        out = capsys.readouterr().out
        assert "Fingerprint drift: curl 7.88.1 -> wget 1.21.3" in out
        assert "CHANGED" in out

    def test_diff_json_and_run_verb_identity(self, capsys, tmp_path):
        import json

        argv = ["--cache-dir", str(tmp_path)]
        diff_args = ["--diff", "curl 7.88.1", "wget 1.21.3", "--json"]
        assert main([*argv, "fingerprint", *diff_args]) == 0
        capsys.readouterr()  # cold run warms the store
        assert main([*argv, "fingerprint", *diff_args]) == 0
        legacy = capsys.readouterr().out
        data = json.loads("\n".join(
            line for line in legacy.splitlines()
            if not line.startswith("[cache]")))
        assert data["client_a"] == "curl 7.88.1"
        assert data["has_drift"] is True
        # Warm on both paths, so even the cache counters agree.
        assert main([*argv, "run", "fingerprint-diff", "curl 7.88.1",
                     "wget 1.21.3", "--json"]) == 0
        assert capsys.readouterr().out == legacy

    def test_fingerprint_without_client_or_diff_errors(self):
        with pytest.raises(SystemExit, match="client selector"):
            main(["fingerprint"])

    def test_diff_rejects_ambiguous_selector(self):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["fingerprint", "--diff", "all", "curl 7.88.1"])


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "HEv1 (2012)" in out
        assert "250 ms" in out

    def test_trace(self, capsys):
        assert main(["trace", "--delay-ms", "400"]) == 0
        out = capsys.readouterr().out
        assert "connect-requested" in out
        assert "winner: IPv4" in out

    def test_trace_fast_ipv6(self, capsys):
        assert main(["trace", "--delay-ms", "0"]) == 0
        assert "winner: IPv6" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure5"]) == 0
        out = capsys.readouterr().out
        assert "n-th connection attempt" in out
        assert "Safari" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Hurricane Electric" in out
        assert "no" in out

    def test_delayed_a(self, capsys):
        assert main(["delayed-a"]) == 0
        out = capsys.readouterr().out
        assert "+HEv3 flag" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_no_web(self, capsys):
        assert main(["table2", "--no-web"]) == 0
        out = capsys.readouterr().out
        assert "Safari 17.6" in out


class TestCliConformance:
    def test_fingerprint_single_client(self, capsys):
        assert main(["fingerprint", "curl 7.88.1"]) == 0
        out = capsys.readouterr().out
        assert "RFC 8305 fingerprint — curl 7.88.1" in out
        assert "v6-blackhole" in out
        assert "deviations:" in out

    def test_fingerprint_json_is_machine_readable(self, capsys):
        import json

        assert main(["fingerprint", "curl 7.88.1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["client"] == "curl 7.88.1"
        assert len(data[0]["scenarios_run"]) >= 8
        cad = next(v for v in data[0]["verdicts"]
                   if v["parameter"] == "connection-attempt-delay"
                   and v["scenario"] == "v6-delay-sweep")
        assert cad["measured_ms"] == pytest.approx(200.0, abs=10.0)

    def test_fingerprint_unknown_client_errors(self, capsys):
        with pytest.raises(SystemExit, match="no client matches"):
            main(["fingerprint", "NetscapeNavigator"])

    def test_conformance_list_prints_catalog(self, capsys):
        assert main(["conformance", "--list"]) == 0
        out = capsys.readouterr().out
        assert "Conformance scenario battery" in out
        assert "v6-delay-sweep" in out
        assert "rate-limited-v6" in out

    def test_fingerprint_warm_cache_identical_all_hits(self, capsys,
                                                       tmp_path):
        argv = ["--cache-dir", str(tmp_path), "fingerprint",
                "curl 7.88.1"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out

        def body(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[cache]")]

        assert body(warm) == body(cold)
        cache_line = [line for line in warm.splitlines()
                      if line.startswith("[cache]")][0]
        assert " misses=0 " in cache_line
        assert "hits=0" not in cache_line


class TestCliCacheGC:
    def test_gc_requires_a_cache_dir(self):
        with pytest.raises(SystemExit, match="cache gc needs"):
            main(["cache", "gc"])

    def test_gc_reports_reclaimed_bytes(self, capsys, tmp_path):
        from repro.testbed import CampaignStore

        # One live campaign (conformance, curl) plus a stale orphan.
        assert main(["--cache-dir", str(tmp_path), "fingerprint",
                     "curl 7.88.1"]) == 0
        capsys.readouterr()
        store = CampaignStore(tmp_path)
        store.put(CampaignStore.key("orphan"), {"stale": True})
        assert main(["--cache-dir", str(tmp_path), "cache", "gc"]) == 0
        out = capsys.readouterr().out
        assert "[cache gc]" in out
        assert "removed=1" in out
        # The curl battery survives: a re-run stays fully warm.
        assert main(["--cache-dir", str(tmp_path), "fingerprint",
                     "curl 7.88.1"]) == 0
        warm = capsys.readouterr().out
        assert " misses=0 " in [line for line in warm.splitlines()
                                if line.startswith("[cache]")][0]


class TestCliCache:
    def figure2(self, capsys, *argv):
        assert main([*argv, "figure2", "--step", "400"]) == 0
        return capsys.readouterr().out

    def test_cache_dir_warm_rerun_identical(self, capsys, tmp_path):
        cold = self.figure2(capsys, "--cache-dir", str(tmp_path))
        assert "[cache] hits=0 misses=34 stores=34" in cold
        warm = self.figure2(capsys, "--cache-dir", str(tmp_path))
        assert "[cache] hits=34 misses=0 stores=0" in warm

        def figure_only(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[cache]")]

        assert figure_only(cold) == figure_only(warm)

    def test_no_cache_overrides_cache_dir(self, capsys, tmp_path):
        out = self.figure2(capsys, "--cache-dir", str(tmp_path),
                           "--no-cache")
        assert "[cache]" not in out
        assert not list(tmp_path.iterdir())

    def test_cache_dir_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.cli import build_parser

        out = self.figure2(capsys)
        assert "[cache]" in out
        assert list(tmp_path.iterdir())
        args = build_parser().parse_args(["--no-cache", "table1"])
        assert args.cache_dir == str(tmp_path)
        assert args.no_cache


class TestCliProfile:
    def test_profile_prints_stats_to_stderr(self, capsys):
        assert main(["--profile", "run", "table1"]) == 0
        captured = capsys.readouterr()
        # The artifact itself stays clean on stdout...
        assert "Table 1" in captured.out
        assert "cumtime" not in captured.out
        # ...and the cProfile report (cumulative sort) goes to stderr.
        assert "Ordered by: cumulative time" in captured.err
        assert "ncalls" in captured.err

    def test_without_flag_no_profile_output(self, capsys):
        assert main(["run", "table1"]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
