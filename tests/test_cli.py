"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "HEv1 (2012)" in out
        assert "250 ms" in out

    def test_trace(self, capsys):
        assert main(["trace", "--delay-ms", "400"]) == 0
        out = capsys.readouterr().out
        assert "connect-requested" in out
        assert "winner: IPv4" in out

    def test_trace_fast_ipv6(self, capsys):
        assert main(["trace", "--delay-ms", "0"]) == 0
        assert "winner: IPv6" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure5"]) == 0
        out = capsys.readouterr().out
        assert "n-th connection attempt" in out
        assert "Safari" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Hurricane Electric" in out
        assert "no" in out

    def test_delayed_a(self, capsys):
        assert main(["delayed-a"]) == 0
        out = capsys.readouterr().out
        assert "+HEv3 flag" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_no_web(self, capsys):
        assert main(["table2", "--no-web"]) == 0
        out = capsys.readouterr().out
        assert "Safari 17.6" in out


class TestCliConformance:
    def test_fingerprint_single_client(self, capsys):
        assert main(["fingerprint", "curl 7.88.1"]) == 0
        out = capsys.readouterr().out
        assert "RFC 8305 fingerprint — curl 7.88.1" in out
        assert "v6-blackhole" in out
        assert "deviations:" in out

    def test_fingerprint_json_is_machine_readable(self, capsys):
        import json

        assert main(["fingerprint", "curl 7.88.1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["client"] == "curl 7.88.1"
        assert len(data[0]["scenarios_run"]) >= 8
        cad = next(v for v in data[0]["verdicts"]
                   if v["parameter"] == "connection-attempt-delay"
                   and v["scenario"] == "v6-delay-sweep")
        assert cad["measured_ms"] == pytest.approx(200.0, abs=10.0)

    def test_fingerprint_unknown_client_errors(self, capsys):
        with pytest.raises(SystemExit, match="no client matches"):
            main(["fingerprint", "NetscapeNavigator"])

    def test_conformance_list_prints_catalog(self, capsys):
        assert main(["conformance", "--list"]) == 0
        out = capsys.readouterr().out
        assert "Conformance scenario battery" in out
        assert "v6-delay-sweep" in out
        assert "rate-limited-v6" in out

    def test_fingerprint_warm_cache_identical_all_hits(self, capsys,
                                                       tmp_path):
        argv = ["--cache-dir", str(tmp_path), "fingerprint",
                "curl 7.88.1"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out

        def body(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[cache]")]

        assert body(warm) == body(cold)
        cache_line = [line for line in warm.splitlines()
                      if line.startswith("[cache]")][0]
        assert " misses=0 " in cache_line
        assert "hits=0" not in cache_line


class TestCliCacheGC:
    def test_gc_requires_a_cache_dir(self):
        with pytest.raises(SystemExit, match="cache gc needs"):
            main(["cache", "gc"])

    def test_gc_reports_reclaimed_bytes(self, capsys, tmp_path):
        from repro.testbed import CampaignStore

        # One live campaign (conformance, curl) plus a stale orphan.
        assert main(["--cache-dir", str(tmp_path), "fingerprint",
                     "curl 7.88.1"]) == 0
        capsys.readouterr()
        store = CampaignStore(tmp_path)
        store.put(CampaignStore.key("orphan"), {"stale": True})
        assert main(["--cache-dir", str(tmp_path), "cache", "gc"]) == 0
        out = capsys.readouterr().out
        assert "[cache gc]" in out
        assert "removed=1" in out
        # The curl battery survives: a re-run stays fully warm.
        assert main(["--cache-dir", str(tmp_path), "fingerprint",
                     "curl 7.88.1"]) == 0
        warm = capsys.readouterr().out
        assert " misses=0 " in [line for line in warm.splitlines()
                                if line.startswith("[cache]")][0]


class TestCliCache:
    def figure2(self, capsys, *argv):
        assert main([*argv, "figure2", "--step", "400"]) == 0
        return capsys.readouterr().out

    def test_cache_dir_warm_rerun_identical(self, capsys, tmp_path):
        cold = self.figure2(capsys, "--cache-dir", str(tmp_path))
        assert "[cache] hits=0 misses=34 stores=34" in cold
        warm = self.figure2(capsys, "--cache-dir", str(tmp_path))
        assert "[cache] hits=34 misses=0 stores=0" in warm

        def figure_only(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[cache]")]

        assert figure_only(cold) == figure_only(warm)

    def test_no_cache_overrides_cache_dir(self, capsys, tmp_path):
        out = self.figure2(capsys, "--cache-dir", str(tmp_path),
                           "--no-cache")
        assert "[cache]" not in out
        assert not list(tmp_path.iterdir())

    def test_cache_dir_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.cli import build_parser

        out = self.figure2(capsys)
        assert "[cache]" in out
        assert list(tmp_path.iterdir())
        args = build_parser().parse_args(["--no-cache", "table1"])
        assert args.cache_dir == str(tmp_path)
        assert args.no_cache
