"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "HEv1 (2012)" in out
        assert "250 ms" in out

    def test_trace(self, capsys):
        assert main(["trace", "--delay-ms", "400"]) == 0
        out = capsys.readouterr().out
        assert "connect-requested" in out
        assert "winner: IPv4" in out

    def test_trace_fast_ipv6(self, capsys):
        assert main(["trace", "--delay-ms", "0"]) == 0
        assert "winner: IPv6" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure5"]) == 0
        out = capsys.readouterr().out
        assert "n-th connection attempt" in out
        assert "Safari" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Hurricane Electric" in out
        assert "no" in out

    def test_delayed_a(self, capsys):
        assert main(["delayed-a"]) == 0
        out = capsys.readouterr().out
        assert "+HEv3 flag" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_no_web(self, capsys):
        assert main(["table2", "--no-web"]) == 0
        out = capsys.readouterr().out
        assert "Safari 17.6" in out
