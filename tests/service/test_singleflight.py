"""Single-flight claims: atomicity, waiting, takeover, no deadlock."""

import threading

from repro.service import SingleFlight, SingleFlightStore
from repro.testbed import CampaignStore

K1, K2, K3 = "aa" * 32, "bb" * 32, "cc" * 32


class TestClaimProtocol:
    def test_claim_all_is_all_or_nothing(self):
        flight = SingleFlight()
        a, b = object(), object()
        granted, foreign = flight.claim_all(a, [K1, K2])
        assert granted and not foreign
        granted, foreign = flight.claim_all(b, [K2, K3])
        assert not granted
        assert foreign == [K2]
        # The failed claim grabbed nothing: K3 is still free for a.
        granted, _ = flight.claim_all(a, [K3])
        assert granted
        assert flight.in_flight() == 3

    def test_reclaim_own_keys_passes_through(self):
        flight = SingleFlight()
        token = object()
        assert flight.claim_all(token, [K1])[0]
        assert flight.claim_all(token, [K1, K2])[0]
        assert flight.in_flight() == 2
        assert flight.claims == 2  # K1 counted once

    def test_release_wakes_waiter(self):
        flight = SingleFlight()
        a, b = object(), object()
        flight.claim_all(a, [K1])
        woke = threading.Event()

        def waiter():
            flight.wait_any(b, [K1], timeout=5.0)
            woke.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        flight.release(a, [K1])
        thread.join(timeout=5.0)
        assert woke.is_set()
        assert flight.waits == 1

    def test_release_all_covers_abandoned_claims(self):
        flight = SingleFlight()
        token = object()
        flight.claim_all(token, [K1, K2, K3])
        assert flight.release_all(token) == 3
        assert flight.in_flight() == 0
        # Another token can now take over the abandoned keys.
        assert flight.claim_all(object(), [K1, K2, K3])[0]

    def test_crossing_claims_never_deadlock(self):
        """Two submissions with opposite claim orders: the all-or-
        nothing grant means one wins both keys and the other waits
        holding nothing — the classic lock-order deadlock is
        structurally impossible."""
        flight = SingleFlight()
        barrier = threading.Barrier(2)
        done = []

        def submission(keys):
            token = object()
            barrier.wait()
            for _ in range(200):
                granted, foreign = flight.claim_all(token, keys)
                if granted:
                    break
                flight.wait_any(token, foreign, timeout=0.01)
            flight.release_all(token)
            done.append(keys[0])

        t1 = threading.Thread(target=submission, args=([K1, K2],))
        t2 = threading.Thread(target=submission, args=([K2, K1],))
        t1.start(); t2.start()
        t1.join(timeout=10.0); t2.join(timeout=10.0)
        assert len(done) == 2


class TestSingleFlightStore:
    def test_miss_is_claimed_then_released_on_put(self, tmp_path):
        flight = SingleFlight()
        store = SingleFlightStore(CampaignStore(tmp_path), flight)
        assert store.get(K1, lambda p: p) is None  # miss → claim
        assert flight.in_flight() == 1
        store.put(K1, {"v": 1})
        assert flight.in_flight() == 0
        assert store.executed == 1

    def test_waiter_sees_winners_record_as_hit(self, tmp_path):
        backing = CampaignStore(tmp_path)
        flight = SingleFlight()
        winner = SingleFlightStore(backing, flight)
        waiter = SingleFlightStore(backing, flight)
        assert winner.get_many([K1], lambda p: p) == {}  # claims K1
        resolved = {}

        def wait_side():
            resolved.update(waiter.get_many([K1], lambda p: p))

        thread = threading.Thread(target=wait_side)
        thread.start()
        for _ in range(1000):  # let the waiter actually block first
            if flight.waits:
                break
            threading.Event().wait(0.005)
        winner.put(K1, {"v": 7})
        thread.join(timeout=10.0)
        assert resolved == {K1: {"v": 7}}
        assert waiter.executed == 0
        assert waiter.waited == 1

    def test_abandoned_claim_is_inherited_not_lost(self, tmp_path):
        backing = CampaignStore(tmp_path)
        flight = SingleFlight()
        crasher = SingleFlightStore(backing, flight)
        heir = SingleFlightStore(backing, flight)
        assert crasher.get(K1, lambda p: p) is None  # claims, never puts
        resolved = []

        def wait_side():
            resolved.append(heir.get(K1, lambda p: p))

        thread = threading.Thread(target=wait_side)
        thread.start()
        crasher.release()  # the submission's finally
        thread.join(timeout=10.0)
        assert resolved == [None]  # heir now owns the miss
        assert flight.in_flight() == 1  # heir's claim

    def test_pickle_reconnects_private_registry(self, tmp_path):
        import pickle
        flight = SingleFlight()
        store = SingleFlightStore(CampaignStore(tmp_path), flight)
        store.get(K1, lambda p: p)  # hold a claim across the pickle
        clone = pickle.loads(pickle.dumps(store))
        assert clone.flight is not flight
        assert clone.inner.root == store.inner.root
        assert flight.in_flight() == 1  # original claim untouched
