"""The memory tier: LRU semantics, hit accounting, hot-shard rebalance."""

from repro.service import LRUCache, ShardHeat, TieredStore
from repro.service.tiering import _MISSING
from repro.testbed import CampaignStore, PackedCampaignStore


def keys_in_shard(shard: str, n: int):
    return [shard + format(i, "02x") * 31 for i in range(n)]


class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh a
        lru.put("c", 3)  # evicts b, the stalest
        assert lru.get("b") is _MISSING
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        assert lru.evictions == 1

    def test_put_refreshes_recency(self):
        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)  # rewrite refreshes too
        lru.put("c", 3)  # evicts b
        assert lru.get("a") == 10
        assert lru.get("b") is _MISSING

    def test_capacity_bound_holds(self):
        lru = LRUCache(3)
        for i in range(50):
            lru.put(str(i), i)
        assert len(lru) == 3
        assert lru.evictions == 47

    def test_zero_capacity_never_stores(self):
        lru = LRUCache(0)
        lru.put("a", 1)
        assert len(lru) == 0
        assert lru.get("a") is _MISSING


class TestTieredReads:
    def test_memory_hit_skips_backing(self, tmp_path):
        backing = CampaignStore(tmp_path)
        tier = TieredStore(backing, capacity=8)
        key = "aa" * 32
        tier.put(key, {"v": 1})
        backing_hits = backing.stats.hits
        assert tier.get(key, lambda p: p["v"]) == 1
        assert backing.stats.hits == backing_hits  # served from memory
        assert tier.stats.hits == 1

    def test_disk_hit_promotes_into_lru(self, tmp_path):
        backing = CampaignStore(tmp_path)
        key = "aa" * 32
        backing.put(key, {"v": 1})
        tier = TieredStore(CampaignStore(tmp_path), capacity=8)
        assert tier.get(key, lambda p: p["v"]) == 1  # disk
        assert key in tier.lru
        assert tier.get(key, lambda p: p["v"]) == 1  # memory
        assert tier.lru.hits == 1

    def test_hits_decode_fresh_objects(self, tmp_path):
        """Caller-side mutation of a hit must not poison later hits."""
        tier = TieredStore(CampaignStore(tmp_path), capacity=8)
        key = "aa" * 32
        tier.put(key, {"v": 1, "nested": {"deep": True}})
        first = tier.get(key, lambda p: p)
        first["nested"]["deep"] = "mutated"
        second = tier.get(key, lambda p: p)
        assert second["nested"]["deep"] is True

    def test_eviction_falls_back_to_disk(self, tmp_path):
        tier = TieredStore(CampaignStore(tmp_path), capacity=2)
        keys = keys_in_shard("aa", 5)
        for i, key in enumerate(keys):
            tier.put(key, {"v": i})
        assert len(tier.lru) == 2
        found = tier.get_many(keys, lambda p: p["v"])
        assert found == {key: i for i, key in enumerate(keys)}


class TestShardHeat:
    def test_hot_needs_floor_and_skew(self):
        heat = ShardHeat()
        heat.note("aa", 100)
        heat.note("bb", 1)
        assert heat.hot_shards(min_reads=64, skew=8.0) == ["aa"]
        # Below the absolute floor nothing is hot, however skewed.
        cold = ShardHeat()
        cold.note("aa", 10)
        assert cold.hot_shards(min_reads=64, skew=8.0) == []

    def test_uniform_traffic_is_never_hot(self):
        heat = ShardHeat()
        for i in range(256):
            heat.note(format(i, "02x"), 100)
        assert heat.hot_shards(min_reads=64, skew=8.0) == []

    def test_decay_halves_and_drops(self):
        heat = ShardHeat()
        heat.note("aa", 100)
        heat.note("bb", 1)
        heat.decay()
        assert heat.counts == {"aa": 50}


class TestRebalance:
    def test_hot_shard_preloaded_and_compacted(self, tmp_path):
        backing = PackedCampaignStore(tmp_path)
        tier = TieredStore(backing, capacity=64)
        keys = keys_in_shard("aa", 8)
        for i, key in enumerate(keys):
            backing.put(key, {"v": i})
        backing.put(keys[0], {"v": 100})  # dead bytes in the pack
        for _ in range(10):  # hot: 80 reads on one shard
            tier.lru.clear()
            tier.get_many(keys, lambda p: p["v"])
        events = tier.rebalance(min_reads=64, skew=8.0)
        assert len(events) == 1
        event = events[0]
        assert event.shard == "aa"
        assert event.reclaimed_bytes > 0
        assert backing.dead_bytes("aa") == 0
        assert all(key in tier.lru for key in keys)
        assert tier.heat.counts.get("aa", 0) < 80  # decayed

    def test_preload_budget_caps_lru_takeover(self, tmp_path):
        backing = CampaignStore(tmp_path)
        tier = TieredStore(backing, capacity=8)  # budget = 2 per shard
        keys = keys_in_shard("aa", 6)
        for i, key in enumerate(keys):
            backing.put(key, {"v": i})
        tier.heat.note("aa", 1000)
        events = tier.rebalance(min_reads=64, skew=8.0)
        assert events[0].preloaded == 2
        assert len(tier.lru) == 2

    def test_nothing_hot_is_a_noop(self, tmp_path):
        tier = TieredStore(CampaignStore(tmp_path), capacity=8)
        assert tier.rebalance() == []

    def test_gc_clears_memory_tier(self, tmp_path):
        tier = TieredStore(CampaignStore(tmp_path), capacity=8)
        key = "aa" * 32
        tier.put(key, {"v": 1})
        tier.gc([])
        assert len(tier.lru) == 0
        assert tier.get(key, lambda p: p) is None  # not resurrected
