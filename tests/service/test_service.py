"""CampaignService: stampedes, coalescing, byte-identity, HTTP."""

import json
import threading

import pytest

from repro.experiments.base import Artifact, Experiment, Knob, Session, \
    knob_mapping
from repro.service import AdmissionError, CampaignService
from repro.service.http import CampaignServiceServer, submit_request
from repro.testbed.store import config_digest


class GridExperiment(Experiment):
    """A tiny campaign-shaped experiment for service tests.

    Never registered (the registry's contract tests forbid pollution) —
    served through the service's injectable ``lookup``.  Each planned
    key is one deterministic "run"; executions are counted on the
    instance so tests can assert the exactly-once invariant.
    """

    name = "grid"
    title = "test grid"
    knobs = (Knob("width", type=int, default=4),)
    json_capable = True

    def __init__(self):
        self.executions = []  # keys executed (list.append is atomic)
        self.barrier = None  # set by tests to force overlap

    def _keys(self, session):
        width = int(session.knob("width", 4))
        return [config_digest("grid-cell", i, session.seed)
                for i in range(width)]

    def plan(self, session):
        return iter(self._keys(session))

    def execute(self, session):
        keys = self._keys(session)
        store = session.store
        if self.barrier is not None:
            self.barrier.wait()
        found = store.get_many(keys, lambda p: p)
        values = []
        for i, key in enumerate(keys):
            payload = found.get(key)
            if payload is None:
                self.executions.append(key)
                payload = {"cell": i, "value": i * i + session.seed}
                store.put(key, payload)
            values.append(payload["value"])
        return values

    def render(self, result):
        text = "grid: " + " ".join(str(v) for v in result) + "\n"
        return Artifact(text=text, data=result)


def make_service(tmp_path, experiment=None, **kwargs):
    experiment = experiment or GridExperiment()
    lookup = {experiment.name: experiment}.__getitem__
    kwargs.setdefault("service_workers", 8)
    service = CampaignService(tmp_path / "cache", lookup=lookup,
                              **kwargs)
    return service, experiment


class TestStampede:
    def test_stampede_executes_each_key_exactly_once(self, tmp_path):
        """The headline invariant: N concurrent identical submissions,
        coalescing OFF (so all N truly run), every key executed once."""
        n = 6
        service, exp = make_service(tmp_path, coalesce=False,
                                    service_workers=n)
        exp.barrier = threading.Barrier(n, timeout=30.0)
        with service:
            futures = [service.submit_async("grid", {"width": 8})
                       for _ in range(n)]
            results = [f.result(timeout=60.0) for f in futures]
        assert len(exp.executions) == 8
        assert len(set(exp.executions)) == 8
        texts = {r.text for r in results}
        assert len(texts) == 1  # byte-identical across the stampede
        assert sum(r.executed for r in results) == 8
        assert all(r.planned == 8 for r in results)
        assert all(r.hits + r.executed == 8 for r in results)

    def test_overlapping_plans_share_the_overlap(self, tmp_path):
        """width=4 ⊂ width=8: the shared prefix executes once total."""
        service, exp = make_service(tmp_path, coalesce=False)
        exp.barrier = threading.Barrier(2, timeout=30.0)
        with service:
            wide = service.submit_async("grid", {"width": 8})
            narrow = service.submit_async("grid", {"width": 4})
            wide.result(timeout=60.0)
            narrow.result(timeout=60.0)
        assert len(exp.executions) == 8
        assert len(set(exp.executions)) == 8

    def test_warm_submission_executes_nothing(self, tmp_path):
        service, exp = make_service(tmp_path)
        with service:
            cold = service.submit("grid", {"width": 5})
            warm = service.submit("grid", {"width": 5})
        assert cold.executed == 5 and cold.hits == 0
        assert warm.executed == 0 and warm.hits == 5
        assert warm.text == cold.text
        assert len(exp.executions) == 5


class TestCoalescing:
    def test_identical_inflight_submissions_coalesce(self, tmp_path):
        n = 5
        service, exp = make_service(tmp_path, coalesce=True,
                                    service_workers=n)
        release = threading.Event()
        exp.barrier = None

        original_execute = exp.execute

        def gated_execute(session):
            release.wait(timeout=30.0)
            return original_execute(session)

        exp.execute = gated_execute
        with service:
            futures = [service.submit_async("grid", {"width": 3})
                       for _ in range(n)]
            release.set()
            results = [f.result(timeout=60.0) for f in futures]
        # Exactly one leader ran; everyone shares its artifact.
        assert len(exp.executions) == 3
        assert service.stats.coalesced == n - 1
        coalesced = [r for r in results if r.coalesced]
        assert len(coalesced) == n - 1
        assert all(r.executed == 0 and r.hits == r.planned
                   for r in coalesced)
        assert len({r.text for r in results}) == 1
        assert len({r.digest for r in results}) == 1

    def test_different_knobs_do_not_coalesce(self, tmp_path):
        service, exp = make_service(tmp_path, coalesce=True)
        with service:
            a = service.submit("grid", {"width": 2})
            b = service.submit("grid", {"width": 3})
        assert a.digest != b.digest
        assert service.stats.coalesced == 0

    def test_summary_line_shape(self, tmp_path):
        service, _ = make_service(tmp_path)
        with service:
            result = service.submit("grid", {"width": 2})
        assert result.summary() == ("planned=2 hits=0 executed=2 "
                                    "waited=0 coalesced=false")


class TestAdmission:
    def test_unknown_experiment_rejected(self, tmp_path):
        service, _ = make_service(tmp_path)
        with service:
            with pytest.raises(AdmissionError):
                service.submit("nonesuch")
        assert service.stats.rejected == 1
        assert service.stats.submissions == 0

    def test_oversized_plan_rejected(self, tmp_path):
        service, _ = make_service(tmp_path, admission_limit=4)
        with service:
            with pytest.raises(AdmissionError, match="admission limit"):
                service.submit("grid", {"width": 100})
            service.submit("grid", {"width": 4})  # at the limit: fine
        assert service.stats.rejected == 1

    def test_undeclared_knobs_are_ignored(self, tmp_path):
        """Same leniency as ``knob_mapping`` everywhere else."""
        service, _ = make_service(tmp_path)
        with service:
            result = service.submit("grid", {"width": 2, "bogus": 9})
        assert result.planned == 2
        assert result.knobs == {"width": 2}

    def test_closed_service_rejects(self, tmp_path):
        service, _ = make_service(tmp_path)
        service.close()
        with pytest.raises(AdmissionError, match="shut down"):
            service.submit("grid")


class TestByteIdentity:
    def test_served_equals_direct_run(self, tmp_path):
        """The absolute invariant: service-served == direct run."""
        exp = GridExperiment()
        direct_store_exp = GridExperiment()
        service, _ = make_service(tmp_path, experiment=exp, seed=3)
        with service:
            served_cold = service.submit("grid", {"width": 6})
            served_warm = service.submit("grid", {"width": 6})
        from repro.testbed import CampaignStore
        direct = direct_store_exp.run(Session(
            seed=3, store=CampaignStore(tmp_path / "direct"),
            knobs=knob_mapping(direct_store_exp, {"width": 6})))
        assert served_cold.text == direct.text
        assert served_warm.text == direct.text
        assert served_cold.data == direct.data

    def test_journal_lives_in_the_store(self, tmp_path):
        """Submissions get the same resilience bundle ``repro run``
        builds: per-experiment journal inside the store, seeded retry
        policy, implicit (no ``[faults]`` output)."""
        service, _ = make_service(tmp_path, retries=2, seed=7)
        resilience = service._resilience("grid")
        assert (resilience.journal.path
                == tmp_path / "cache" / ".journal" / "grid.log")
        assert resilience.policy.retries == 2
        assert not resilience.explicit
        resilience.close()
        service.close()

    def test_packed_layout_is_the_default(self, tmp_path):
        service, _ = make_service(tmp_path)
        with service:
            service.submit("grid", {"width": 2})
        assert list((tmp_path / "cache").glob("*.pack"))


class TestHTTP:
    def test_http_round_trip(self, tmp_path):
        service, exp = make_service(tmp_path)
        server = CampaignServiceServer(service, port=0)
        host, port = server.address
        server.serve_background()
        try:
            payload = submit_request("grid", {"width": 4},
                                     host=host, port=port, timeout=30)
            assert payload["ok"] is True
            assert payload["text"] == "grid: 0 1 4 9\n"
            assert payload["executed"] == 4
            assert payload["data"] == [0, 1, 4, 9]
            warm = submit_request("grid", {"width": 4},
                                  host=host, port=port, timeout=30)
            assert warm["text"] == payload["text"]
            assert warm["executed"] == 0 and warm["hits"] == 4
        finally:
            server.shutdown()
            service.close()

    def test_http_rejection_payload(self, tmp_path):
        service, _ = make_service(tmp_path)
        server = CampaignServiceServer(service, port=0)
        host, port = server.address
        server.serve_background()
        try:
            payload = submit_request("nonesuch", host=host, port=port,
                                     timeout=30)
            assert payload["ok"] is False
            assert "nonesuch" in payload["error"]
        finally:
            server.shutdown()
            service.close()

    def test_stats_counters_flow_through(self, tmp_path):
        from urllib.request import urlopen
        service, _ = make_service(tmp_path)
        server = CampaignServiceServer(service, port=0)
        host, port = server.address
        server.serve_background()
        try:
            submit_request("grid", {"width": 2}, host=host, port=port,
                           timeout=30)
            with urlopen(f"http://{host}:{port}/stats",
                         timeout=30) as response:
                stats = json.loads(response.read().decode("utf-8"))
            assert stats["service"]["completed"] == 1
            assert stats["service"]["keys_executed"] == 2
            assert stats["tier"]["stores"] == 2
        finally:
            server.shutdown()
            service.close()
