"""Population campaign throughput: the sampled-user headline.

The population subsystem's cost model is one number — how many sampled
users per second a cold ``population-latency`` campaign sustains
(sampling + simulation + store writes across the whole degradation
sweep) — plus the warm-replay figure that justifies the
content-addressed store at population scale:

* ``population_samples_per_second`` — the cold campaign over the
  default 250-user / 3-level grid (750 runs), stored;
* ``population_warm_replay``       — the same campaign re-rendered
  from the warm store (zero misses, byte-identical).

``check_perf_regression.py`` imports :func:`measure_population`, so
the CI gate and this bench can never measure different things.
"""

import pathlib
import time

from repro.experiments import Session, get_experiment, knob_mapping
from repro.testbed import CampaignStore

from _util import emit, record_timing

#: The default experiment grid: 250 users x 3 degradation levels.
POP_SAMPLES = 250
POP_LEVELS = 3


def measure_population(root: pathlib.Path, samples: int = POP_SAMPLES):
    """Cold then warm population-latency campaign against ``root``.

    Returns ``(cold_s, warm_s, cold_artifact, warm_artifact,
    warm_misses)`` — callers assert the identity invariants so a gate
    failure reads as a perf number, never a hidden correctness one.
    """
    experiment = get_experiment("population-latency")
    knobs = knob_mapping(experiment, {"samples": samples})

    t0 = time.perf_counter()
    cold = experiment.run(Session(seed=0, store=CampaignStore(root),
                                  knobs=knobs))
    cold_s = time.perf_counter() - t0

    warm_store = CampaignStore(root)
    t0 = time.perf_counter()
    warm = experiment.run(Session(seed=0, store=warm_store,
                                  knobs=knobs))
    warm_s = time.perf_counter() - t0
    return cold_s, warm_s, cold, warm, warm_store.stats.misses


def test_population_campaign_throughput(tmp_path):
    cold_s, warm_s, cold, warm, misses = measure_population(tmp_path)

    assert warm.text == cold.text
    assert misses == 0
    assert cold_s / warm_s >= 2.0, (
        f"warm replay should be >=2x the cold campaign: cold "
        f"{cold_s:.2f}s vs warm {warm_s:.2f}s")

    runs = POP_SAMPLES * POP_LEVELS
    record_timing("population_samples_per_second", cold_s, {
        "samples": POP_SAMPLES, "runs": runs,
        "samples_per_second": round(POP_SAMPLES / cold_s),
        "runs_per_second": round(runs / cold_s)})
    record_timing("population_warm_replay", warm_s, {
        "samples": POP_SAMPLES, "runs": runs,
        "speedup_vs_cold": round(cold_s / warm_s, 1)})
    emit("population_latency", cold.text)
