"""Simulator core throughput: the headline runs/second metric.

The simulator overhaul (timer-wheel scheduler, flyweight packet path,
wire-template DNS caches) is justified by one number: how many
simulated Happy Eyeballs runs per second a cold Figure 2 campaign
sustains.  This bench records that headline plus four micro-benchmarks
that isolate the layers it is built from:

* ``simnet_scheduler_ops``   — raw schedule+dispatch throughput;
* ``simnet_cancel_heavy``    — O(1) physical cancel under churn;
* ``simnet_packet_hops``     — two-host UDP ping-pong packet path;
* ``simnet_timeout_churn``   — process/timeout allocation pressure;
* ``figure2_runs_per_second``— the headline, measured on the same
  697-run step-10 grid as ``figure2_sweep_serial`` so the trajectory
  in ``bench_timings.json`` is directly comparable across PRs.
"""

import json
import statistics
import time

from repro.analysis import figure2_sweep
from repro.simnet import Network, Simulator
from repro.transport.udp import UDPStack

from _util import TIMINGS_PATH, record_timing

# Keep micro-bench event counts large enough that per-event cost
# dominates interpreter start-up noise, small enough for CI.
SCHEDULER_EVENTS = 200_000
CANCEL_EVENTS = 100_000
PACKET_HOPS = 20_000
TIMEOUT_PROCS = 20_000


def test_scheduler_ops():
    """Pure scheduler throughput: N schedules, N dispatches."""
    sim = Simulator(seed=1)
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    t0 = time.perf_counter()
    for i in range(SCHEDULER_EVENTS):
        # 97 distinct delays spread events across wheel ticks the way a
        # real campaign does, instead of hammering a single bucket.
        sim.schedule((i % 97) * 1e-4, tick)
    sim.run()
    elapsed = time.perf_counter() - t0

    assert fired[0] == SCHEDULER_EVENTS
    record_timing("simnet_scheduler_ops", elapsed, {
        "events": SCHEDULER_EVENTS,
        "ops_per_second": round(SCHEDULER_EVENTS / elapsed)})


def test_cancel_heavy():
    """Cancel 90% of pending work; only survivors may fire.

    The old heapq scheduler marked cancelled entries and paid for them
    again at pop time; the wheel unlinks them physically, so a
    cancel-heavy workload (every DNS deadline that loses its race is
    one) stays proportional to the events that actually run.
    """
    sim = Simulator(seed=2)
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    t0 = time.perf_counter()
    handles = [sim.schedule((i % 89) * 1e-4 + 1e-6, tick)
               for i in range(CANCEL_EVENTS)]
    for i, handle in enumerate(handles):
        if i % 10 != 0:
            handle.cancel()
    sim.run()
    elapsed = time.perf_counter() - t0

    assert fired[0] == CANCEL_EVENTS // 10
    assert sim.pending_count == 0
    record_timing("simnet_cancel_heavy", elapsed, {
        "events": CANCEL_EVENTS, "cancelled": CANCEL_EVENTS * 9 // 10,
        "ops_per_second": round(CANCEL_EVENTS / elapsed)})


def test_packet_hops():
    """UDP ping-pong across one segment: the per-packet path cost."""
    net = Network(seed=3)
    segment = net.add_segment("lan")
    left = net.add_host("left")
    right = net.add_host("right")
    net.connect(left, segment, ["10.0.0.1"])
    net.connect(right, segment, ["10.0.0.2"])
    sim = net.sim
    lsock = UDPStack(left).socket("10.0.0.1", 1111)
    rsock = UDPStack(right).socket("10.0.0.2", 2222)
    hops = [0]

    def ponger():
        while True:
            datagram = yield rsock.recv()
            hops[0] += 1
            if hops[0] >= PACKET_HOPS:
                return
            rsock.sendto(datagram.payload, datagram.src, datagram.sport)

    def pinger():
        lsock.sendto(b"x" * 64, "10.0.0.2", 2222)
        while hops[0] < PACKET_HOPS:
            yield lsock.recv()
            lsock.sendto(b"x" * 64, "10.0.0.2", 2222)

    sim.process(ponger())
    sim.process(pinger())
    t0 = time.perf_counter()
    sim.run(until=1000.0)
    elapsed = time.perf_counter() - t0

    assert hops[0] >= PACKET_HOPS
    record_timing("simnet_packet_hops", elapsed, {
        "hops": hops[0], "hops_per_second": round(hops[0] / elapsed)})


def test_timeout_churn():
    """Allocation pressure: many short-lived processes and timeouts."""
    sim = Simulator(seed=4)
    done = [0]

    def waiter(delay: float):
        yield sim.timeout(delay)
        done[0] += 1

    t0 = time.perf_counter()
    for i in range(TIMEOUT_PROCS):
        sim.process(waiter((i % 53) * 1e-4))
    sim.run()
    elapsed = time.perf_counter() - t0

    assert done[0] == TIMEOUT_PROCS
    record_timing("simnet_timeout_churn", elapsed, {
        "processes": TIMEOUT_PROCS,
        "ops_per_second": round(TIMEOUT_PROCS / elapsed)})


def _recorded_baseline_seconds() -> float:
    """Median of the recorded figure2_sweep_serial samples (pre-overhaul)."""
    try:
        timings = json.loads(TIMINGS_PATH.read_text(encoding="utf-8"))
    except (FileNotFoundError, ValueError):
        return float("nan")
    samples = [s["seconds"] for s in timings.get("figure2_sweep_serial", [])]
    return statistics.median(samples) if samples else float("nan")


def test_figure2_runs_per_second():
    """Headline: cold Figure 2 grid throughput in simulated runs/second.

    Same 697-run step-10 CAD grid as ``figure2_sweep_serial``; best of
    three cold campaigns (each run rebuilds its testbed — only
    process-wide wire caches persist, exactly as in a real campaign).
    The floor assertion is deliberately modest: the recorded baseline
    samples come from earlier PRs on the *same* machine class, but
    shared-runner speed drifts by tens of percent between sessions, so
    the trajectory in ``bench_timings.json`` is the real scoreboard and
    the assertion only catches wholesale regressions.
    """
    figure2_sweep(step_ms=25)  # warm import/caches off the clock
    best = float("inf")
    runs = 0
    for _ in range(3):
        t0 = time.perf_counter()
        series = figure2_sweep(step_ms=10)
        best = min(best, time.perf_counter() - t0)
        runs = sum(len(s.outcomes) for s in series)
    runs_per_second = runs / best

    baseline_s = _recorded_baseline_seconds()
    speedup = (baseline_s / best) if baseline_s == baseline_s else None
    record_timing("figure2_runs_per_second", best, {
        "runs": runs,
        "runs_per_second": round(runs_per_second, 1),
        "baseline_median_seconds": (round(baseline_s, 3)
                                    if speedup is not None else None),
        "speedup_vs_recorded": (round(speedup, 2)
                                if speedup is not None else None)})
    assert runs == 697
    if speedup is not None:
        assert speedup >= 1.05, (
            f"figure2 grid regressed: {best:.3f}s vs recorded median "
            f"{baseline_s:.3f}s ({speedup:.2f}x)")
