"""Ablation — fixed vs dynamic Connection Attempt Delay.

HEv2 permits deriving the CAD from RTT history (min 10 ms / rec 100 ms
/ max 2 s) instead of the fixed 250 ms.  The trade-off the bounds
encode, measured over a destination population:

* an aggressive fixed CAD (100 ms) falls back fast when IPv6 is broken
  but kicks slow-yet-healthy IPv6 destinations over to IPv4;
* the recommended 250 ms keeps moderately slow IPv6 alive;
* a conservative CAD (2 s — Safari's no-history fallback) never leaves
  IPv6 but stalls the full 2 s when IPv6 is actually dead;
* a history-informed dynamic CAD (2×SRTT, clamped) falls back almost
  immediately on dead IPv6 *and* retains every healthy destination.
"""

import pytest

from repro.core import HistoryStore, rfc8305_params
from repro.core.engine import HappyEyeballsEngine
from repro.dns.stub import StubResolver
from repro.simnet import Family, parse_address
from repro.testbed.topology import LocalTestbed, SERVER_V4, SERVER_V6

from _util import emit

DEAD_V6 = "2001:db8:dead::99"

#: Destinations: (label, ipv6 delay in ms; None = blackholed IPv6).
POPULATION = [("fast", 10), ("ok", 40), ("slowish", 120),
              ("broken", None)]


def run_destination(policy: str, label: str, delay_ms, seed: int):
    testbed = LocalTestbed(seed=seed)
    if delay_ms is None:
        hostname = testbed.add_domain(f"dyn-{label}",
                                      [DEAD_V6, SERVER_V4])
        effective_rtt = 0.010  # the host knows its v4 RTT history
    else:
        testbed.delay_ipv6_tcp(delay_ms / 1000.0)
        hostname = f"dyn-{label}.{testbed.test_domain}"
        effective_rtt = max(0.002, delay_ms / 1000.0)

    history = HistoryStore()
    if policy == "dynamic":
        params = rfc8305_params().with_overrides(dynamic_cad=True)
        for address in (SERVER_V6, DEAD_V6, SERVER_V4):
            history.record_success(parse_address(address),
                                   rtt=effective_rtt, now=0.0)
    else:
        params = rfc8305_params().with_overrides(
            connection_attempt_delay=float(policy) / 1000.0)
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    engine = HappyEyeballsEngine(testbed.client, stub, params,
                                 history=history)
    result = testbed.sim.run_until(engine.connect(hostname))
    return result.time_to_connect, result.winning_family


def build_ablation():
    policies = ["100", "250", "2000", "dynamic"]
    stats = {}
    for policy in policies:
        rows = {}
        for label, delay_ms in POPULATION:
            seed = hash((policy, label)) & 0xFFFF
            rows[label] = run_destination(policy, label, delay_ms, seed)
        healthy = [name for name, delay in POPULATION if delay is not None]
        stats[policy] = {
            "rows": rows,
            "v6_retention": sum(
                1 for name in healthy
                if rows[name][1] is Family.V6) / len(healthy),
            "broken_ttc": rows["broken"][0],
        }
    return stats


def test_ablation_dynamic_cad(benchmark):
    stats = benchmark.pedantic(build_ablation, rounds=1, iterations=1)

    # Aggressive CAD loses the slow-but-healthy IPv6 destination.
    assert stats["100"]["v6_retention"] < 1.0
    # Recommended and conservative CADs retain all healthy IPv6.
    assert stats["250"]["v6_retention"] == 1.0
    assert stats["2000"]["v6_retention"] == 1.0
    # But the conservative CAD stalls 2 s on actually-broken IPv6.
    assert stats["2000"]["broken_ttc"] == pytest.approx(2.0, abs=0.05)
    assert stats["250"]["broken_ttc"] == pytest.approx(0.25, abs=0.05)
    # Dynamic with history: full retention AND the fastest fallback.
    assert stats["dynamic"]["v6_retention"] == 1.0
    assert stats["dynamic"]["broken_ttc"] < stats["100"]["broken_ttc"]

    lines = ["Ablation: fixed vs dynamic CAD",
             f"{'policy':>10}  {'healthy-IPv6 retention':>23}  "
             f"{'TTC, broken IPv6':>17}"]
    for policy, values in stats.items():
        label = f"{policy} ms" if policy != "dynamic" else "dynamic"
        lines.append(
            f"{label:>10}  {values['v6_retention'] * 100:>21.0f} %"
            f"  {values['broken_ttc'] * 1000:>14.1f} ms")
    lines.append("dynamic CAD = 2 x SRTT clamped to [10 ms, 2 s] "
                 "(RFC 8305 §5)")
    emit("ablation_dynamic_cad", "\n".join(lines))
