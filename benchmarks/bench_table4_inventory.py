"""Table 4 — tested recursive resolvers and the IPv6-only probe.

Lists the 17 open resolver services with their address inventory and
runs the capability probe (resolving a zone whose name servers only
have AAAA records) that excluded four services from the evaluation.
"""

from repro.analysis import render_table4, table4_inventory
from repro.resolvers import evaluated_services, excluded_services

from _util import emit


def build_table4():
    return table4_inventory(seed=5, probe=True)


def test_table4_inventory(benchmark):
    rows = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    by_service = {row.service: row for row in rows}

    assert len(rows) == 17
    # The paper's four excluded services fail the IPv6-only probe.
    for name in ("Hurricane Electric", "Lumen (Level3)", "DYN", "G-Core"):
        assert not by_service[name].ipv6_only_capable, name
    # All thirteen evaluated services pass it.
    for service in evaluated_services():
        assert by_service[service.service].ipv6_only_capable

    # Inventory spot checks against the paper's address counts.
    assert (by_service["OpenDNS"].v4_addresses,
            by_service["OpenDNS"].v6_addresses) == (6, 6)
    assert (by_service["Quad9 DNS"].v4_addresses,
            by_service["Quad9 DNS"].v6_addresses) == (6, 6)
    assert by_service["114DNS"].v6_addresses == 0
    assert by_service["Lumen (Level3)"].v6_addresses == 0

    assert len(excluded_services()) == 4
    emit("table4_inventory", render_table4(rows))
