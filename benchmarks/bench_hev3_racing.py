"""Extension — HEv3 protocol racing (SVCB/HTTPS + QUIC).

The paper motivates HEv3: SVCB/HTTPS records enable protocol discovery,
and "the HEv3 address selection should favor IP addresses with
available TLS Encrypted ClientHello (ECH) over QUIC over TCP" (§2).
This bench exercises the full HEv3 pipeline on the engine:

* with an HTTPS record advertising h3, the first attempt is QUIC/IPv6;
* with QUIC blackholed (UDP dropped), the race falls back to TCP within
  one CAD — connectivity is preserved;
* without SVCB records, HEv3 behaves exactly like HEv2.
"""

import pytest

from repro.core import hev3_draft_params
from repro.core.engine import HappyEyeballsEngine
from repro.dns import DNSName, HTTPS
from repro.dns.stub import StubResolver
from repro.simnet import Family, NetemFilter, NetemRule, NetemSpec, Protocol
from repro.testbed.topology import LocalTestbed, SERVER_V4, SERVER_V6

from _util import emit


def build_testbed(seed: int, quic_enabled: bool, advertise: bool):
    testbed = LocalTestbed(seed=seed)
    if advertise:
        testbed.zone.add("www", HTTPS.service(
            1, DNSName.from_text(f"www.{testbed.test_domain}"),
            alpn=("h3", "h2"), ech=True))
    if quic_enabled:
        testbed.server.quic.listen(80)
    else:
        # Blackhole QUIC: drop all QUIC packets toward the server.
        testbed.server_iface.ingress.add_rule(NetemRule(
            spec=NetemSpec(loss=1.0),
            filter=NetemFilter(protocol=Protocol.QUIC),
            name="drop-quic"))
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    engine = HappyEyeballsEngine(testbed.client, stub,
                                 hev3_draft_params())
    return testbed, engine


def run_case(seed: int, quic_enabled: bool, advertise: bool = True):
    testbed, engine = build_testbed(seed, quic_enabled, advertise)
    capture = testbed.start_client_capture()
    result = testbed.sim.run_until(
        engine.connect(f"www.{testbed.test_domain}"))
    return result, capture


def build_results():
    quic_ok, quic_ok_capture = run_case(seed=95, quic_enabled=True)
    quic_dead, quic_dead_capture = run_case(seed=96, quic_enabled=False)
    no_svcb, _ = run_case(seed=97, quic_enabled=True, advertise=False)
    return (quic_ok, quic_ok_capture, quic_dead, quic_dead_capture,
            no_svcb)


def test_hev3_protocol_racing(benchmark):
    (quic_ok, quic_ok_capture, quic_dead, quic_dead_capture,
     no_svcb) = benchmark.pedantic(build_results, rounds=1, iterations=1)

    # Healthy QUIC: the winner is a QUIC connection over IPv6.
    assert quic_ok.race.winning_attempt.protocol is Protocol.QUIC
    assert quic_ok.winning_family is Family.V6
    first = quic_ok_capture.connection_attempts()[0]
    assert first.packet.protocol is Protocol.QUIC

    # Dead QUIC: TCP fallback wins within ~one CAD.
    assert quic_dead.race.winning_attempt.protocol is Protocol.TCP
    assert quic_dead.time_to_connect <= 0.600
    protocols = [f.packet.protocol for f
                 in quic_dead_capture.connection_attempts()]
    assert Protocol.QUIC in protocols and Protocol.TCP in protocols

    # No SVCB record: plain HEv2 behaviour (TCP, IPv6).
    assert no_svcb.race.winning_attempt.protocol is Protocol.TCP
    assert no_svcb.winning_family is Family.V6

    lines = ["HEv3 protocol racing (SVCB advertising h3 + ECH)",
             f"{'scenario':<22} {'winner':>12}  {'TTC':>9}",
             f"{'QUIC healthy':<22} "
             f"{quic_ok.race.winning_attempt.protocol.value + '/v6':>12}  "
             f"{quic_ok.time_to_connect * 1000:>6.1f} ms",
             f"{'QUIC blackholed':<22} "
             f"{quic_dead.race.winning_attempt.protocol.value + '/v6':>12}  "
             f"{quic_dead.time_to_connect * 1000:>6.1f} ms",
             f"{'no SVCB published':<22} "
             f"{no_svcb.race.winning_attempt.protocol.value + '/v6':>12}  "
             f"{no_svcb.time_to_connect * 1000:>6.1f} ms"]
    emit("hev3_protocol_racing", "\n".join(lines))
