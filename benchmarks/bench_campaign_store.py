"""The incremental campaign store: near-zero warm re-render cost.

Runs a Figure 2 CAD sweep twice against one content-addressed cache
directory and checks the store's two contracts:

* the warm re-render is **byte-identical** to the cold run (the
  rendered figure text matches character for character, and matches a
  store-less run);
* the warm re-render skips every simulation — all lookups hit — and is
  at least 5x faster than the cold run (in practice it is orders of
  magnitude: file reads versus thousands of simulated connections).

Cold and warm wall-clock go into ``results/bench_timings.json`` as
``figure2_store_cold`` / ``figure2_store_warm`` so the perf trajectory
records the re-render win alongside the serial/parallel timings.

A second phase runs the paper's *dense* Figure 2 grid (5 ms steps,
1377 runs) and times warm hit resolution both ways — the batch
``get_many`` path through the per-shard sidecar index versus plain
per-key JSON reads — recording ``figure2_store_warm_indexed`` /
``figure2_store_warm_perkey`` and asserting the index wins.

A third phase measures the sidecar *generation counter* on a dense
synthetic campaign (16 shards x 125 entries): batch lookups with
entry writes interleaved between batches.  Before the counter, each
write invalidated its shard's index (the old dir-mtime freshness
rule) and the next batch re-read every entry of the shard; with
generations the writing handle extends its in-memory index and never
rebuilds.  Recorded as ``figure2_store_mixed_rw_generation`` /
``figure2_store_mixed_rw_rebuild`` (the baseline simulates the old
behaviour by dropping the written shards' sidecars before every
batch).
"""

import json
import time

from repro.analysis import figure2_sweep, render_figure2
from repro.testbed import CampaignStore
from repro.testbed.store import decode_record

from _util import emit, record_timing

STEP_MS = 25
SEED = 2
RUNS = 17 * len(range(0, 401, STEP_MS))

#: The dense (paper-grid) sweep used for the index comparison.
DENSE_STEP_MS = 5
DENSE_RUNS = 17 * len(range(0, 401, DENSE_STEP_MS))
#: Timing repetitions per lookup path (best-of, to shed IO noise).
TIMING_ROUNDS = 3


def sweep(store):
    start = time.perf_counter()
    series = figure2_sweep(step_ms=STEP_MS, stop_ms=400, seed=SEED,
                           store=store)
    return series, time.perf_counter() - start


def test_warm_cache_rerender(benchmark, tmp_path):
    def run_cold_and_warm():
        cold_store = CampaignStore(tmp_path / "cache")
        cold, cold_s = sweep(cold_store)
        warm_store = CampaignStore(tmp_path / "cache")
        warm, warm_s = sweep(warm_store)
        return cold_store, cold, cold_s, warm_store, warm, warm_s

    cold_store, cold, cold_s, warm_store, warm, warm_s = \
        benchmark.pedantic(run_cold_and_warm, rounds=1, iterations=1)

    # Cold run: every lookup missed, every record was stored.
    assert cold_store.stats.misses == RUNS
    assert cold_store.stats.stores == RUNS
    # Warm run: every lookup hit, nothing executed or written.
    assert warm_store.stats.hits == RUNS
    assert warm_store.stats.misses == 0
    assert warm_store.stats.stores == 0

    # Byte-identical re-render, and identical to a store-less run.
    cold_text = render_figure2(cold)
    assert render_figure2(warm) == cold_text
    assert render_figure2(
        figure2_sweep(step_ms=STEP_MS, stop_ms=400, seed=SEED)) == cold_text

    record_timing("figure2_store_cold", cold_s,
                  {"runs": RUNS, "step_ms": STEP_MS})
    record_timing("figure2_store_warm", warm_s,
                  {"runs": RUNS, "step_ms": STEP_MS})
    emit("campaign_store_rerender",
         cold_text + f"\n\ncold {cold_s:.3f}s -> warm {warm_s:.3f}s "
         f"({cold_s / warm_s:.0f}x) over {RUNS} cached runs")
    assert cold_s / warm_s >= 5.0, (
        f"warm re-render should be >=5x faster: cold {cold_s:.3f}s "
        f"vs warm {warm_s:.3f}s")


def test_indexed_warm_lookup_beats_per_key(benchmark, tmp_path):
    """Warm hit resolution through get_many + the per-shard sidecar
    index must beat plain per-key JSON reads on the dense Figure 2
    campaign — the ROADMAP "parallel parent-side cache lookup" win."""
    root = tmp_path / "cache"

    def dense_sweep(store):
        start = time.perf_counter()
        series = figure2_sweep(step_ms=DENSE_STEP_MS, stop_ms=400,
                               seed=SEED, store=store)
        return series, time.perf_counter() - start

    def best_warm(use_index):
        elapsed = []
        series = None
        for _ in range(TIMING_ROUNDS):
            store = CampaignStore(root, use_index=use_index)
            series, seconds = dense_sweep(store)
            assert store.stats.misses == 0
            assert store.stats.hits == DENSE_RUNS
            elapsed.append(seconds)
        return series, min(elapsed)

    def run_comparison():
        cold, _ = dense_sweep(CampaignStore(root))
        # One priming pass builds the sidecar indexes, so both timed
        # paths then resolve against identical on-disk state.
        dense_sweep(CampaignStore(root))
        indexed, indexed_s = best_warm(use_index=True)
        perkey, perkey_s = best_warm(use_index=False)
        return cold, indexed, indexed_s, perkey, perkey_s

    cold, indexed, indexed_s, perkey, perkey_s = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1)

    # Both lookup paths are byte-identical to the cold execution.
    cold_text = render_figure2(cold)
    assert render_figure2(indexed) == cold_text
    assert render_figure2(perkey) == cold_text

    record_timing("figure2_store_warm_indexed", indexed_s,
                  {"runs": DENSE_RUNS, "step_ms": DENSE_STEP_MS})
    record_timing("figure2_store_warm_perkey", perkey_s,
                  {"runs": DENSE_RUNS, "step_ms": DENSE_STEP_MS})
    emit("campaign_store_indexed_lookup",
         f"dense figure2 warm lookup over {DENSE_RUNS} cached runs:\n"
         f"per-key reads {perkey_s * 1000:.1f} ms -> sidecar index "
         f"{indexed_s * 1000:.1f} ms "
         f"({perkey_s / indexed_s:.2f}x)")
    assert indexed_s < perkey_s, (
        f"indexed warm lookup should beat per-key reads: "
        f"indexed {indexed_s * 1000:.1f} ms vs per-key "
        f"{perkey_s * 1000:.1f} ms")


#: Interleaved write/lookup rounds of the mixed read/write phase.
MIXED_ROUNDS = 4
#: Shape of the synthetic hot campaign: dense shards are exactly the
#: case where a per-write index invalidation hurts (a rebuild re-reads
#: every entry of the shard; the counter path re-reads none).
MIXED_SHARDS = 16
MIXED_ENTRIES_PER_SHARD = 125


def test_generation_keeps_mixed_read_write_warm(benchmark, tmp_path):
    """Hot mixed read/write campaigns keep batch-lookup speed: with
    the generation counter, interleaved writes extend the in-memory
    index instead of invalidating it, so batches never pay a rebuild
    (the ROADMAP "generation counter" perf item)."""
    root = tmp_path / "cache"
    payload = {"case": "mixed-rw", "value_ms": 0}

    def synthetic_key(shard, tag):
        return (shard + tag + "0" * 62)[:64]

    def seed_store():
        store = CampaignStore(root)
        keys = []
        for shard_index in range(MIXED_SHARDS):
            shard = format(shard_index, "02x")
            for entry in range(MIXED_ENTRIES_PER_SHARD):
                key = synthetic_key(shard, format(entry, "04x"))
                store.put(key, payload)
                keys.append(key)
        return sorted(keys)

    def mixed_rounds(store, keys, drop_index_per_round):
        """Batch-lookup seconds across rounds of interleaved writes.

        Each round writes one new entry into *every* shard and then
        resolves the whole key universe in one batch.  Only the batch
        lookups are timed — the entry writes cost the same either
        way; the ROADMAP item is about keeping *batch-lookup* speed.
        The baseline drops exactly the written shards' sidecars (and
        in-memory mirrors) per round — precisely what the
        pre-generation dir-mtime rule invalidated — so the comparison
        isolates the rebuild churn the counter avoids, nothing more.
        """
        shards = sorted({key[:2] for key in keys})
        extra = []
        lookup_seconds = 0.0
        for round_index in range(MIXED_ROUNDS):
            for shard in shards:
                if drop_index_per_round:
                    sidecar = root / ".index" / f"{shard}.json"
                    if sidecar.exists():
                        sidecar.unlink()
                    store._mem_index.pop(shard, None)
                newcomer = synthetic_key(shard, f"f{round_index:x}")
                store.put(newcomer, payload)
                extra.append(newcomer)
            start = time.perf_counter()
            got = store.get_many(keys + extra, lambda data: data)
            lookup_seconds += time.perf_counter() - start
            assert set(got) == set(keys) | set(extra)
        return lookup_seconds

    def run_comparison():
        runner_keys = seed_store()

        generation_store = CampaignStore(root)
        generation_store.get_many(runner_keys, lambda d: d)  # prime
        prime_rebuilds = generation_store.index_rebuilds
        generation_s = mixed_rounds(generation_store, runner_keys,
                                    drop_index_per_round=False)
        rebuilds_during_mix = (generation_store.index_rebuilds
                               - prime_rebuilds)

        rebuild_store = CampaignStore(root)
        rebuild_store.get_many(runner_keys, lambda d: d)
        baseline_rebuilds = rebuild_store.index_rebuilds
        rebuild_s = mixed_rounds(rebuild_store, runner_keys,
                                 drop_index_per_round=True)
        return (generation_s, rebuilds_during_mix, rebuild_s,
                rebuild_store.index_rebuilds - baseline_rebuilds,
                len(runner_keys))

    (generation_s, generation_rebuilds, rebuild_s, forced_rebuilds,
     key_count) = benchmark.pedantic(run_comparison, rounds=1,
                                     iterations=1)

    record_timing("figure2_store_mixed_rw_generation", generation_s,
                  {"rounds": MIXED_ROUNDS, "keys": key_count})
    record_timing("figure2_store_mixed_rw_rebuild", rebuild_s,
                  {"rounds": MIXED_ROUNDS, "keys": key_count})
    emit("campaign_store_generation_counter",
         f"{MIXED_ROUNDS} interleaved write+batch rounds over "
         f"{key_count} cached runs:\n"
         f"forced rebuilds {rebuild_s * 1000:.1f} ms "
         f"({forced_rebuilds} rebuild passes) -> generation counter "
         f"{generation_s * 1000:.1f} ms ({generation_rebuilds} rebuild "
         f"passes, {rebuild_s / generation_s:.2f}x)")
    # The prime pass paid for every build; the mixed rounds paid none.
    assert generation_rebuilds == 0 or generation_s < rebuild_s, (
        f"generation-counter path should avoid rebuild churn: "
        f"{generation_s * 1000:.1f} ms vs {rebuild_s * 1000:.1f} ms")
    assert forced_rebuilds >= MIXED_ROUNDS  # the baseline really churned
