"""Ablation — the Resolution Delay (the paper's central recommendation).

§6: "We suggest implementing a timeout for DNS queries for all clients,
even when HE is not implemented.  The current situation is even worse
from an IPv6 deployment perspective, as slow A queries also slow down
IPv6, even if it is not at fault."

This ablation quantifies that: time-to-connect with one record type
delayed, for the RFC 8305 resolution-delay policy vs. the wait-for-both
policy every measured browser actually uses.
"""

import pytest

from repro.core import (HappyEyeballsEngine, ResolutionPolicy,
                        rfc8305_params)
from repro.dns import RdataType
from repro.dns.stub import StubResolver
from repro.testbed.topology import LocalTestbed

from _util import emit

DNS_DELAYS_MS = (100, 500, 1000, 2000)


def time_to_connect(policy: ResolutionPolicy, delayed: RdataType,
                    delay_ms: int, seed: int) -> float:
    testbed = LocalTestbed(seed=seed)
    testbed.set_dns_delay(delayed, delay_ms / 1000.0)
    params = rfc8305_params().with_overrides(resolution_policy=policy)
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    engine = HappyEyeballsEngine(testbed.client, stub, params)
    result = testbed.sim.run_until(
        engine.connect(f"rd-ablation-{delay_ms}.{testbed.test_domain}"))
    return result.time_to_connect


def build_ablation():
    rows = []
    for delayed in (RdataType.AAAA, RdataType.A):
        for delay_ms in DNS_DELAYS_MS:
            with_rd = time_to_connect(ResolutionPolicy.HE_V2, delayed,
                                      delay_ms, seed=81)
            without = time_to_connect(ResolutionPolicy.WAIT_BOTH, delayed,
                                      delay_ms, seed=81)
            rows.append((delayed.name, delay_ms, with_rd, without))
    return rows


def test_ablation_resolution_delay(benchmark):
    rows = benchmark.pedantic(build_ablation, rounds=1, iterations=1)

    for rtype, delay_ms, with_rd, without in rows:
        # Without RD the stall tracks the DNS delay 1:1.
        assert without >= delay_ms / 1000.0
        if rtype == "AAAA":
            # RD caps the damage at ~50 ms + handshake.
            assert with_rd <= 0.100
        else:
            # Delayed A never hurts an RD client (AAAA arrives first).
            assert with_rd <= 0.050
        assert with_rd < without

    lines = ["Ablation: resolution delay vs wait-for-both (time to "
             "connect)",
             f"{'delayed':>8} {'DNS delay':>10}  {'with RD':>10}  "
             f"{'wait-both':>10}  speedup"]
    for rtype, delay_ms, with_rd, without in rows:
        lines.append(
            f"{rtype:>8} {delay_ms:>7} ms  {with_rd * 1000:>7.1f} ms  "
            f"{without * 1000:>7.1f} ms  {without / with_rd:>6.1f}x")
    emit("ablation_resolution_delay", "\n".join(lines))
