"""Table 3 — resolver IPv6 usage as observed at the authoritative NS.

Runs share + shaped-delay campaigns for BIND/Unbound/Knot and the 13
evaluated open resolver services, then checks the paper's findings:

* BIND performs classic HE preference: always IPv6, 800 ms fallback;
* Unbound uses IPv6 for ~44 % with a 376 ms timeout and exponential
  backoff retries (two packets to the IPv6 address);
* only OpenDNS behaves HE-style among open services (always IPv6,
  50 ms fallback); Google Public DNS and DNS.sb never use IPv6.
"""

import pytest

from repro.analysis import render_table3, table3_resolvers

from _util import emit, timed


def build_table3():
    # Eight repetitions per shaped delay: enough that Unbound's 44 %
    # probabilistic retry cannot masquerade as reliable IPv6 usage.
    with timed("table3_resolvers", {"share_repetitions": 160,
                                    "delay_repetitions": 8}):
        return table3_resolvers(seed=3, share_repetitions=160,
                                delay_repetitions=8)


def test_table3_resolvers(benchmark):
    rows = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    by_service = {row.service: row for row in rows}

    bind = by_service["BIND"]
    assert bind.ipv6_share == pytest.approx(100.0)
    assert bind.max_ipv6_delay_ms == 800
    assert bind.ipv6_packets == 1
    assert bind.aaaa_query == "AAAA after A"

    unbound = by_service["Unbound"]
    assert unbound.ipv6_share == pytest.approx(43.8, abs=10.0)
    assert unbound.max_ipv6_delay_ms == 376
    assert unbound.ipv6_packets == 2
    assert unbound.aaaa_query == "AAAA before A"

    knot = by_service["Knot Resolver"]
    assert knot.ipv6_share == pytest.approx(27.9, abs=10.0)
    assert knot.max_ipv6_delay_ms == 400
    assert knot.aaaa_query == "either A or AAAA, never both"

    # Services that never use the IPv6 name-server address.
    for name in ("DNS.sb", "Google P. DNS"):
        assert by_service[name].ipv6_share == pytest.approx(0.0)
        assert by_service[name].max_ipv6_delay_ms is None

    # OpenDNS: the only HE-style open service.
    opendns = by_service["OpenDNS"]
    assert opendns.ipv6_share == pytest.approx(100.0)
    assert opendns.max_ipv6_delay_ms == 50

    # Fallback timeouts match the paper column per service.
    expected_delays = {
        "NextDNS": 200, "Quad 101": 400, "114DNS": 600,
        "Cloudflare": 500, "Verisign P. DNS": 250, "Yandex": 300,
        "H-MSK-IX": 600, "MSK-IX": 600, "Quad9 DNS": 1250,
    }
    for service, delay in expected_delays.items():
        assert by_service[service].max_ipv6_delay_ms == delay, service

    # Yandex fires up to six packets at the IPv6 address; DNS0.EU's
    # parallel queries make its fallback delay unmeasurable.
    assert by_service["Yandex"].ipv6_packets == 6
    assert by_service["DNS0.EU"].max_ipv6_delay_ms is None

    emit("table3_resolvers", render_table3(rows))
