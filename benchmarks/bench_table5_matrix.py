"""Table 5 — browsers and OSes covered by the web campaign.

Replays the paper's campaign structure: 33 OS/browser combinations
(nine browsers, seven operating systems) with repetitions, yielding at
least the paper's 161 collected results.
"""

from repro.analysis import render_table, table5_matrix
from repro.webtool import TABLE5_MATRIX, WebCampaign

from _util import emit


def build_campaign():
    campaign = WebCampaign(seed=55, repetitions=5)
    return campaign.run(entries=TABLE5_MATRIX)


def test_table5_matrix(benchmark):
    result = benchmark.pedantic(build_campaign, rounds=1, iterations=1)

    assert len(result) == 33 * 5  # half of the ladder of 10; ≥161 runs
    assert len(result) >= 161
    assert result.combinations() == 33
    browsers = {session.browser.rsplit(" ", 1)[0]
                for session in result.sessions}
    assert len(browsers) == 9
    os_families = {session.os_name.split(" ")[0]
                   for session in result.sessions}
    assert len(os_families) == 7

    headers, rows = table5_matrix(result)
    emit("table5_matrix",
         render_table(headers, rows,
                      title="Table 5: web-measured OS/browser matrix"))
