"""Adversarial synthesis throughput: candidates scored per second.

The synthesis subsystem's cost model is candidate evaluation — each
candidate is one campaign case run against every registered client
plus the ablation variants — so the headline is how many candidates a
cold ``synthesize-scenarios`` search scores per second, plus the warm
figure that justifies running denser budgets against the same store:

* ``synthesis_candidates_per_second`` — a cold search over a 12-seed /
  1-round budget against five clients, stored;
* ``synthesis_warm_replay``          — the same search re-rendered
  from the warm store (zero misses, byte-identical).

``check_perf_regression.py`` imports :func:`measure_synthesis`, so the
CI gate and this bench can never measure different things.
"""

import pathlib
import time

from repro.experiments import Session, get_experiment, knob_mapping
from repro.testbed import CampaignStore

from _util import emit, record_timing

#: A budget dense enough to exercise refinement but cheap enough for
#: a CI gate: 12 grid seeds + one neighbourhood round, five clients.
BENCH_KNOBS = {
    "synthesis_seeds": 12, "synthesis_rounds": 1,
    "synthesis_top": 3, "synthesis_neighbors": 3, "promote": 6,
    "clients": "curl,wget,Chrome 130.0,Firefox 132.0,hev3-reference",
}


def measure_synthesis(root: pathlib.Path):
    """Cold then warm synthesize-scenarios search against ``root``.

    Returns ``(cold_s, warm_s, cold_artifact, warm_artifact,
    warm_misses, evaluated)`` — callers assert the identity invariants
    so a gate failure reads as a perf number, never a hidden
    correctness one.
    """
    experiment = get_experiment("synthesize-scenarios")
    knobs = knob_mapping(experiment, BENCH_KNOBS)

    t0 = time.perf_counter()
    cold = experiment.run(Session(seed=0, store=CampaignStore(root),
                                  knobs=knobs))
    cold_s = time.perf_counter() - t0

    warm_store = CampaignStore(root)
    t0 = time.perf_counter()
    warm = experiment.run(Session(seed=0, store=warm_store,
                                  knobs=knobs))
    warm_s = time.perf_counter() - t0
    evaluated = cold.data["evaluated"]
    return cold_s, warm_s, cold, warm, warm_store.stats.misses, evaluated


def test_synthesis_throughput(tmp_path):
    cold_s, warm_s, cold, warm, misses, evaluated = measure_synthesis(
        tmp_path)

    assert warm.text == cold.text
    assert misses == 0
    assert evaluated >= BENCH_KNOBS["synthesis_seeds"]
    assert cold_s / warm_s >= 2.0, (
        f"warm replay should be >=2x the cold search: cold "
        f"{cold_s:.2f}s vs warm {warm_s:.2f}s")

    record_timing("synthesis_candidates_per_second", cold_s, {
        "evaluated": evaluated,
        "candidates_per_second": round(evaluated / cold_s, 1)})
    record_timing("synthesis_warm_replay", warm_s, {
        "evaluated": evaluated,
        "speedup_vs_cold": round(cold_s / warm_s, 1)})
    emit("synthesis_scenarios", cold.text)
