"""The parallel campaign engine: speedup and byte-identical results.

Times a Figure 2-style CAD sweep serially and with a process-pool fan
out.  Two properties are checked:

* the parallel path returns *identical* records (same order, same
  values) as the serial path — run seeds are stable digests of the run
  coordinates, so scheduling cannot perturb anything;
* with enough cores, the parallel sweep beats serial by >= 2x (the
  speedup assertion is skipped on boxes with < 4 cores, where a
  process pool cannot physically deliver it).
"""

import os
import time

import pytest

from repro.clients import figure2_clients
from repro.testbed import (SweepSpec, TestCaseConfig, TestCaseKind,
                           TestRunner)

from _util import record_timing

WORKERS = min(8, os.cpu_count() or 1)


def _runner() -> TestRunner:
    case = TestCaseConfig(name="figure2",
                          kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                          sweep=SweepSpec.range(0, 400, 10))
    return TestRunner(figure2_clients(), [case], seed=2)


def test_parallel_records_identical():
    case = TestCaseConfig(name="cad",
                          kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                          sweep=SweepSpec.range(0, 400, 50), repetitions=2)
    runner = TestRunner(figure2_clients()[:4], [case], seed=9)
    serial = runner.run()
    parallel = runner.run(workers=2)
    assert serial.records == parallel.records


def test_parallel_figure2_speedup(benchmark):
    def run_both():
        runner = _runner()
        t0 = time.perf_counter()
        serial = runner.run()
        serial_s = time.perf_counter() - t0
        # Best of two parallel runs: damps pool start-up and transient
        # load noise on shared CI runners.
        parallel_s = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            parallel = runner.run(workers=WORKERS)
            parallel_s = min(parallel_s, time.perf_counter() - t0)
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    record_timing("figure2_sweep_serial", serial_s,
                  {"runs": len(serial), "workers": None})
    record_timing("figure2_sweep_parallel", parallel_s,
                  {"runs": len(parallel), "workers": WORKERS})
    assert serial.records == parallel.records
    if (os.cpu_count() or 1) < 4:
        pytest.skip(f"only {os.cpu_count()} cores: a process pool "
                    "cannot demonstrate the speedup here")
    assert serial_s / parallel_s >= 2.0, (
        f"expected >=2x speedup with {WORKERS} workers: "
        f"serial {serial_s:.2f}s vs parallel {parallel_s:.2f}s")
