"""Ablation — resolver name-server selection policies under IPv6 impairment.

§6 suggests "starting dedicated discussions to develop recommendations
on the behavior of protocol preference for critical Internet
infrastructure clients, such as DNS resolvers".  This ablation compares
the policy families observed in the wild when the zone's IPv6 name
server is increasingly delayed:

* always-IPv6 with a long timeout (BIND-style, 800 ms),
* probabilistic preference (Unbound-style, 44 %),
* HE-style fast fallback (OpenDNS-style, 50 ms),
* IPv4-only (Google-style).
"""

import statistics

import pytest

from repro.dns.nsselect import GluePlan, ResolverBehavior
from repro.resolvers.testbed import run_resolver_campaign

from _util import emit

POLICIES = {
    "always-v6 / 800 ms": ResolverBehavior(
        name="always-v6", v6_preference=1.0, attempt_timeout=0.800),
    "probabilistic 44 %": ResolverBehavior(
        name="probabilistic", v6_preference=0.44, attempt_timeout=0.376),
    "HE-style / 50 ms": ResolverBehavior(
        name="he-style", v6_preference=1.0, attempt_timeout=0.050),
    "v4-only": ResolverBehavior(
        name="v4-only", v6_preference=0.0, attempt_timeout=0.400,
        glue_plan=GluePlan.A_FIRST),
}

DELAYS_MS = [0, 100, 400, 1000]


def build_ablation():
    table = {}
    for label, behavior in POLICIES.items():
        per_delay = {}
        for delay_ms in DELAYS_MS:
            campaign = run_resolver_campaign(
                behavior, delays_ms=[delay_ms], repetitions=6,
                seed=hash(label) & 0xFFFF)
            durations = [o.duration_s - 30.0 + 30.0 for o in
                         campaign.observations]
            latency = statistics.mean(
                min(o.duration_s, 30.0) for o in campaign.observations)
            v6_used = statistics.mean(
                1.0 if o.answering_family is not None
                and o.answering_family.value == 6 else 0.0
                for o in campaign.observations)
            per_delay[delay_ms] = (latency, v6_used)
        table[label] = per_delay
    return table


def test_ablation_ns_selection(benchmark):
    table = benchmark.pedantic(build_ablation, rounds=1, iterations=1)

    # HE-style: keeps IPv6 at zero delay, and caps the damage at 50 ms
    # when IPv6 is slow.
    he = table["HE-style / 50 ms"]
    assert he[0][1] == 1.0
    assert he[1000][1] == 0.0
    # Always-v6 with a long timeout pays it in full under impairment.
    always = table["always-v6 / 800 ms"]
    assert always[1000][0] > he[1000][0] + 0.5
    # v4-only never uses IPv6, even when it is perfectly fine.
    v4only = table["v4-only"]
    assert all(v6 == 0.0 for _, v6 in v4only.values())

    lines = ["Ablation: resolver NS-selection policy vs IPv6 delay",
             f"{'policy':>20}  " + "  ".join(f"{d:>5}ms" for d in DELAYS_MS)
             + "   (resolution time; * = answered via IPv6)"]
    for label, per_delay in table.items():
        cells = []
        for delay_ms in DELAYS_MS:
            latency, v6_used = per_delay[delay_ms]
            marker = "*" if v6_used >= 0.5 else " "
            cells.append(f"{latency * 1000:>5.0f}{marker}")
        lines.append(f"{label:>20}  " + "  ".join(cells))
    emit("ablation_ns_selection", "\n".join(lines))
