"""Figure 5 — address family used at the n-th connection attempt.

Ten unresponsive addresses per family (the §4.1(iii) blackhole setup):
HEv1-style clients stop after one address per family, wget stays on its
first IPv6 address forever, and Safari walks all twenty addresses with
its burst interleave (v6 ×2, v4 ×1, v6 ×8, v4 ×9 — App. D).
"""

from repro.analysis import figure5_attempts, render_figure5
from repro.clients import get_profile
from repro.simnet import Family

from _util import emit

CLIENTS = [
    ("wget", "1.21.3"), ("curl", "7.88.1"), ("Safari", "17.6"),
    ("Firefox", "132.0"), ("Edge", "130.0"), ("Chromium", "130.0"),
    ("Chrome", "130.0"),
]


def build_figure5():
    profiles = [get_profile(name, version) for name, version in CLIENTS]
    return figure5_attempts(profiles, addresses_per_family=10, seed=4)


def test_figure5_address_selection(benchmark):
    series = benchmark.pedantic(build_figure5, rounds=1, iterations=1)
    by_client = {entry.client: entry for entry in series}

    # wget: one IPv6 attempt, nothing else, within the window.
    assert by_client["wget 1.21.3"].pattern == "6"

    # HEv1-style clients: exactly one attempt per family, IPv6 first.
    for name in ("curl 7.88.1", "Firefox 132.0", "Edge 130.0",
                 "Chromium 130.0", "Chrome 130.0"):
        assert by_client[name].pattern == "64", name

    # Safari: FAFC 2, one IPv4 interleave, the rest in family bursts.
    safari = by_client["Safari 17.6"]
    assert len(safari.families) == 20
    assert safari.pattern == "664" + "6" * 8 + "4" * 9

    emit("figure5_address_selection", render_figure5(series))
