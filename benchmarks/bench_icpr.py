"""§5.1/§5.2 — Safari behind iCloud Private Relay.

Connections via iCPR expose the *egress operator's* connection policy,
not Safari's: Akamai egress uses a 150 ms CAD and a 400 ms DNS timeout,
Cloudflare 200 ms and 1.75 s, and neither implements Safari's RD or
address selection — "Safari users lose RD and address selection
features" (§6).
"""

import pytest

from repro.clients import AKAMAI_EGRESS, CLOUDFLARE_EGRESS
from repro.clients.icpr import (measure_egress_cad,
                                measure_egress_dns_timeout)
from repro.dns import RdataType

from _util import emit

CAD_GRID = [0, 100, 140, 160, 190, 210, 300]


def build_icpr_results():
    akamai_cad = measure_egress_cad(AKAMAI_EGRESS, CAD_GRID, seed=61)
    cloudflare_cad = measure_egress_cad(CLOUDFLARE_EGRESS, CAD_GRID,
                                        seed=62)
    akamai_stall = {
        "AAAA": measure_egress_dns_timeout(AKAMAI_EGRESS, RdataType.AAAA),
        "A": measure_egress_dns_timeout(AKAMAI_EGRESS, RdataType.A),
    }
    cloudflare_stall = {
        "AAAA": measure_egress_dns_timeout(CLOUDFLARE_EGRESS,
                                           RdataType.AAAA),
        "A": measure_egress_dns_timeout(CLOUDFLARE_EGRESS, RdataType.A),
    }
    return akamai_cad, cloudflare_cad, akamai_stall, cloudflare_stall


def test_icpr_egress_operators(benchmark):
    (akamai_cad, cloudflare_cad,
     akamai_stall, cloudflare_stall) = benchmark.pedantic(
        build_icpr_results, rounds=1, iterations=1)

    # Akamai: CAD 150 ms -> IPv6 up to 140 ms, IPv4 from 160 ms.
    assert akamai_cad[140] == "IPv6"
    assert akamai_cad[160] == "IPv4"
    # Cloudflare: CAD 200 ms.
    assert cloudflare_cad[190] == "IPv6"
    assert cloudflare_cad[210] == "IPv4"

    # Same DNS timeout for A and AAAA per operator (§5.2).
    assert akamai_stall["AAAA"] == pytest.approx(0.400, abs=0.020)
    assert akamai_stall["A"] == pytest.approx(0.400, abs=0.020)
    assert cloudflare_stall["AAAA"] == pytest.approx(1.750, abs=0.050)
    assert cloudflare_stall["A"] == pytest.approx(1.750, abs=0.050)

    lines = ["iCPR egress operator behaviour",
             "==============================",
             f"{'delay':>8}  Akamai    Cloudflare"]
    for delay in CAD_GRID:
        lines.append(f"{delay:>5} ms  {akamai_cad[delay]:8}  "
                     f"{cloudflare_cad[delay]}")
    lines.append("")
    lines.append("DNS record delay stall (record delayed 3 s):")
    lines.append(f"  Akamai:     AAAA {akamai_stall['AAAA']*1000:.0f} ms, "
                 f"A {akamai_stall['A']*1000:.0f} ms")
    lines.append(f"  Cloudflare: AAAA {cloudflare_stall['AAAA']*1000:.0f} ms,"
                 f" A {cloudflare_stall['A']*1000:.0f} ms")
    emit("icpr_egress", "\n".join(lines))
