"""Figure 4 — the web-based testing tool's CAD and RD views.

Walks the 18-step ladder with Safari and Chrome (Fig. 4a: the CAD
ladder with its interval inference, e.g. Safari's CAD ∈ (200, 250] in
the paper's screenshot) and runs the RD page probe (Fig. 4b) against
Safari, whose web sessions exercise the dynamic CAD.
"""

import pytest

from repro.analysis import figure4_sessions
from repro.clients import get_profile
from repro.simnet import Family
from repro.webtool import (NetworkConditions, WebToolDeployment,
                           WebToolSession)

from _util import emit


def build_sessions():
    deployment = WebToolDeployment(seed=41)
    chrome = WebToolSession(deployment, get_profile("Chrome", "130.0"),
                            conditions=NetworkConditions.lab_like()).run()
    safari_sessions = [
        WebToolSession(deployment, get_profile("Safari", "17.6"),
                       repetition=rep).run()
        for rep in range(8)]
    return chrome, safari_sessions


def test_figure4_webtool_ladders(benchmark):
    chrome, safari_sessions = benchmark.pedantic(build_sessions,
                                                 rounds=1, iterations=1)

    # Chrome: a sharp interval bracketing its 300 ms CAD.
    low, high = chrome.cad_interval()
    assert low in (250, 300)
    assert high in (300, 350)
    assert chrome.is_monotonic()

    # Safari: intervals wander across the ladder between repetitions
    # (dynamic CAD), often non-monotonic within a run.
    intervals = {session.cad_interval() for session in safari_sessions}
    assert len(intervals) >= 3
    spread = [high for _, high in intervals if high is not None]
    assert spread and max(spread) - min(spread) >= 150

    # The tool's per-step outcome uses the echoed source address:
    # delay 0 must be IPv6, the 5 s rung IPv4 for any HE client.
    zero = [o for o in chrome.outcomes if o.delay_ms == 0][0]
    top = [o for o in chrome.outcomes if o.delay_ms == 5000][0]
    assert zero.used_family is Family.V6
    assert top.used_family is Family.V4

    emit("figure4_webtool",
         figure4_sessions([chrome] + safari_sessions))
