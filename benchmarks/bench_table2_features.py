"""Table 2 — HE feature evaluation of client applications.

Runs the local test cases (CAD probe, RD probe, address selection)
against the nine Table 2 clients and validates the results with a web
campaign, then checks the paper's headline findings:

* only Safari implements RD and address selection (full HEv2);
* HEv1-style clients use exactly one address per family;
* wget implements no HE at all;
* Safari's web behaviour is inconsistent, Firefox deviates.
"""

import pytest

from repro.analysis import render_table2, table2_features
from repro.webtool import UAEntry, WebCampaign
from repro.webtool.report import ConsistencyMark

from _util import emit, timed

WEB_ENTRIES = (
    UAEntry("Linux", "", "Chrome", "130.0.0"),
    UAEntry("Linux", "", "Chromium", "130.0.0"),
    UAEntry("Windows", "10", "Edge", "130.0.0"),
    UAEntry("Linux", "", "Firefox", "132.0"),
    UAEntry("Mac OS X", "10.15.7", "Safari", "17.6"),
)


def build_table2():
    with timed("table2_features", {"web_repetitions": 10}):
        campaign = WebCampaign(seed=7, repetitions=10)
        web = campaign.run(entries=WEB_ENTRIES)
        return table2_features(seed=1, web_campaign=web)


def test_table2_features(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    by_client = {row.client: row for row in rows}

    # Every client prefers IPv6 when both families are offered.
    assert all(row.prefers_ipv6 for row in rows)

    # Chromium family: CAD 300 ms, AAAA first, no RD, 1+1 addresses.
    for name in ("Chrome 130.0", "Chromium 130.0", "Edge 130.0"):
        row = by_client[name]
        assert row.cad_implemented
        assert row.cad_value_ms == pytest.approx(300.0, abs=5.0)
        assert row.aaaa_first
        assert not row.rd_implemented
        assert (row.ipv4_addresses_used, row.ipv6_addresses_used) == (1, 1)
        assert not row.address_selection

    # Firefox: 250 ms CAD, A-first (stub-resolver order), no RD.
    firefox = by_client["Firefox 132.0"]
    assert firefox.cad_value_ms == pytest.approx(250.0, abs=60.0)
    assert not firefox.aaaa_first
    assert not firefox.rd_implemented

    # Safari: the only full HEv2 client.
    safari = by_client["Safari 17.6"]
    assert safari.rd_implemented
    assert safari.rd_value_ms == pytest.approx(50.0, abs=5.0)
    assert safari.address_selection
    assert (safari.ipv4_addresses_used, safari.ipv6_addresses_used) == \
        (10, 10)

    # curl: smallest CAD (200 ms); wget: no HE, never touches IPv4.
    curl = by_client["curl 7.88.1"]
    assert curl.cad_value_ms == pytest.approx(200.0, abs=5.0)
    wget = by_client["wget 1.21.3"]
    assert not wget.cad_implemented
    assert wget.ipv4_addresses_used is None
    assert wget.ipv6_addresses_used == 1

    # Consistency: Safari inconsistent, Firefox deviates, Chromium
    # family consistent (§5.1).
    assert safari.consistency is ConsistencyMark.INCONSISTENT
    assert firefox.consistency in (ConsistencyMark.DEVIATION,
                                   ConsistencyMark.INCONSISTENT)
    assert by_client["Chrome 130.0"].consistency is \
        ConsistencyMark.CONSISTENT

    emit("table2_features", render_table2(rows))
