"""Campaign service bench: submit throughput and the packed-store win.

Two headline numbers for ``results/bench_timings.json``:

* ``service_submit_throughput`` — warm submissions per second through
  the full service path (admission plan, single-flight claims, tiered
  store, resilience bundle) for the real Figure 2 experiment.  Warm,
  because that is the service's steady state: a campaign fleet
  re-requesting artifacts whose runs are already cached.
* ``store_packed_vs_perfile_warm`` — a fresh process resolving a dense
  synthetic grid (32 shards x 40 entries) warm, packed layout versus
  the one-JSON-file-per-entry layout.  Fresh-handle resolution is the
  scenario the packed layout exists for: the per-file side must open
  every entry file (and rebuild its sidecar) while the packed side
  reads one pack per shard and bulk-parses it.  The steady-state
  numbers (sidecars hot on both sides) ride along in the meta.

``check_perf_regression.py`` imports :func:`measure_packed_vs_perfile`
and re-runs it against the committed baseline, so a regression in the
packed read path fails CI the same way a simulator-core regression
does.
"""

import shutil
import time

from repro.experiments.base import Session, knob_mapping
from repro.experiments.registry import get_experiment
from repro.service import CampaignService
from repro.testbed import CampaignStore, PackedCampaignStore

from _util import emit, record_timing

#: Dense synthetic grid shape for the layout comparison.
GRID_SHARDS = 32
GRID_ENTRIES_PER_SHARD = 40
GRID_ENTRIES = GRID_SHARDS * GRID_ENTRIES_PER_SHARD
#: Timing repetitions (best-of, to shed IO noise).
TIMING_ROUNDS = 3
#: Warm submissions timed for the throughput number.
WARM_SUBMISSIONS = 20


def _grid_keys():
    keys = []
    for shard_index in range(GRID_SHARDS):
        shard = format(shard_index, "02x")
        for entry in range(GRID_ENTRIES_PER_SHARD):
            keys.append((shard + format(entry, "04x") + "0" * 58)[:64])
    return keys


def _grid_payload(index):
    return {"case": "packed-grid", "index": index,
            "value_ms": (index * 5) % 400,
            "samples": [index % 7, index % 11, index % 13]}


def measure_packed_vs_perfile(root, rounds=TIMING_ROUNDS):
    """Best-of-``rounds`` fresh-handle warm resolve of the dense grid
    on both layouts; returns ``(packed_s, perfile_s, entries)``.

    Each round starts from a sidecar-less store — the fresh-process
    scenario — so the per-file side pays its real per-entry read cost
    and the packed side its real one-read-per-shard scan.
    """
    keys = _grid_keys()
    packed_root = root / "packed"
    perfile_root = root / "perfile"
    packed = PackedCampaignStore(packed_root)
    perfile = CampaignStore(perfile_root)
    for index, key in enumerate(keys):
        payload = _grid_payload(index)
        packed.put(key, payload)
        perfile.put(key, payload)

    def best(make_store, store_root):
        elapsed = []
        for _ in range(rounds):
            shutil.rmtree(store_root / ".index", ignore_errors=True)
            store = make_store()
            start = time.perf_counter()
            found = store.get_many(keys, lambda payload: payload)
            elapsed.append(time.perf_counter() - start)
            assert len(found) == len(keys)
            assert store.stats.misses == 0
        return min(elapsed)

    packed_s = best(lambda: PackedCampaignStore(packed_root),
                    packed_root)
    perfile_s = best(lambda: CampaignStore(perfile_root), perfile_root)
    return packed_s, perfile_s, len(keys)


def measure_steady_warm(root, rounds=TIMING_ROUNDS):
    """Same grid with hot sidecars on both sides (the meta numbers)."""
    keys = _grid_keys()
    packed_root, perfile_root = root / "packed", root / "perfile"
    # Prime: flush both sidecar flavours.
    PackedCampaignStore(packed_root).get_many(keys, lambda p: p)
    primer = CampaignStore(perfile_root)
    primer.get_many(keys, lambda p: p)
    primer.get_many(keys, lambda p: p)

    def best(make_store):
        elapsed = []
        for _ in range(rounds):
            store = make_store()
            start = time.perf_counter()
            found = store.get_many(keys, lambda payload: payload)
            elapsed.append(time.perf_counter() - start)
            assert len(found) == len(keys)
        return min(elapsed)

    return (best(lambda: PackedCampaignStore(packed_root)),
            best(lambda: CampaignStore(perfile_root)))


def test_packed_beats_perfile_on_dense_grid(benchmark, tmp_path):
    """Fresh-handle warm resolve of the dense grid: the packed layout
    must beat one-file-per-entry (it reads ~32 files, not ~1280)."""
    packed_s, perfile_s, entries = benchmark.pedantic(
        lambda: measure_packed_vs_perfile(tmp_path), rounds=1,
        iterations=1)
    steady_packed_s, steady_perfile_s = measure_steady_warm(tmp_path)

    record_timing("store_packed_vs_perfile_warm", packed_s,
                  {"entries": entries, "shards": GRID_SHARDS,
                   "perfile_seconds": round(perfile_s, 6),
                   "speedup": round(perfile_s / packed_s, 2),
                   "steady_packed_seconds": round(steady_packed_s, 6),
                   "steady_perfile_seconds": round(steady_perfile_s, 6)})
    emit("service_packed_store",
         f"dense grid ({entries} entries, {GRID_SHARDS} shards), "
         f"fresh-handle warm resolve:\n"
         f"per-file {perfile_s * 1000:.1f} ms -> packed "
         f"{packed_s * 1000:.1f} ms ({perfile_s / packed_s:.2f}x)\n"
         f"steady state (hot sidecars): per-file "
         f"{steady_perfile_s * 1000:.1f} ms, packed "
         f"{steady_packed_s * 1000:.1f} ms")
    assert packed_s < perfile_s, (
        f"packed warm resolve should beat per-file: packed "
        f"{packed_s * 1000:.1f} ms vs per-file "
        f"{perfile_s * 1000:.1f} ms")


def test_service_submit_throughput(benchmark, tmp_path):
    """Warm submissions per second through the whole service stack,
    byte-identical to a direct experiment run."""
    def run_service_rounds():
        service = CampaignService(tmp_path / "cache", seed=0)
        with service:
            cold = service.submit("figure2", {"step": 100})
            start = time.perf_counter()
            warm = [service.submit("figure2", {"step": 100})
                    for _ in range(WARM_SUBMISSIONS)]
            seconds = time.perf_counter() - start
        return cold, warm, seconds

    cold, warm, seconds = benchmark.pedantic(run_service_rounds,
                                             rounds=1, iterations=1)

    # Steady state: every warm submission resolves without executing.
    assert all(r.executed == 0 and r.hits == r.planned for r in warm)
    assert {r.text for r in warm} == {cold.text}
    # And the served artifact is byte-identical to a direct run.
    experiment = get_experiment("figure2")
    direct = experiment.run(Session(
        seed=0, knobs=knob_mapping(experiment, {"step": 100})))
    assert cold.text == direct.text

    per_second = WARM_SUBMISSIONS / seconds
    record_timing("service_submit_throughput", seconds,
                  {"submissions": WARM_SUBMISSIONS,
                   "per_second": round(per_second, 2),
                   "planned_keys": cold.planned})
    emit("service_submit_throughput",
         f"campaign service, figure2 step=100 ({cold.planned} planned "
         f"keys): {WARM_SUBMISSIONS} warm submissions in "
         f"{seconds:.3f}s = {per_second:.1f}/s")
