"""Ablation — First Address Family Count 1 vs 2.

RFC 8305 recommends an FAFC of "1 or 2 for aggressively favoring one
family"; Safari uses 2 (App. D).  The difference shows when the *first*
IPv6 address is dead but the second is fine: with FAFC 1 the second
attempt is IPv4 (the connection leaves IPv6), with FAFC 2 it is the
second IPv6 address (IPv6 survives the bad record) — at identical
time-to-connect.
"""

import pytest

from repro.core import rfc8305_params
from repro.core.engine import HappyEyeballsEngine
from repro.dns.stub import StubResolver
from repro.simnet import Family
from repro.testbed.topology import LocalTestbed, SERVER_V4, SERVER_V6

from _util import emit

DEAD_V6 = "2001:db8:dead::1"  # never attached: blackhole


def run_with_fafc(fafc: int, seed: int):
    testbed = LocalTestbed(seed=seed)
    hostname = testbed.add_domain(
        f"fafc{fafc}", [DEAD_V6, SERVER_V6, SERVER_V4])
    params = rfc8305_params().with_overrides(
        first_address_family_count=fafc)
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    engine = HappyEyeballsEngine(testbed.client, stub, params)
    result = testbed.sim.run_until(engine.connect(hostname))
    return result


def build_ablation():
    return {fafc: run_with_fafc(fafc, seed=90 + fafc) for fafc in (1, 2)}


def test_ablation_first_address_family_count(benchmark):
    results = benchmark.pedantic(build_ablation, rounds=1, iterations=1)

    # FAFC 1: dead v6 -> the CAD-delayed second attempt is IPv4.
    assert results[1].winning_family is Family.V4
    # FAFC 2: dead v6 -> the second attempt is the *good* IPv6 address.
    assert results[2].winning_family is Family.V6
    # Both pay exactly one CAD (250 ms) plus a handshake.
    for result in results.values():
        assert result.time_to_connect == pytest.approx(0.250, abs=0.010)

    lines = ["Ablation: First Address Family Count under a dead first "
             "IPv6 address",
             f"{'FAFC':>5}  {'winner':>6}  {'time to connect':>16}"]
    for fafc, result in results.items():
        lines.append(f"{fafc:>5}  {result.winning_family.label:>6}  "
                     f"{result.time_to_connect * 1000:>13.1f} ms")
    lines.append("FAFC 2 keeps the connection on IPv6 at no extra cost.")
    emit("ablation_fafc", "\n".join(lines))
