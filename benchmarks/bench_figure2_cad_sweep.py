"""Figure 2 — address family of the established connection vs delay.

Runs the paper's local-testbed CAD sweep over all 17 client versions
(0–400 ms; 5 ms steps like the paper's fine-grained runs are supported,
the bench uses 10 ms for speed) and verifies every crossover:

* Chromium family flips IPv6→IPv4 at 300 ms across all versions/years;
* Firefox at 250 ms (median; a few late outliers tolerated);
* curl at 200 ms;
* wget never flips (no fallback);
* Safari is omitted, like in the paper (2 s CAD would flatten the plot).
"""

import pytest

from repro.analysis import figure2_sweep, render_figure2
from repro.clients import figure2_clients

from _util import emit, timed

STEP_MS = 10


def build_figure2():
    with timed("figure2_cad_sweep", {"step_ms": STEP_MS, "workers": None}):
        return figure2_sweep(step_ms=STEP_MS, stop_ms=400, seed=2)


def test_figure2_cad_sweep(benchmark):
    series = benchmark.pedantic(build_figure2, rounds=1, iterations=1)
    by_client = {entry.client: entry for entry in series}
    assert len(series) == 17

    chromium_family = [name for name in by_client
                       if name.startswith(("Chrome ", "Chromium", "Edge"))]
    assert len(chromium_family) == 11
    for name in chromium_family:
        entry = by_client[name]
        # IPv6 established up to 300 ms, IPv4 beyond.
        assert entry.crossover_ms == 300, name
        assert entry.first_v4_ms == 300 + STEP_MS, name

    for name, entry in by_client.items():
        if name.startswith("Firefox"):
            # 250 ms nominal; occasional outliers may stretch a run.
            assert 250 <= entry.crossover_ms <= 400, name
            assert entry.first_v4_ms >= 250 + STEP_MS, name

    curl = by_client["curl 7.88.1"]
    assert curl.crossover_ms == 200
    wget = by_client["wget 1.21.3"]
    assert wget.first_v4_ms is None  # never falls back
    assert wget.crossover_ms == 400  # IPv6 all the way, just slow

    emit("figure2_cad_sweep", render_figure2(series))
