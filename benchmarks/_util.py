"""Shared helpers for the benchmark harness.

Every bench renders its reproduced table/figure to
``results/<name>.txt`` (next to this directory) and prints it, so the
artifacts survive without ``pytest -s``.  Timed benches additionally
record machine-readable timings into ``results/bench_timings.json`` via
:func:`record_timing`, so the perf trajectory across PRs is populated
going forward.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
TIMINGS_PATH = RESULTS_DIR / "bench_timings.json"


def emit(name: str, text: str) -> None:
    """Write a rendered artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[artifact: {path}]")


def record_timing(name: str, seconds: float,
                  meta: Optional[Dict[str, Any]] = None) -> None:
    """Append one timing sample to ``results/bench_timings.json``.

    The file maps bench name to a list of samples (newest last), each
    ``{"seconds": float, "recorded_at": epoch, "python": ..., **meta}``
    — enough to plot a perf trajectory across machines and PRs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    try:
        timings = json.loads(TIMINGS_PATH.read_text(encoding="utf-8"))
    except (FileNotFoundError, ValueError):
        timings = {}
    sample: Dict[str, Any] = {
        "seconds": round(seconds, 6),
        "recorded_at": int(time.time()),
        "python": platform.python_version(),
    }
    if meta:
        sample.update(meta)
    timings.setdefault(name, []).append(sample)
    TIMINGS_PATH.write_text(json.dumps(timings, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
    print(f"[timing: {name} = {seconds:.3f}s -> {TIMINGS_PATH}]")


@contextmanager
def timed(name: str, meta: Optional[Dict[str, Any]] = None
          ) -> Iterator[None]:
    """Context manager: time the body and :func:`record_timing` it.

    Only successful completions are recorded — a raising body would
    otherwise pollute the tracked perf trajectory with partial runs.
    """
    start = time.perf_counter()
    yield
    record_timing(name, time.perf_counter() - start, meta)
