"""Shared helpers for the benchmark harness.

Every bench renders its reproduced table/figure to
``results/<name>.txt`` (next to this directory) and prints it, so the
artifacts survive without ``pytest -s``.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def emit(name: str, text: str) -> None:
    """Write a rendered artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[artifact: {path}]")
