"""Table 1 — HE parameter comparison across versions.

Regenerates the parameter table from the RFC presets in
:mod:`repro.core.params` and validates the values the paper lists.
"""

from repro.analysis import render_table, table1_parameters

from _util import emit


def test_table1_parameters(benchmark):
    headers, rows = benchmark(table1_parameters)

    by_name = {row[0]: row[1:] for row in rows}
    # HEv1 has no DNS handling, no RD; HEv2 introduces 50 ms RD.
    assert by_name["DNS Records"][0] == "-"
    assert by_name["DNS Records"][1] == "AAAA, A"
    assert "SVCB" in by_name["DNS Records"][2]
    assert by_name["Resolution Delay"][0] == "-"
    assert by_name["Resolution Delay"][1] == "50 ms"
    assert by_name["Resolution Delay"][2] == "50 ms"
    assert by_name["Fixed Conn. Attempt Delay"][0] == "150-250 ms"
    assert by_name["Fixed Conn. Attempt Delay"][1] == "250 ms"
    assert by_name["Min/Rec./Max when dynamic"][1] == "10 ms / 100 ms / 2 s"
    assert "QUIC" in by_name["Considered protocols"][2]

    emit("table1_parameters",
         render_table(headers, rows,
                      title="Table 1: HE parameters across versions"))
