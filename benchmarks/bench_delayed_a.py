"""§5.2 — the delayed-A pathology.

"To our astonishment, while all clients continued to prefer IPv6, all
but Safari always waited for the A response to arrive" — a slow DNS A
lookup stalls even the IPv6 connection, and with a resolver timeout in
play Chrome and Firefox connections fail outright despite a fully
functional IPv6 setup.  The Chromium HEv3 feature flag removes the
stall.
"""

import pytest

from repro.clients import get_profile
from repro.simnet import Family
from repro.testbed import (SweepSpec, TestCaseConfig, TestCaseKind,
                           TestRunner)

from _util import emit

CASE = TestCaseConfig(name="delayed-a", kind=TestCaseKind.DELAYED_A,
                      sweep=SweepSpec.fixed(500, 1000, 2000))


def build_delayed_a():
    clients = [get_profile("Chrome", "130.0"),
               get_profile("Firefox", "132.0"),
               get_profile("curl", "7.88.1"),
               get_profile("Safari", "17.6")]
    plain = TestRunner(clients, [CASE], seed=71).run()
    flagged = TestRunner([get_profile("Chrome", "130.0")], [CASE],
                         seed=72, hev3_flag=True).run()
    return plain, flagged


def test_delayed_a_pathology(benchmark):
    plain, flagged = benchmark.pedantic(build_delayed_a, rounds=1,
                                        iterations=1)

    for record in plain.records:
        assert record.winning_family is Family.V6  # IPv6 still preferred
        expected = record.value_ms / 1000.0
        if record.client.startswith("Safari"):
            # Safari starts connecting as soon as AAAA arrives.
            assert record.time_to_first_attempt_s < 0.100
        else:
            # Everyone else stalls for the full A-record delay.
            assert record.time_to_first_attempt_s == pytest.approx(
                expected, abs=0.050), record.client

    for record in flagged.records:
        # The HEv3 flag adds the RD and removes the stall entirely.
        assert record.winning_family is Family.V6
        assert record.time_to_first_attempt_s < 0.100

    lines = ["Delayed-A pathology: time from first query to first "
             "connection attempt",
             f"{'client':<16} {'A delay':>8}  stall"]
    for record in plain.records:
        lines.append(f"{record.client:<16} {record.value_ms:>5} ms  "
                     f"{record.time_to_first_attempt_s * 1000:8.1f} ms")
    for record in flagged.records:
        lines.append(f"{'Chrome+HEv3flag':<16} {record.value_ms:>5} ms  "
                     f"{record.time_to_first_attempt_s * 1000:8.1f} ms")
    emit("delayed_a_pathology", "\n".join(lines))
