"""CI perf gate for the simulator core.

Re-measures the headline workload (the cold Figure 2 step-10 grid, 697
runs — the same thing ``bench_simnet_core.py`` records as
``figure2_runs_per_second``) and fails when it is more than 30% slower
than the best committed sample in ``results/bench_timings.json``.

The committed samples come from the same machine class as CI, and the
measurement takes the best of three to damp shared-runner noise, so a
30% threshold catches wholesale regressions (an accidentally quadratic
scheduler, a dropped cache) without tripping on load jitter.  Exits 0
with a notice when no baseline has been committed yet.
"""

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis import figure2_sweep  # noqa: E402

TIMINGS_PATH = (pathlib.Path(__file__).resolve().parent
                / "results" / "bench_timings.json")
THRESHOLD = 1.30


def main() -> int:
    try:
        timings = json.loads(TIMINGS_PATH.read_text(encoding="utf-8"))
    except (FileNotFoundError, ValueError):
        timings = {}
    samples = timings.get("figure2_runs_per_second", [])
    if not samples:
        print("[perf-gate] no committed figure2_runs_per_second "
              "baseline; skipping")
        return 0
    baseline = min(sample["seconds"] for sample in samples)

    figure2_sweep(step_ms=25)  # warm imports and wire caches
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        figure2_sweep(step_ms=10)
        best = min(best, time.perf_counter() - t0)

    ratio = best / baseline
    print(f"[perf-gate] measured {best:.3f}s vs committed best "
          f"{baseline:.3f}s ({ratio:.2f}x, threshold {THRESHOLD:.2f}x)")
    if ratio > THRESHOLD:
        print("[perf-gate] FAIL: simulator core regressed by "
              f"{(ratio - 1) * 100:.0f}% on the figure2 grid")
        return 1
    print("[perf-gate] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
