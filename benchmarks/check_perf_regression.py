"""CI perf gate for the simulator core, the campaign store, the
population campaign, and the synthesis search.

Re-measures four headline workloads and fails when one is more than
30% slower than the best committed sample in
``results/bench_timings.json``:

* the cold Figure 2 step-10 grid, 697 runs — the same thing
  ``bench_simnet_core.py`` records as ``figure2_runs_per_second``;
* the packed-store fresh-handle warm resolve of the dense synthetic
  grid — what ``bench_service.py`` records as
  ``store_packed_vs_perfile_warm`` (the measurement is imported from
  there, so gate and bench can never drift apart);
* the cold 250-user population-latency campaign — what
  ``bench_population.py`` records as
  ``population_samples_per_second`` (measurement imported from there
  too);
* the cold 12-seed synthesize-scenarios search — what
  ``bench_synthesis.py`` records as
  ``synthesis_candidates_per_second`` (measurement imported from
  there too).

The committed samples come from the same machine class as CI, and the
measurement takes the best of three to damp shared-runner noise, so a
30% threshold catches wholesale regressions (an accidentally quadratic
scheduler, a dropped cache) without tripping on load jitter.  Exits 0
with a notice when no baseline has been committed yet.
"""

import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.analysis import figure2_sweep  # noqa: E402

from bench_population import measure_population  # noqa: E402
from bench_service import measure_packed_vs_perfile  # noqa: E402
from bench_synthesis import measure_synthesis  # noqa: E402

TIMINGS_PATH = (pathlib.Path(__file__).resolve().parent
                / "results" / "bench_timings.json")
THRESHOLD = 1.30


def gate_simnet_core(timings) -> int:
    samples = timings.get("figure2_runs_per_second", [])
    if not samples:
        print("[perf-gate] no committed figure2_runs_per_second "
              "baseline; skipping")
        return 0
    baseline = min(sample["seconds"] for sample in samples)

    figure2_sweep(step_ms=25)  # warm imports and wire caches
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        figure2_sweep(step_ms=10)
        best = min(best, time.perf_counter() - t0)

    ratio = best / baseline
    print(f"[perf-gate] simnet: measured {best:.3f}s vs committed best "
          f"{baseline:.3f}s ({ratio:.2f}x, threshold {THRESHOLD:.2f}x)")
    if ratio > THRESHOLD:
        print("[perf-gate] FAIL: simulator core regressed by "
              f"{(ratio - 1) * 100:.0f}% on the figure2 grid")
        return 1
    return 0


def gate_packed_store(timings) -> int:
    """Relative gate: packed must keep beating per-file on the dense
    grid.  Absolute drift against the committed sample is reported for
    the trajectory but not failed on — a ~15 ms disk measurement on a
    shared runner jitters far more than the 30% threshold, while the
    packed/per-file ratio is load-immune (both sides share it)."""
    samples = timings.get("store_packed_vs_perfile_warm", [])
    if not samples:
        print("[perf-gate] no committed store_packed_vs_perfile_warm "
              "baseline; skipping")
        return 0
    baseline = min(sample["seconds"] for sample in samples)

    with tempfile.TemporaryDirectory() as tmp:
        packed_s, perfile_s, entries = measure_packed_vs_perfile(
            pathlib.Path(tmp))

    print(f"[perf-gate] packed store: packed {packed_s * 1000:.1f}ms "
          f"vs per-file {perfile_s * 1000:.1f}ms over {entries} "
          f"entries ({perfile_s / packed_s:.2f}x; committed best "
          f"{baseline * 1000:.1f}ms)")
    if packed_s >= perfile_s:
        print("[perf-gate] FAIL: packed layout no longer beats "
              "per-file on the dense grid")
        return 1
    return 0


def gate_population(timings) -> int:
    """Cold population campaign vs the committed best, best of two
    (each measurement is ~1s of simulation, so two damp runner noise
    without doubling the gate's wall clock the way three would)."""
    samples = timings.get("population_samples_per_second", [])
    if not samples:
        print("[perf-gate] no committed population_samples_per_second "
              "baseline; skipping")
        return 0
    baseline = min(sample["seconds"] for sample in samples)

    best = float("inf")
    for _ in range(2):
        with tempfile.TemporaryDirectory() as tmp:
            cold_s, _, cold, warm, misses = measure_population(
                pathlib.Path(tmp))
        assert warm.text == cold.text and misses == 0
        best = min(best, cold_s)

    ratio = best / baseline
    print(f"[perf-gate] population: measured {best:.3f}s vs committed "
          f"best {baseline:.3f}s ({ratio:.2f}x, threshold "
          f"{THRESHOLD:.2f}x)")
    if ratio > THRESHOLD:
        print("[perf-gate] FAIL: population campaign regressed by "
              f"{(ratio - 1) * 100:.0f}% on the 250-user grid")
        return 1
    return 0


def gate_synthesis(timings) -> int:
    """Cold synthesis search vs the committed best, best of two (same
    rationale as the population gate: each measurement is real
    simulation time, two runs damp runner noise)."""
    samples = timings.get("synthesis_candidates_per_second", [])
    if not samples:
        print("[perf-gate] no committed synthesis_candidates_per_second "
              "baseline; skipping")
        return 0
    baseline = min(sample["seconds"] for sample in samples)

    best = float("inf")
    for _ in range(2):
        with tempfile.TemporaryDirectory() as tmp:
            cold_s, _, cold, warm, misses, _ = measure_synthesis(
                pathlib.Path(tmp))
        assert warm.text == cold.text and misses == 0
        best = min(best, cold_s)

    ratio = best / baseline
    print(f"[perf-gate] synthesis: measured {best:.3f}s vs committed "
          f"best {baseline:.3f}s ({ratio:.2f}x, threshold "
          f"{THRESHOLD:.2f}x)")
    if ratio > THRESHOLD:
        print("[perf-gate] FAIL: synthesis search regressed by "
              f"{(ratio - 1) * 100:.0f}% on the 12-seed budget")
        return 1
    return 0


def main() -> int:
    try:
        timings = json.loads(TIMINGS_PATH.read_text(encoding="utf-8"))
    except (FileNotFoundError, ValueError):
        timings = {}
    failures = (gate_simnet_core(timings) + gate_packed_store(timings)
                + gate_population(timings) + gate_synthesis(timings))
    if failures:
        return 1
    print("[perf-gate] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
